"""Calibration helper: per-loop offline/online SF on both platforms."""
from repro.amp import odroid_xu4, xeon_emulated, bs_mapping
from repro.perfmodel import PerfModel
from repro.workloads import all_programs

for plat in (odroid_xu4(), xeon_emulated()):
    perf = PerfModel(plat)
    cpus = tuple(bs_mapping(plat).cpu_of_tid)
    print(f"== {plat.name} ==")
    for prog in all_programs():
        parts = []
        for loop in prog.loops():
            off = perf.speedup_factor(loop.kernel)
            on = perf.speedup_factor(loop.kernel, cpu_of_tid=cpus)
            parts.append(f"{loop.name}: off={off:.2f} on={on:.2f}")
        print(f"  {prog.name:16s} " + " | ".join(parts))
