"""Ad-hoc reference-vs-vectorized equivalence sweep (dev tool).

Compares LoopResult fields and decision-log bytes across platforms,
schedules, overhead models and sizes. Exit 0 iff zero mismatches.
"""
import sys

from repro.check.generators import preset_platform, run_loop
from repro.obs import Observability
from repro.perfmodel.overhead import ZERO_OVERHEAD, OverheadModel
from repro.sched import parse_schedule

PLATFORMS = ["odroid_xu4", "xeon_emulated", "tri", "dual:3:1"]
SCHEDULES = [
    "static", "static,7", "dynamic,1", "dynamic,16", "guided",
    "aid_static", "aid_hybrid,80", "aid_dynamic,1,5", "aid_auto,1,5",
    "aid_steal,8",
]
OVERHEADS = [
    ZERO_OVERHEAD,
    OverheadModel(dispatch_cost=1e-6, atomic_service=2e-7),
    OverheadModel(dispatch_cost=5e-6, atomic_service=1e-6),
]
SIZES = [1, 253, 4096]


def run_one(platform_name, sched, ov, n, backend):
    plat = preset_platform(platform_name)
    spec = parse_schedule(sched)
    obs = Observability()
    offline = {j: 1.0 + j for j in range(plat.n_core_types)}
    res = run_loop(
        plat, spec, n_iterations=n, overhead=ov,
        offline_sf=offline if spec.needs_offline_sf else None,
        obs=obs, backend=backend,
    )
    return res, obs.decisions.to_jsonl()


def key(res):
    return (
        res.loop_name, res.start_time, res.end_time,
        tuple(res.finish_times), tuple(res.iterations),
        res.dispatches, res.scheduler_calls, res.estimated_sf,
        tuple(res.ranges),
    )


def main():
    bad = total = 0
    for pn in PLATFORMS:
        for sched in SCHEDULES:
            for i, ov in enumerate(OVERHEADS):
                for n in SIZES:
                    total += 1
                    r_ref, d_ref = run_one(pn, sched, ov, n, "reference")
                    r_vec, d_vec = run_one(pn, sched, ov, n, "vectorized")
                    if key(r_ref) != key(r_vec) or d_ref != d_vec:
                        bad += 1
                        print(f"MISMATCH {pn} {sched} ov{i} n={n}")
                        if key(r_ref) != key(r_vec):
                            print("  result differs")
                            for f, (a, b) in zip(
                                ["name", "t0", "t1", "fin", "it", "disp",
                                 "calls", "sf", "ranges"],
                                zip(key(r_ref), key(r_vec)),
                            ):
                                if a != b:
                                    print(f"    {f}: {a!r} != {b!r}")
                        if d_ref != d_vec:
                            print("  decision log differs")
    print(f"{bad}/{total} mismatches")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
