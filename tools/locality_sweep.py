"""Ad-hoc reference-vs-vectorized sweep over whole programs (dev tool).

Exercises the ownership/locality warm path (repeated invocations of the
same loop), serial phases, nowait chains and the decision log, on real
suite programs under both backends. Exit 0 iff zero mismatches.
"""
import sys

from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.obs import Observability
from repro.perfmodel.locality import LocalityModel
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.sched import parse_schedule
from repro.workloads.registry import all_programs

SCHEDULES = [
    "static", "dynamic,1", "dynamic,16", "guided",
    "aid_static", "aid_hybrid,80", "aid_dynamic,1,5", "aid_auto,1,5",
    "aid_steal,8",
]


def run_once(program, platform, sched, backend):
    import os

    os.environ["REPRO_BACKEND"] = backend
    try:
        spec = parse_schedule(sched)
        obs = Observability()
        tables = None
        if spec.needs_offline_sf:
            tables = {
                loop.name: {
                    j: 1.0 + j for j in range(platform.n_core_types)
                }
                for phase in program.phases
                if hasattr(phase, "name") and hasattr(phase, "n_iterations")
                for loop in [phase]
            }
        runner = ProgramRunner(
            platform,
            env=OmpEnv(schedule="dynamic,1"),
            schedule_override=spec,
            offline_sf_tables=tables,
            locality=LocalityModel(enabled=True),
            obs=obs,
        )
        res = runner.run(program)
    finally:
        os.environ.pop("REPRO_BACKEND", None)
    key = (
        res.completion_time,
        res.serial_time,
        tuple(
            (
                r.loop_name, r.start_time, r.end_time,
                tuple(r.finish_times), tuple(r.iterations),
                r.dispatches, r.scheduler_calls, tuple(r.ranges),
            )
            for r in res.loop_results
        ),
    )
    return key, obs.decisions.to_jsonl()


def main():
    bad = total = 0
    programs = all_programs()[:6]
    for platform_f in (odroid_xu4, xeon_emulated):
        for program in programs:
            for sched in SCHEDULES:
                total += 1
                kr, dr = run_once(program, platform_f(), sched, "reference")
                kv, dv = run_once(program, platform_f(), sched, "vectorized")
                if kr != kv or dr != dv:
                    bad += 1
                    print(
                        f"MISMATCH {platform_f.__name__} "
                        f"{program.name} {sched} "
                        f"result={'!=' if kr != kv else '=='} "
                        f"log={'!=' if dr != dv else '=='}"
                    )
    print(f"{bad}/{total} mismatches")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
