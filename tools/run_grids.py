import sys, time
from repro.experiments.harness import run_grid
from repro.amp import odroid_xu4, xeon_emulated
from repro.metrics.stats import summarize_gains

for plat in (odroid_xu4(), xeon_emulated()):
    t0 = time.perf_counter()
    g = run_grid(plat)
    print(g.to_table())
    for new, ref in [("AID-static","static(BS)"),("AID-hybrid","static(BS)"),("AID-dynamic","dynamic(BS)")]:
        s = summarize_gains(g.column(new), g.column(ref))
        print(f"  {new} vs {ref}: mean {s['mean']*100:.1f}%  gmean {s['gmean']*100:.1f}%")
    print(f"  ({time.perf_counter()-t0:.1f}s)\n")
