"""Causal span tracing: the hierarchical span model of one run.

The metrics registry answers *how much*; spans answer *why*. A
:class:`SpanRecorder` captures one run as a deterministic tree of timed
spans — program → serial/loop → phase[sampling/steady/endgame] →
chunk, plus per-thread wake/dispatch/idle spans, worker-lifetime spans
from the real-thread team, and fault windows from the sim fault engine —
linked by parent/child containment and explicit causal edges (steal
victim→thief, fault→resample; fetch-and-add ordering is derivable from
the chunk spans' dispatch order and deliberately not materialized).

Design constraints, in priority order:

* **Determinism.** Span ids are content-derived hierarchical paths
  (``loop:ep.work#0/t3/c5``), never object identities, and
  :meth:`SpanRecorder.as_doc` canonically sorts spans and edges — so the
  reference backend (per-dispatch emission in event order) and the
  vectorized backend (bulk columnar emission at loop end, mirroring
  ``observe_spans``) serialize byte-identical documents, and merged
  fleet snapshots inherit the jobs=1 ≡ jobs=N equality contract.
* **Exact tiling.** Within a runtime-scheduled loop, each thread's
  spans tile its busy window ``[entry, finish]`` with no gaps: wake →
  (dispatch → compute)* → final empty take, then the barrier idle span.
  The critical-path extractor (:mod:`repro.obs.critpath`) walks this
  tiling backward from program completion, so the path's category
  attribution sums to the makespan exactly.
* **Zero cost when off.** The recorder is an opt-in third member of
  :class:`~repro.obs.Observability` (``spans=None`` by default); every
  emission site gates on one ``is not None`` check.

Categories carried by spans (``cat``):

``compute-big``/``compute-small``
    chunk compute time, split by the executing core's type (the fastest
    core type of the platform is "big", everything else "small").
``dispatch``
    runtime overhead: wake/loop-start cost, scheduler calls, pool
    serialization, the final empty take.
``sampling``
    dispatch overhead inside the loop's sampling phase — the price of
    learning SF at runtime (reclassified from ``dispatch`` at loop end
    using the decision log's SF publication times).
``idle``
    barrier waits and workers idling through serial phases.
``serial``
    the master thread executing a serial phase.
``fault``
    fault-engine windows (throttle/offline/stall/spike); annotation
    spans, not part of the busy tiling.
``worker``
    real-thread worker lifetimes (wall clock; real backend only).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

#: Span document schema identifier.
SPANS_SCHEMA = "repro.obs.spans/v1"

#: Categories that participate in the busy-time tiling (everything a
#: critical path may traverse). Structural spans (program/loop/phase)
#: and annotations (fault/worker) are excluded.
TILING_CATS = frozenset(
    {"compute-big", "compute-small", "dispatch", "sampling", "idle",
     "serial", "stall"}
)

#: Causal edge kinds with explicit materialization.
EDGE_KINDS = ("steal", "fault_resample")


@dataclass
class Span:
    """One timed interval in the run's span tree."""

    span_id: str
    parent: str | None
    name: str
    cat: str
    t0: float
    t1: float
    tid: int = -1
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        doc = {
            "id": self.span_id,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "t0": self.t0,
            "t1": self.t1,
            "tid": self.tid,
        }
        if self.attrs:
            doc["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        return doc


@dataclass(frozen=True)
class CausalEdge:
    """A causal (not containment) link between two spans."""

    src: str
    dst: str
    kind: str
    t: float

    def as_dict(self) -> dict:
        return {"src": self.src, "dst": self.dst, "kind": self.kind,
                "t": self.t}


class SpanRecorder:
    """Collects one run's spans; opt-in member of ``Observability``.

    Attributes:
        context: free-form trace-context label (propagated through fleet
            ``JobSpec.trace_context`` so span-capturing jobs occupy
            distinct cache entries).
        spans: recorded spans, in emission order (canonicalized by
            :meth:`as_doc`).
        edges: explicit causal edges.
    """

    enabled = True

    def __init__(self, context: str = "trace") -> None:
        self.context = context
        self.spans: list[Span] = []
        self.edges: list[CausalEdge] = []
        self._loop_inv: dict[str, int] = {}
        self._serial_inv: dict[str, int] = {}
        self._program: str | None = None
        self._current_loop: str | None = None
        self._last_loop: str | None = None
        #: (loop_path, tid) -> next chunk ordinal; gives chunk spans
        #: backend-stable ids (per-tid dispatch order is identical in
        #: event-ordered and columnar emission).
        self._chunk_seq: dict[tuple[str, int], int] = {}
        #: loop_path -> index of first span emitted for that loop.
        self._loop_mark: dict[str, int] = {}

    # -- program level ------------------------------------------------------

    @property
    def current_loop(self) -> str | None:
        """The loop span currently open (fault engine parents here)."""
        return self._current_loop

    def begin_program(self, name: str) -> str:
        self._program = f"program:{name}"
        return self._program

    def end_program(self, t0: float, t1: float) -> None:
        if self._program is None:
            return
        self.spans.append(
            Span(self._program, None, self._program.split(":", 1)[1],
                 "program", t0, t1, -1)
        )
        self._program = None

    def record_serial(
        self, phase_name: str, t0: float, t1: float, n_threads: int
    ) -> None:
        """Master executes the phase (cat ``serial``); workers idle."""
        k = self._serial_inv.get(phase_name, 0)
        self._serial_inv[phase_name] = k + 1
        base = f"serial:{phase_name}#{k}"
        if self._program is not None:
            base = f"{self._program}/{base}"
        parent = self._program
        self.spans.append(Span(base, parent, phase_name, "serial", t0, t1, 0))
        for tid in range(1, n_threads):
            self.spans.append(
                Span(f"{base}/t{tid}", base, phase_name, "idle", t0, t1, tid)
            )

    def record_barrier(self, tid: int, t0: float, t1: float) -> None:
        """Barrier wait of one thread after the most recent loop.

        The barrier interval extends past the loop span (it includes the
        barrier overhead charged after loop completion), so the span is
        parented to the program, not the loop.
        """
        loop = self._last_loop
        if loop is None:
            return
        self.spans.append(
            Span(f"{loop}/t{tid}/barrier", self._program, "barrier", "idle",
                 t0, t1, tid)
        )

    # -- loop level (backends) ----------------------------------------------

    def begin_loop(self, loop_name: str) -> str:
        k = self._loop_inv.get(loop_name, 0)
        self._loop_inv[loop_name] = k + 1
        path = f"loop:{loop_name}#{k}"
        if self._program is not None:
            path = f"{self._program}/{path}"
        self._current_loop = path
        self._loop_mark[path] = len(self.spans)
        return path

    def record_wake(self, loop: str, tid: int, t0: float, t1: float) -> None:
        self.spans.append(
            Span(f"{loop}/t{tid}/wake", loop, "wake", "dispatch", t0, t1, tid)
        )

    def record_empty(self, loop: str, tid: int, t0: float, t1: float) -> None:
        # Shares the chunk ordinal sequence: a thread's final (or, under
        # faults, repeated) empty take slots into its dispatch order.
        key = (loop, tid)
        k = self._chunk_seq.get(key, 0)
        self._chunk_seq[key] = k + 1
        self.spans.append(
            Span(f"{loop}/t{tid}/e{k}", loop, "empty_take", "dispatch",
                 t0, t1, tid)
        )

    def record_chunk(
        self,
        loop: str,
        tid: int,
        t_dispatch: float,
        t_overhead_end: float,
        t_done: float,
        lo: int,
        hi: int,
        big: bool,
    ) -> None:
        """One dispatch: overhead span + compute span (scalar path)."""
        key = (loop, tid)
        k = self._chunk_seq.get(key, 0)
        self._chunk_seq[key] = k + 1
        base = f"{loop}/t{tid}"
        self.spans.append(
            Span(f"{base}/d{k}", loop, "dispatch", "dispatch",
                 t_dispatch, t_overhead_end, tid,
                 {"lo": lo, "hi": hi})
        )
        if t_done > t_overhead_end or hi > lo:
            self.spans.append(
                Span(f"{base}/c{k}", loop, "chunk",
                     "compute-big" if big else "compute-small",
                     t_overhead_end, t_done, tid, {"lo": lo, "hi": hi})
            )

    def record_chunks_bulk(
        self,
        loop: str,
        tid: int,
        t_dispatch: Sequence[float],
        t_overhead_end: Sequence[float],
        t_done: Sequence[float],
        los: Sequence[int],
        his: Sequence[int],
        big: bool,
    ) -> None:
        """Columnar emission for one thread, mirroring ``observe_spans``.

        Arrays must be in dispatch order (the vectorized engine's
        per-thread columns are); ids continue the same per-(loop, tid)
        ordinal sequence the scalar path uses, so both backends emit
        identically-named spans.
        """
        key = (loop, tid)
        k = self._chunk_seq.get(key, 0)
        base = f"{loop}/t{tid}"
        cat = "compute-big" if big else "compute-small"
        append = self.spans.append
        for i in range(len(t_dispatch)):
            lo = int(los[i])
            hi = int(his[i])
            append(
                Span(f"{base}/d{k}", loop, "dispatch", "dispatch",
                     float(t_dispatch[i]), float(t_overhead_end[i]), tid,
                     {"lo": lo, "hi": hi})
            )
            append(
                Span(f"{base}/c{k}", loop, "chunk", cat,
                     float(t_overhead_end[i]), float(t_done[i]), tid,
                     {"lo": lo, "hi": hi})
            )
            k += 1
        self._chunk_seq[key] = k

    def end_loop(
        self,
        loop: str,
        t0: float,
        t1: float,
        decisions: Iterable[Mapping] = (),
        loop_name: str | None = None,
    ) -> None:
        """Close a loop: emit the loop span, derive phase spans from the
        run's decision-record slice, and reclassify sampling overhead.

        Phases: *sampling* ends at the last SF publication this run (if
        any); *endgame* starts at the first endgame/steal/drain decision
        after sampling; *steady* is the remainder. Dispatch spans whose
        interval falls inside the sampling window are reclassified to
        cat ``sampling`` — the runtime price of learning SF.
        """
        from repro.obs.decisions import SF_EVENTS

        name = loop_name if loop_name is not None else loop.rsplit(
            ":", 1)[-1].rsplit("#", 1)[0]
        self.spans.append(
            Span(loop, self._program, name, "loop", t0, t1, -1)
        )
        sampling_end = None
        endgame_start = None
        for rec in decisions:
            if rec.get("loop") != name:
                continue
            ev = rec.get("event")
            t = rec.get("t")
            if t is None:
                continue
            t = float(t)
            if ev in SF_EVENTS and rec.get("sf"):
                if sampling_end is None or t > sampling_end:
                    sampling_end = t
            elif ev in ("endgame", "steal", "wait_steal", "drain", "serve_pool"):
                if endgame_start is None or t < endgame_start:
                    endgame_start = t
        bounds: list[tuple[str, float, float]] = []
        lo = t0
        if sampling_end is not None and t0 < sampling_end < t1:
            bounds.append(("sampling", t0, sampling_end))
            lo = sampling_end
        if endgame_start is not None and lo < endgame_start < t1:
            bounds.append(("steady", lo, endgame_start))
            bounds.append(("endgame", endgame_start, t1))
        elif lo < t1:
            bounds.append(("steady", lo, t1))
        phase_ids = []
        for pname, p0, p1 in bounds:
            pid = f"{loop}/phase:{pname}"
            phase_ids.append((pid, p0, p1, pname))
            self.spans.append(Span(pid, loop, pname, "phase", p0, p1, -1))
        # Reparent chunk/dispatch spans into their containing phase and
        # reclassify sampling-phase dispatch overhead. A span straddling
        # a phase boundary stays a direct child of the loop.
        if phase_ids:
            mark = self._loop_mark.get(loop, 0)
            for span in self.spans[mark:]:
                if span.parent != loop or span.cat not in (
                    "dispatch", "compute-big", "compute-small"
                ):
                    continue
                for pid, p0, p1, pname in phase_ids:
                    if p0 <= span.t0 and span.t1 <= p1:
                        span.parent = pid
                        if pname == "sampling" and span.cat == "dispatch":
                            span.cat = "sampling"
                        break
        # Steal causal edges, derived from the decision slice: the
        # victim's range feeds the thief's next chunks.
        for rec in decisions:
            if rec.get("event") != "steal" or rec.get("loop") != name:
                continue
            victim = rec.get("victim")
            thief = rec.get("tid")
            if victim is None or thief is None:
                continue
            self.edges.append(
                CausalEdge(
                    f"{loop}/t{victim}", f"{loop}/t{thief}", "steal",
                    float(rec.get("t", t1)),
                )
            )
        self._last_loop = loop
        self._current_loop = None

    def record_inline_loop(
        self,
        loop: str,
        t0: float,
        finishes: Sequence[float],
        bigs: Sequence[bool],
        loop_name: str,
    ) -> None:
        """Inline-static lowering: one compute span per thread, no
        dispatches (vanilla GCC's clause-less loop)."""
        self.spans.append(
            Span(loop, self._program, loop_name, "loop",
                 t0, max(finishes), -1)
        )
        for tid, t1 in enumerate(finishes):
            self.spans.append(
                Span(f"{loop}/t{tid}/c0", loop, "chunk",
                     "compute-big" if bigs[tid] else "compute-small",
                     t0, t1, tid)
            )
        self._last_loop = loop
        self._current_loop = None

    # -- faults & workers ---------------------------------------------------

    def record_fault(
        self, name: str, t0: float, t1: float,
        tid: int = -1, **attrs: object,
    ) -> str:
        """A fault-engine window, parented to the open loop span."""
        loop = self._current_loop or self._last_loop
        prefix = f"{loop}/" if loop else ""
        k = sum(
            1 for s in self.spans
            if s.cat == "fault" and s.name == name
        )
        sid = f"{prefix}fault:{name}#{k}"
        self.spans.append(
            Span(sid, loop, name, "fault", t0, t1, tid, dict(attrs))
        )
        return sid

    def record_worker(
        self, tid: int, t0: float, t1: float, **attrs: object
    ) -> None:
        """Real-thread worker lifetime (wall-clock seconds)."""
        loop = self._current_loop or self._last_loop
        prefix = f"{loop}/" if loop else ""
        k = sum(1 for s in self.spans if s.cat == "worker" and s.tid == tid)
        self.spans.append(
            Span(f"{prefix}worker:t{tid}#{k}", loop, f"worker-{tid}",
                 "worker", t0, t1, tid, dict(attrs))
        )

    def edge(self, src: str, dst: str, kind: str, t: float) -> None:
        self.edges.append(CausalEdge(src, dst, kind, t))

    # -- serialization ------------------------------------------------------

    def as_doc(self) -> dict:
        """Canonical document: spans sorted by (t0, t1, id), edges by
        (t, kind, src, dst). Emission order — which differs between the
        event-ordered reference backend and the columnar vectorized
        backend — never reaches the wire."""
        return {
            "schema": SPANS_SCHEMA,
            "context": self.context,
            "spans": [
                s.as_dict()
                for s in sorted(
                    self.spans, key=lambda s: (s.t0, s.t1, s.span_id)
                )
            ],
            "edges": [
                e.as_dict()
                for e in sorted(
                    self.edges, key=lambda e: (e.t, e.kind, e.src, e.dst)
                )
            ],
        }

    def as_json(self) -> str:
        return json.dumps(self.as_doc(), sort_keys=True,
                          separators=(",", ":"))


def load_span_doc(doc: Mapping) -> list[Span]:
    """Rehydrate spans from a serialized document."""
    return [
        Span(
            span_id=str(s["id"]),
            parent=s.get("parent"),
            name=str(s.get("name", "")),
            cat=str(s.get("cat", "")),
            t0=float(s["t0"]),
            t1=float(s["t1"]),
            tid=int(s.get("tid", -1)),
            attrs=dict(s.get("attrs") or {}),
        )
        for s in doc.get("spans", [])
    ]


def span_violations(doc: Mapping, eps: float = 1e-9) -> list[str]:
    """Well-formedness invariants over one span document.

    * every non-null parent id names a span in the document;
    * parent chains terminate (no cycles);
    * every child interval nests inside its parent's (within ``eps``);
    * every span has ``t1 >= t0``;
    * at most one ``program`` root; structural roots are program or
      loop spans only.
    """
    spans = load_span_doc(doc)
    out: list[str] = []
    by_id: dict[str, Span] = {}
    for s in spans:
        if s.span_id in by_id:
            out.append(f"spans: duplicate span id {s.span_id!r}")
        by_id[s.span_id] = s
    programs = [s for s in spans if s.cat == "program"]
    if len(programs) > 1:
        out.append(
            f"spans: {len(programs)} program roots (expected at most 1)"
        )
    for s in spans:
        if s.t1 < s.t0 - eps:
            out.append(
                f"spans: {s.span_id} ends before it starts "
                f"({s.t0!r} -> {s.t1!r})"
            )
        if s.parent is None:
            if s.cat not in ("program", "loop", "fault", "worker"):
                out.append(
                    f"spans: root {s.span_id} has category {s.cat!r} "
                    "(roots must be program/loop spans)"
                )
            continue
        parent = by_id.get(s.parent)
        if parent is None:
            out.append(f"spans: {s.span_id} has unknown parent {s.parent!r}")
            continue
        if s.cat in ("fault", "worker"):
            continue  # annotations may extend past the loop window
        if s.t0 < parent.t0 - eps or s.t1 > parent.t1 + eps:
            out.append(
                f"spans: {s.span_id} [{s.t0!r}, {s.t1!r}] escapes parent "
                f"{parent.span_id} [{parent.t0!r}, {parent.t1!r}]"
            )
    # Cycle check: walk every parent chain with a visited set.
    for s in spans:
        seen = set()
        cur = s
        while cur.parent is not None:
            if cur.parent in seen:
                out.append(f"spans: parent cycle through {cur.parent!r}")
                break
            seen.add(cur.parent)
            nxt = by_id.get(cur.parent)
            if nxt is None:
                break
            cur = nxt
    return out
