"""Structured scheduler decision log.

The paper validates the AID schedulers *observationally*: Fig. 2 plots
per-loop SF profiles, Fig. 4 shows how each dispatch decision plays out
in a trace. The decision log makes those figures reproducible from a
single run artifact: every AID scheduler appends one record per decision
point — sampling-chunk grants, SF publication, AID allotments, phase
joins/resmoothing, endgame switches — carrying the sampled per-type mean
times, the SF estimate in force, and the chunk target chosen.

Records are plain dicts with a small required core::

    {"seq": 0, "t": 1.5e-4, "loop": "ep.main", "scheduler": "aid_static",
     "tid": 3, "event": "aid_allotment", ...}

plus event-specific fields (``sf``, ``mean_times``, ``targets``,
``chunk_target``, ``range``, ...). Everything is JSON-serializable; SF
dicts use stringified core-type indices as keys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.errors import ObsError

#: Fields present on every record, in schema order.
REQUIRED_FIELDS = ("seq", "t", "loop", "scheduler", "tid", "event")

#: Decision events that publish an SF estimate (one per AID variant).
#: The report CLI and the ``sf_estimate`` drift timeseries both key on
#: these.
SF_EVENTS = ("publish_targets", "publish_ratio", "decide", "partition")

#: Log format identifier written by :meth:`DecisionLog.to_jsonl` consumers.
SCHEMA = "repro.obs.decisions/v1"


class DecisionLog:
    """Append-only list of scheduler decision records."""

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict] = []

    def record(self, *, loop: str, scheduler: str, tid: int, t: float,
               event: str, **fields: object) -> None:
        """Append one decision record (``seq`` is assigned here)."""
        self.records.append({
            "seq": len(self.records),
            "t": float(t),
            "loop": loop,
            "scheduler": scheduler,
            "tid": int(tid),
            "event": event,
            **fields,
        })

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records)

    def for_loop(self, loop: str) -> list[dict]:
        return [r for r in self.records if r["loop"] == loop]

    def events(self, event: str) -> list[dict]:
        return [r for r in self.records if r["event"] == event]

    def validate(self) -> None:
        """Check the schema core of every record (tests call this)."""
        for i, rec in enumerate(self.records):
            missing = [f for f in REQUIRED_FIELDS if f not in rec]
            if missing:
                raise ObsError(f"decision record {i} missing fields {missing}")
            if rec["seq"] != i:
                raise ObsError(
                    f"decision record {i} has out-of-order seq {rec['seq']}"
                )

    # -- serialization ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, deterministic key order."""
        return "".join(
            json.dumps(rec, sort_keys=True) + "\n" for rec in self.records
        )

    def write_jsonl(self, path: str | Path) -> str:
        text = self.to_jsonl()
        Path(path).write_text(text, encoding="utf-8")
        return text

    @staticmethod
    def load_jsonl(path: str | Path) -> list[dict]:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        return [json.loads(line) for line in lines if line.strip()]


class NullDecisionLog(DecisionLog):
    """Discards everything; the default when observability is off."""

    enabled = False

    def record(self, **fields: object) -> None:  # type: ignore[override]
        pass


class DecisionEmitter:
    """Per-scheduler-instance handle binding loop and scheduler names.

    Schedulers guard field construction with the ``on`` attribute so the
    disabled path costs a single attribute check per decision point::

        if self.dec.on:
            self.dec.emit(tid, now, "publish_targets", sf=sf_as_json(sf))
    """

    __slots__ = ("on", "_log", "_loop", "_scheduler")

    def __init__(self, obs, loop_name: str, scheduler_name: str) -> None:
        self.on = bool(obs.enabled)
        self._log = obs.decisions
        self._loop = loop_name
        self._scheduler = scheduler_name

    def emit(self, tid: int, t: float, event: str, **fields: object) -> None:
        if self.on:
            # Inlined DecisionLog.record: emit() fires once per scheduler
            # decision on instrumented runs, so the extra call layer and
            # double kwargs expansion are worth skipping. ``on`` is False
            # for NullDecisionLog, so only the real log is ever reached.
            records = self._log.records
            records.append({
                "seq": len(records),
                "t": float(t),
                "loop": self._loop,
                "scheduler": self._scheduler,
                "tid": int(tid),
                "event": event,
                **fields,
            })


def sf_as_json(sf: dict[int, float] | None) -> dict[str, float] | None:
    """SF tables keyed by int type index -> JSON-friendly string keys."""
    return None if sf is None else {str(j): float(v) for j, v in sf.items()}
