"""The makespan "explain" engine: diff two runs' critical paths.

Given two span-bearing snapshots A (baseline) and B (candidate), the
explainer extracts both critical paths and answers *where the makespan
went*: a ranked report of per-category attribution deltas ("sampling
phase +0.42s", "endgame idle −0.31s") plus fault-window contributors —
how much of B's critical path runs inside each fault span's window,
minus A's time in the same window. On the PR 5 throttle A/B pair this
is what names the throttle window as the top makespan contributor.

Snapshots may be single-run span documents or fleet-merged snapshots
(whose ``spans`` section carries one labelled document per job); merged
inputs are explained per matching job label, or collapsed onto one
labelled pair with ``--job``.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ObsError
from repro.obs.critpath import extract_critical_path
from repro.obs.spans import load_span_doc

#: Schema of the explain JSON document.
EXPLAIN_SCHEMA = "repro.obs.explain/v1"


def _span_docs(snapshot: Mapping) -> list[tuple[str, Mapping]]:
    """Every span document in a snapshot, as (label, doc) pairs.

    Accepts a bare span document, a single-run snapshot with a
    ``spans`` document, or a fleet-merged snapshot whose ``spans`` is a
    list of ``{"labels": ..., "doc": ...}`` entries.
    """
    if "spans" in snapshot:
        section = snapshot["spans"]
        if isinstance(section, list):
            out = []
            for entry in section:
                labels = entry.get("labels", {})
                label = "/".join(
                    str(labels[k]) for k in sorted(labels)
                ) or "job"
                out.append((label, entry.get("doc", {})))
            return out
        if isinstance(section, Mapping):
            return [("run", section)]
    if "schema" in snapshot and str(snapshot["schema"]).startswith(
        "repro.obs.spans/"
    ):
        return [("run", snapshot)]
    return []


def _fault_windows(doc: Mapping) -> list[dict]:
    return [
        {"id": s.span_id, "name": s.name, "t0": s.t0, "t1": s.t1,
         "attrs": s.attrs}
        for s in load_span_doc(doc)
        if s.cat == "fault"
    ]


def _path_overlap(cp: Mapping, t0: float, t1: float) -> float:
    """Seconds of a critical path spent inside the window [t0, t1]."""
    total = 0.0
    for step in cp.get("steps", []):
        lo = max(float(step["t0"]), t0)
        hi = min(float(step["t1"]), t1)
        if hi > lo:
            total += hi - lo
    return total


def explain_pair(doc_a: Mapping, doc_b: Mapping) -> dict:
    """Explain one baseline/candidate span-document pair."""
    cp_a = extract_critical_path(doc_a)
    cp_b = extract_critical_path(doc_b)
    att_a = cp_a["attribution"]
    att_b = cp_b["attribution"]
    contributors = []
    for cat in sorted(set(att_a) | set(att_b)):
        delta = att_b.get(cat, 0.0) - att_a.get(cat, 0.0)
        if delta == 0.0:
            continue
        contributors.append(
            {
                "kind": "category",
                "name": cat,
                "before": att_a.get(cat, 0.0),
                "after": att_b.get(cat, 0.0),
                "delta": delta,
            }
        )
    # Fault-window contributors: critical-path seconds inside each fault
    # window of either run, candidate minus baseline. A throttle window
    # that stretched the path dominates this list.
    windows = {
        (w["name"], w["t0"], w["t1"]): w
        for w in _fault_windows(doc_a) + _fault_windows(doc_b)
    }
    for key in sorted(windows):
        w = windows[key]
        before = _path_overlap(cp_a, w["t0"], w["t1"])
        after = _path_overlap(cp_b, w["t0"], w["t1"])
        delta = after - before
        if delta == 0.0:
            continue
        contributors.append(
            {
                "kind": "fault-window",
                "name": f"{w['name']} [{w['t0']:.6g}, {w['t1']:.6g})",
                "before": before,
                "after": after,
                "delta": delta,
            }
        )
    # Ranking: an injected-fault window that accounts for a substantial
    # share of the makespan change is the *cause* and outranks the
    # category shifts it produced — category deltas are symptoms, and
    # offsetting swings (work migrating from small to big cores under a
    # throttle) can individually exceed the net change they explain.
    # Within each tier, largest |delta| first.
    m_delta = abs(cp_b["makespan"] - cp_a["makespan"])

    def _rank(c: Mapping) -> tuple:
        primary = (
            c["kind"] == "fault-window"
            and abs(c["delta"]) >= 0.25 * m_delta > 0.0
        )
        return (0 if primary else 1, -abs(c["delta"]), c["kind"], c["name"])

    contributors.sort(key=_rank)
    return {
        "schema": EXPLAIN_SCHEMA,
        "makespan_before": cp_a["makespan"],
        "makespan_after": cp_b["makespan"],
        "makespan_delta": cp_b["makespan"] - cp_a["makespan"],
        "contributors": contributors,
    }


def explain(snapshot_a: Mapping, snapshot_b: Mapping,
            job: str | None = None) -> dict:
    """Explain two snapshots (single-run or fleet-merged).

    With merged inputs, pairs span documents by job label and explains
    each matching pair; ``job`` restricts to one label (substring
    match). Returns an aggregate document with per-pair reports.
    """
    docs_a = dict(_span_docs(snapshot_a))
    docs_b = dict(_span_docs(snapshot_b))
    if not docs_a or not docs_b:
        raise ObsError(
            "explain needs span-bearing snapshots on both sides "
            "(record with trace spans enabled)"
        )
    labels = sorted(set(docs_a) & set(docs_b))
    if job is not None:
        labels = [lab for lab in labels if job in lab]
    if not labels:
        # Disjoint labels (e.g. an unthrottled vs a throttled run with
        # different config labels): fall back to the positional pairing
        # of the first document on each side.
        lab_a = sorted(docs_a)[0]
        lab_b = sorted(docs_b)[0]
        report = explain_pair(docs_a[lab_a], docs_b[lab_b])
        report["pair"] = [lab_a, lab_b]
        return {
            "schema": EXPLAIN_SCHEMA,
            "pairs": [report],
        }
    return {
        "schema": EXPLAIN_SCHEMA,
        "pairs": [
            {**explain_pair(docs_a[lab], docs_b[lab]), "pair": [lab, lab]}
            for lab in labels
        ],
    }


def format_explain(report: Mapping, top: int = 12) -> str:
    """Render an explain document as the ranked 'where the makespan
    went' report."""
    pairs = report.get("pairs")
    if pairs is None:
        pairs = [report]
    lines: list[str] = []
    for pair in pairs:
        tag = pair.get("pair")
        if tag and tag[0] != tag[1]:
            lines.append(f"== {tag[0]} -> {tag[1]} ==")
        elif tag:
            lines.append(f"== {tag[0]} ==")
        before = pair["makespan_before"]
        after = pair["makespan_after"]
        delta = pair["makespan_delta"]
        sign = "+" if delta >= 0 else ""
        lines.append(
            f"makespan: {before:.6f}s -> {after:.6f}s "
            f"({sign}{delta:.6f}s)"
        )
        contributors = pair.get("contributors", [])[:top]
        if not contributors:
            lines.append("  (no attribution changes)")
            continue
        lines.append(
            f"  {'contributor':<44s}{'before':>12s}{'after':>12s}"
            f"{'delta':>12s}"
        )
        for c in contributors:
            label = f"[{c['kind']}] {c['name']}"
            lines.append(
                f"  {label:<44s}{c['before']:>12.6f}{c['after']:>12.6f}"
                f"{c['delta']:>+12.6f}"
            )
    return "\n".join(lines)
