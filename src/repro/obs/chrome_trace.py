"""Chrome trace-event JSON export.

Converts a :class:`~repro.tracing.trace.Timeline` (or a
:class:`~repro.tracing.trace.TraceRecorder`) into the trace-event format
that ``chrome://tracing`` and Perfetto load directly — the interactive
counterpart of the Paraver CSV export. Each state interval becomes a
complete ("X") event on its thread's track; scheduler decision records
are overlaid as instant ("i") events, so the AID decisions of Figs. 2/4
can be read in context: click an instant to see the SF estimate and the
chunk target the scheduler chose at that moment.

Timestamps are microseconds (the format's unit); the simulator's seconds
are scaled by 1e6.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.timeseries import series_values
from repro.tracing.trace import Timeline, TraceRecorder

#: seconds -> trace-event microseconds.
_US = 1e6

#: Stable track sort: threads in tid order.
_PID = 1


def _timeline_of(trace: Timeline | TraceRecorder) -> Timeline:
    return trace.timeline() if isinstance(trace, TraceRecorder) else trace


def _series_doc(series) -> dict:
    """Accept live :class:`~repro.obs.timeseries.TimeSeries` instruments
    or their serialized dict form interchangeably."""
    return series.as_dict() if hasattr(series, "as_dict") else dict(series)


def to_trace_events(
    trace: Timeline | TraceRecorder,
    decisions: Iterable[dict] = (),
    timeseries: Iterable = (),
    process_name: str = "repro",
    spans: Iterable[dict] = (),
    edges: Iterable[dict] = (),
) -> list[dict]:
    """Build the ``traceEvents`` list.

    Args:
        trace: recorded per-thread state intervals.
        decisions: scheduler decision records (``DecisionLog.records``);
            each becomes an instant event on its thread's track.
        timeseries: windowed samplers (live instruments or their dict
            form); each becomes a counter ("C") lane — utilization for
            busy-mode series, the per-window mean for sample-mode — so
            Perfetto renders the timeline the snapshot carries. Empty
            (the default) emits nothing: existing duration-event output
            is byte-identical.
        process_name: the pid's display name in the viewer.
        spans: causal span dicts (a span doc's ``spans`` list, see
            :meth:`repro.obs.spans.SpanRecorder.as_doc`); each becomes a
            complete ("X") event on its thread's track under the
            ``span:<cat>`` category. Empty (the default) emits nothing,
            keeping pre-span exports byte-identical.
        edges: causal edge dicts (the span doc's ``edges`` list); each
            becomes a flow-event pair ("s" start at the victim/fault,
            "f" finish at the thief/resampled loop), so Perfetto draws
            steal and fault->resample arrows across tracks.
    """
    timeline = _timeline_of(trace)
    events: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for tid in timeline.thread_ids():
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": f"worker-{tid}"},
            }
        )
    for iv in sorted(
        timeline.intervals, key=lambda iv: (iv.t0, iv.tid, iv.t1)
    ):
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": iv.tid,
                "ts": iv.t0 * _US,
                "dur": iv.duration * _US,
                "name": iv.state.value,
                "cat": "state",
                "args": {"label": iv.label},
            }
        )
    for rec in decisions:
        args = {
            k: v
            for k, v in rec.items()
            if k not in ("t", "tid") and v is not None
        }
        events.append(
            {
                "ph": "i",
                "pid": _PID,
                # Decisions made before any thread context (e.g. offline-SF
                # publication at loop setup) carry tid -1; pin them to 0.
                "tid": max(0, rec["tid"]),
                "ts": rec["t"] * _US,
                "name": f"{rec['scheduler']}:{rec['event']}",
                "cat": "decision",
                "s": "t",  # thread-scoped instant
                "args": args,
            }
        )
    for series in timeseries:
        doc = _series_doc(series)
        labels = ",".join(
            f"{k}={v}" for k, v in sorted((doc.get("labels") or {}).items())
        )
        lane = f"{doc['name']}{{{labels}}}" if labels else doc["name"]
        window = float(doc.get("window", 1.0))
        for idx, value in series_values(doc):
            events.append(
                {
                    "ph": "C",
                    "pid": _PID,
                    "ts": idx * window * _US,
                    "name": lane,
                    "cat": "timeseries",
                    "args": {"value": value},
                }
            )
    for s in spans:
        args = {"id": s["id"]}
        if s.get("attrs"):
            args.update(s["attrs"])
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": max(0, int(s.get("tid", 0))),
                "ts": s["t0"] * _US,
                "dur": (s["t1"] - s["t0"]) * _US,
                "name": s["name"],
                "cat": f"span:{s['cat']}",
                "args": args,
            }
        )
    for i, e in enumerate(edges):
        ts = e["t"] * _US
        flow_id = i + 1  # flow ids must be nonzero
        events.append(
            {
                "ph": "s",
                "pid": _PID,
                "tid": _edge_tid(e["src"]),
                "ts": ts,
                "id": flow_id,
                "name": e["kind"],
                "cat": "causal",
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "pid": _PID,
                "tid": _edge_tid(e["dst"]),
                "ts": ts,
                "id": flow_id,
                "name": e["kind"],
                "cat": "causal",
            }
        )
    return events


def _edge_tid(endpoint: str) -> int:
    """Thread track for a causal-edge endpoint.

    Endpoints are span-id paths; per-thread ones embed ``/t<tid>``.
    Loop- or fault-scoped endpoints (no thread segment) pin to track 0.
    """
    tid = 0
    for part in endpoint.split("/"):
        if part.startswith("t") and part[1:].isdigit():
            tid = int(part[1:])
    return tid


def export_chrome_trace(
    trace: Timeline | TraceRecorder,
    decisions: Iterable[dict] = (),
    path: str | Path | None = None,
    process_name: str = "repro",
    timeseries: Iterable = (),
    spans: Iterable[dict] = (),
    edges: Iterable[dict] = (),
) -> str:
    """Serialize to a trace-event JSON document.

    Returns the JSON text; also writes it to ``path`` when given. The
    output is deterministic (sorted keys, no timestamps beyond the
    trace's own), so identical runs export byte-identical files — and
    runs that recorded no spans/edges export byte-identical files to
    pre-span versions.
    """
    doc = {
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs.chrome_trace"},
        "traceEvents": to_trace_events(
            trace, decisions, timeseries=timeseries,
            process_name=process_name, spans=spans, edges=edges,
        ),
    }
    text = json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
