"""Structured snapshot diffs and perf-regression detection.

Compares two snapshot documents (:mod:`repro.obs.snapshot` /
:class:`~repro.obs.merge.MergedSnapshot` output) metric by metric and
classifies every difference:

* **informational** — metrics expected to vary between valid runs:
  wall-clock durations and the cache-resolution counters
  (``fleet_cache_hits`` / ``fleet_cache_misses`` / ``fleet_jobs_computed``
  flip wholesale between a cold run and its warm replay);
* **cost** — counters that measure waste (``*overhead*`` seconds,
  ``fleet_failures`` / ``fleet_timeouts`` / ``fleet_retries``): growing
  beyond the ``cost_rel`` tolerance is a regression, shrinking is an
  improvement;
* **simulation** — everything else: the simulator is deterministic, so
  any divergence beyond ``metric_rel`` is a regression;
* **histograms** — compared by a normalized L1 bucket distance
  (0 = identical shape, 1 = disjoint); beyond ``hist_dist`` is a
  regression unless the histogram is wall-clock;
* **timeseries** — windowed samplers compared by their integrated
  totals (busy seconds / sample sums) under ``metric_rel``;
* **digests** — quantile sketches gated on tail drift: p50/p99/p999
  growth beyond ``tail_rel`` is a ``tail-latency`` regression (the class
  mean/counter comparisons cannot catch — a fault-throttled run can
  match a healthy run's totals while its p99 explodes);
* **decision summaries** — per-scheduler event counts
  (:func:`~repro.obs.merge.summarize_decisions`); any divergence is a
  regression under ``strict_decisions`` (the default), a mere change
  otherwise;
* **critical paths** — when both snapshots carry span traces, each
  trace's critical path (:func:`repro.obs.critpath.extract_critical_path`)
  is compared per category: makespan or per-category attribution growth
  beyond ``critpath_rel`` (relative to the baseline makespan) is a
  ``critical-path`` regression — a run can keep its totals while the
  *blocking* chain shifts from compute to stall, and only the critical
  path sees that.

``python -m repro.obs.report diff A.json B.json [--fail-on-regression]``
is the CLI face; CI gates warm-cache reruns on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.obs.merge import WALL_CLOCK_METRICS, summarize_decisions
from repro.obs.timeseries import digest_quantile

#: The digest quantiles the tail-latency gate watches.
TAIL_QUANTILES = ((0.5, "p50"), (0.99, "p99"), (0.999, "p999"))

#: Counters whose value legitimately differs between valid runs of the
#: same grid (cache temperature, worker wall time).
#: ``fleet_heartbeats_total`` piggybacks on compute — one beat per
#: computed job — so it flips with cache temperature exactly like
#: ``fleet_jobs_computed``.
INFORMATIONAL_METRICS = WALL_CLOCK_METRICS | frozenset(
    {
        "fleet_cache_hits",
        "fleet_cache_misses",
        "fleet_jobs_computed",
        "fleet_heartbeats_total",
    }
)

#: Counters measuring waste: only *growth* is a regression.
COST_METRICS = frozenset(
    {
        "fleet_failures",
        "fleet_timeouts",
        "fleet_retries",
        "fleet_hangs_detected_total",
        "fleet_jobs_poisoned_total",
        "fleet_breaker_trips_total",
        "fleet_cache_errors_total",
    }
)


def is_informational(name: str) -> bool:
    return name in INFORMATIONAL_METRICS


def is_cost(name: str) -> bool:
    return name in COST_METRICS or "overhead" in name


@dataclass(frozen=True)
class DiffThresholds:
    """Tolerances for regression classification.

    Attributes:
        metric_rel: max relative divergence for simulation metrics.
        cost_rel: max relative *growth* for cost metrics.
        hist_dist: max normalized L1 bucket distance for histograms.
        tail_rel: max relative *growth* of a digest's p99/p999 before
            the difference is classified as a ``tail-latency``
            regression (shrinking tails are improvements).
        critpath_rel: max growth of a critical path's makespan or of
            one category's attribution, relative to the baseline
            makespan, before the difference is a ``critical-path``
            regression (shrinking is an improvement).
        strict_decisions: treat decision-summary divergence as a
            regression (True) or a plain change (False).
    """

    metric_rel: float = 0.01
    cost_rel: float = 0.10
    hist_dist: float = 0.05
    tail_rel: float = 0.10
    critpath_rel: float = 0.05
    strict_decisions: bool = True


@dataclass(frozen=True)
class DiffEntry:
    """One observed difference between the two snapshots."""

    kind: str  # counter | gauge | histogram | timeseries | digest | tail-latency | decisions
    name: str
    labels: tuple[tuple[str, str], ...]
    before: float | None
    after: float | None
    severity: str  # info | change | regression
    detail: str = ""

    def describe(self) -> str:
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        target = f"{self.name}{{{labels}}}" if labels else self.name
        before = "-" if self.before is None else f"{self.before:g}"
        after = "-" if self.after is None else f"{self.after:g}"
        tail = f"  ({self.detail})" if self.detail else ""
        return (
            f"{self.severity.upper():<10s} {self.kind:<9s} {target}: "
            f"{before} -> {after}{tail}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "before": self.before,
            "after": self.after,
            "severity": self.severity,
            "detail": self.detail,
        }


@dataclass
class SnapshotDiff:
    """All differences between two snapshots, plus compare stats."""

    entries: list[DiffEntry] = field(default_factory=list)
    compared: int = 0
    identical: int = 0

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.severity == "regression"]

    @property
    def changes(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.severity == "change"]

    @property
    def infos(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.severity == "info"]

    def to_dict(self) -> dict:
        return {
            "schema": "repro.obs.diff/v1",
            "compared": self.compared,
            "identical": self.identical,
            "regressions": len(self.regressions),
            "changes": len(self.changes),
            "informational": len(self.infos),
            "entries": [e.to_dict() for e in self.entries],
        }

    def format(self) -> str:
        lines = []
        for entry in sorted(
            self.entries,
            key=lambda e: (
                {"regression": 0, "change": 1, "info": 2}[e.severity],
                e.name,
                e.labels,
            ),
        ):
            lines.append(entry.describe())
        lines.append(
            f"{self.compared} metrics compared: {self.identical} identical, "
            f"{len(self.infos)} informational, {len(self.changes)} changed, "
            f"{len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)


def _rel(a: float, b: float) -> float:
    if a == b:
        return 0.0
    return abs(b - a) / max(abs(a), abs(b), 1e-12)


def _scalar_index(metrics: Mapping[str, list]) -> dict[tuple, tuple[str, float]]:
    out: dict[tuple, tuple[str, float]] = {}
    for kind, singular in (("counters", "counter"), ("gauges", "gauge")):
        for m in metrics.get(kind, []):
            key = (m["name"], tuple(sorted((str(k), str(v)) for k, v in m["labels"].items())))
            out[key] = (singular, float(m["value"]))
    return out


def _hist_index(metrics: Mapping[str, list]) -> dict[tuple, Mapping]:
    return {
        (m["name"], tuple(sorted((str(k), str(v)) for k, v in m["labels"].items()))): m
        for m in metrics.get("histograms", [])
    }


def histogram_distance(a: Mapping, b: Mapping) -> float:
    """Normalized L1 distance between two bucket-count vectors.

    Buckets are aligned by their ``le`` bound; a bound present in only
    one histogram contributes its full count. 0 = identical shape,
    1 = fully disjoint mass.
    """
    ca = {str(x["le"]): int(x["count"]) for x in a.get("buckets", [])}
    cb = {str(x["le"]): int(x["count"]) for x in b.get("buckets", [])}
    moved = sum(
        abs(ca.get(le, 0) - cb.get(le, 0)) for le in set(ca) | set(cb)
    )
    total = max(int(a.get("count", 0)), int(b.get("count", 0)), 1)
    # Disjoint mass shows up in two buckets (gone from one, arrived in
    # the other), so halve the L1 sum to land on the documented [0, 1].
    return moved / (2 * total)


def _doc_index(metrics: Mapping[str, list], kind: str) -> dict[tuple, Mapping]:
    return {
        (m["name"], tuple(sorted((str(k), str(v)) for k, v in m["labels"].items()))): m
        for m in metrics.get(kind, [])
    }


def _series_totals(doc: Mapping) -> tuple[float, float]:
    points = doc.get("points") or {}
    return (
        sum(float(v[0]) for v in points.values()),
        sum(float(v[1]) for v in points.values()),
    )


def _decision_summary_of(snapshot: Mapping) -> dict:
    summary = snapshot.get("decision_summary")
    if isinstance(summary, Mapping) and summary:
        return dict(summary)
    return summarize_decisions(snapshot.get("decisions", []) or [])


def _diff_scalar(
    entries: list[DiffEntry],
    kind: str,
    name: str,
    labels: tuple,
    before: float | None,
    after: float | None,
    thresholds: DiffThresholds,
) -> None:
    if is_informational(name):
        entries.append(
            DiffEntry(kind, name, labels, before, after, "info")
        )
        return
    if before is None or after is None:
        entries.append(
            DiffEntry(
                kind, name, labels, before, after, "regression",
                "present in only one snapshot",
            )
        )
        return
    if is_cost(name):
        if after > before:
            growth = (
                (after - before) / before if before > 0 else float("inf")
            )
        else:
            growth = 0.0
        grew = growth > thresholds.cost_rel
        severity = "regression" if grew else (
            "info" if after < before else "change"
        )
        detail = (
            f"cost grew {100 * growth:.1f}%"
            if grew
            else ("cost shrank" if after < before else "within tolerance")
        )
        entries.append(
            DiffEntry(kind, name, labels, before, after, severity, detail)
        )
        return
    rel = _rel(before, after)
    severity = "regression" if rel > thresholds.metric_rel else "change"
    entries.append(
        DiffEntry(
            kind, name, labels, before, after, severity,
            f"diverged {100 * rel:.2f}%",
        )
    )


def _span_doc_index(snapshot: Mapping) -> dict[tuple, Mapping]:
    """Span traces carried by a snapshot, keyed by their job labels.

    A merged fleet snapshot holds a list of ``{"labels", "doc"}``
    entries (one per traced job); a single-run snapshot holds one bare
    span document, keyed by the empty label tuple. Snapshots without
    spans index as empty.
    """
    spans = snapshot.get("spans")
    if spans is None:
        return {}
    if isinstance(spans, Mapping):
        return {(): spans}
    out: dict[tuple, Mapping] = {}
    for entry in spans:
        labels = tuple(
            sorted(
                (str(k), str(v))
                for k, v in (entry.get("labels") or {}).items()
            )
        )
        out[labels] = entry.get("doc") or {}
    return out


def _diff_critical_paths(
    diff: SnapshotDiff, a: Mapping, b: Mapping, thresholds: DiffThresholds
) -> None:
    """The ``critical-path`` regression class.

    Only active when both snapshots carry span traces — span-free
    snapshots diff exactly as before.
    """
    idx_a = _span_doc_index(a)
    idx_b = _span_doc_index(b)
    if not idx_a or not idx_b:
        return
    from repro.obs.critpath import extract_critical_path

    for key in sorted(set(idx_a) | set(idx_b)):
        diff.compared += 1
        if key not in idx_a or key not in idx_b:
            diff.entries.append(
                DiffEntry(
                    "critical-path", "makespan", key, None, None,
                    "regression", "trace present in only one snapshot",
                )
            )
            continue
        cp_a = extract_critical_path(idx_a[key])
        cp_b = extract_critical_path(idx_b[key])
        scale = max(cp_a["makespan"], 1e-12)
        rows = [("makespan", cp_a["makespan"], cp_b["makespan"])]
        attr_a, attr_b = cp_a["attribution"], cp_b["attribution"]
        rows += [
            (cat, attr_a.get(cat, 0.0), attr_b.get(cat, 0.0))
            for cat in sorted(set(attr_a) | set(attr_b))
        ]
        clean = True
        for name, before, after in rows:
            if before == after:
                continue
            clean = False
            growth = (after - before) / scale
            if growth > thresholds.critpath_rel:
                severity, detail = "regression", (
                    f"grew {100 * growth:.1f}% of baseline makespan"
                )
            elif after < before:
                severity, detail = "info", "critical path shrank"
            else:
                severity, detail = "change", "within tolerance"
            diff.entries.append(
                DiffEntry(
                    "critical-path", name, key, before, after, severity,
                    detail,
                )
            )
        if clean:
            diff.identical += 1


def diff_snapshots(
    a: Mapping, b: Mapping, thresholds: DiffThresholds | None = None
) -> SnapshotDiff:
    """Compare snapshot ``a`` (baseline) against ``b`` (candidate)."""
    thresholds = thresholds if thresholds is not None else DiffThresholds()
    diff = SnapshotDiff()

    scalars_a = _scalar_index(a.get("metrics", {}) or {})
    scalars_b = _scalar_index(b.get("metrics", {}) or {})
    for key in sorted(set(scalars_a) | set(scalars_b)):
        name, labels = key
        kind_a, val_a = scalars_a.get(key, (None, None))
        kind_b, val_b = scalars_b.get(key, (None, None))
        diff.compared += 1
        if val_a == val_b:
            diff.identical += 1
            continue
        _diff_scalar(
            diff.entries, kind_b or kind_a or "counter", name, labels,
            val_a, val_b, thresholds,
        )

    hists_a = _hist_index(a.get("metrics", {}) or {})
    hists_b = _hist_index(b.get("metrics", {}) or {})
    for key in sorted(set(hists_a) | set(hists_b)):
        name, labels = key
        diff.compared += 1
        ha, hb = hists_a.get(key), hists_b.get(key)
        if ha is None or hb is None:
            severity = "info" if is_informational(name) else "regression"
            diff.entries.append(
                DiffEntry(
                    "histogram", name, labels, None, None, severity,
                    "present in only one snapshot",
                )
            )
            continue
        dist = histogram_distance(ha, hb)
        if dist == 0.0 and float(ha.get("sum", 0)) == float(hb.get("sum", 0)):
            diff.identical += 1
            continue
        if is_informational(name):
            severity = "info"
        elif dist > thresholds.hist_dist:
            severity = "regression"
        else:
            severity = "change"
        diff.entries.append(
            DiffEntry(
                "histogram", name, labels,
                float(ha.get("sum", 0.0)), float(hb.get("sum", 0.0)),
                severity, f"bucket distance {dist:.3f}",
            )
        )

    # Timeseries: the totals (integrated busy seconds / summed samples)
    # must agree like any other simulation metric; per-window shape
    # divergence with matching totals is surfaced as a change.
    series_a = _doc_index(a.get("metrics", {}) or {}, "timeseries")
    series_b = _doc_index(b.get("metrics", {}) or {}, "timeseries")
    for key in sorted(set(series_a) | set(series_b)):
        name, labels = key
        diff.compared += 1
        sa, sb = series_a.get(key), series_b.get(key)
        if sa is None or sb is None:
            severity = "info" if is_informational(name) else "regression"
            diff.entries.append(
                DiffEntry(
                    "timeseries", name, labels, None, None, severity,
                    "present in only one snapshot",
                )
            )
            continue
        if sa == sb:
            diff.identical += 1
            continue
        sum_a, count_a = _series_totals(sa)
        sum_b, count_b = _series_totals(sb)
        if is_informational(name):
            diff.entries.append(
                DiffEntry("timeseries", name, labels, sum_a, sum_b, "info")
            )
            continue
        rel = max(_rel(sum_a, sum_b), _rel(count_a, count_b))
        severity = "regression" if rel > thresholds.metric_rel else "change"
        detail = (
            f"totals diverged {100 * rel:.2f}%"
            if rel > 0.0
            else "same totals, different window shape"
        )
        diff.entries.append(
            DiffEntry("timeseries", name, labels, sum_a, sum_b, severity, detail)
        )

    # Digests: the tail-latency gate. p99/p999 growth beyond tail_rel is
    # a regression of kind "tail-latency" — mean-preserving distribution
    # shifts that fatten the tail are exactly what counters miss.
    digests_a = _doc_index(a.get("metrics", {}) or {}, "digests")
    digests_b = _doc_index(b.get("metrics", {}) or {}, "digests")
    for key in sorted(set(digests_a) | set(digests_b)):
        name, labels = key
        diff.compared += 1
        da, db = digests_a.get(key), digests_b.get(key)
        if da is None or db is None:
            severity = "info" if is_informational(name) else "regression"
            diff.entries.append(
                DiffEntry(
                    "digest", name, labels, None, None, severity,
                    "present in only one snapshot",
                )
            )
            continue
        if da == db:
            diff.identical += 1
            continue
        if is_informational(name):
            diff.entries.append(
                DiffEntry(
                    "digest", name, labels,
                    float(da.get("sum", 0.0)), float(db.get("sum", 0.0)),
                    "info",
                )
            )
            continue
        worst_q, worst_growth = None, 0.0
        for q, q_name in TAIL_QUANTILES:
            qa, qb = digest_quantile(da, q), digest_quantile(db, q)
            if qb > qa:
                growth = (qb - qa) / qa if qa > 0 else float("inf")
                if growth > worst_growth:
                    worst_q, worst_growth = (q_name, qa, qb), growth
        if worst_q is not None and worst_growth > thresholds.tail_rel:
            q_name, qa, qb = worst_q
            diff.entries.append(
                DiffEntry(
                    "tail-latency", name, labels, qa, qb, "regression",
                    f"{q_name} grew {100 * worst_growth:.1f}%"
                    if worst_growth != float("inf")
                    else f"{q_name} grew from 0",
                )
            )
            continue
        diff.entries.append(
            DiffEntry(
                "digest", name, labels,
                float(da.get("sum", 0.0)), float(db.get("sum", 0.0)),
                "change",
                "tails within tolerance",
            )
        )

    _diff_critical_paths(diff, a, b, thresholds)

    dec_a = _decision_summary_of(a)
    dec_b = _decision_summary_of(b)
    schedulers = sorted(
        set(dec_a.get("schedulers", {})) | set(dec_b.get("schedulers", {}))
    )
    for sched in schedulers:
        ea = dec_a.get("schedulers", {}).get(sched, {})
        eb = dec_b.get("schedulers", {}).get(sched, {})
        diff.compared += 1
        if ea == eb:
            diff.identical += 1
            continue
        differing = sorted(
            event
            for event in set(ea.get("events", {})) | set(eb.get("events", {}))
            if ea.get("events", {}).get(event) != eb.get("events", {}).get(event)
        )
        diff.entries.append(
            DiffEntry(
                "decisions", sched, (),
                float(ea.get("total", 0)), float(eb.get("total", 0)),
                "regression" if thresholds.strict_decisions else "change",
                "events diverged: " + ", ".join(differing[:6]),
            )
        )
    return diff
