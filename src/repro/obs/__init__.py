"""Unified observability layer: metrics, decision log, exporters.

The paper's evidence is observational — Paraver traces (Figs. 1/4),
per-loop SF profiles (Fig. 2), runtime-overhead breakdowns — and this
package makes the reproduction observable the same way, as a first-class
layer over ``sim``/``runtime``/``sched``:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms fed by instrumentation hooks in the runtime
  (dispatches, fetch-and-add pool removals, barrier waits, runtime-call
  overhead seconds, keyed by loop and thread);
* :class:`~repro.obs.decisions.DecisionLog` — one structured record per
  scheduler decision (sampled mean times, SF estimates, chunk targets);
* :mod:`~repro.obs.chrome_trace` — ``chrome://tracing`` / Perfetto
  export of the execution timeline with decision annotations;
* :mod:`~repro.obs.snapshot` — deterministic JSON snapshot of all of the
  above, read by ``python -m repro.obs.report``.

Everything hangs off one :class:`Observability` bundle. The default
everywhere is :data:`NULL_OBS` (the null sink): hooks collapse to a
single ``enabled`` check and simulated results are bit-identical to an
uninstrumented build. Enable by passing a fresh ``Observability()`` to
:class:`~repro.runtime.program_runner.ProgramRunner` or
:class:`~repro.runtime.executor.LoopExecutor`.
"""

from __future__ import annotations

from repro.obs.decisions import (
    DecisionEmitter,
    DecisionLog,
    NullDecisionLog,
    sf_as_json,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    POW2_BUCKETS,
)
from repro.obs.snapshot import (
    build_snapshot,
    grid_payload,
    load_snapshot,
    write_snapshot,
)
from repro.obs.chrome_trace import export_chrome_trace, to_trace_events
from repro.obs.merge import (
    MergedSnapshot,
    comparable_snapshot,
    job_snapshot,
    job_snapshot_json,
    merge,
    summarize_decisions,
)
from repro.obs.diff import DiffThresholds, SnapshotDiff, diff_snapshots
from repro.obs.trajectory import TrajectoryStore
from repro.obs.spans import CausalEdge, Span, SpanRecorder, span_violations


class Observability:
    """Bundle of one metrics registry + one decision log.

    Attributes:
        registry: the metrics sink.
        decisions: the scheduler decision log.
        spans: optional causal span recorder; ``None`` (the default)
            disables span tracing, and every emission site gates on a
            single ``is not None`` check.
        enabled: False only for the null bundle; hot paths check this
            before doing any metric computation.
    """

    __slots__ = ("registry", "decisions", "spans", "enabled")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        decisions: DecisionLog | None = None,
        spans: SpanRecorder | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.decisions = decisions if decisions is not None else DecisionLog()
        self.spans = spans
        self.enabled = self.registry.enabled and self.decisions.enabled

    @classmethod
    def disabled(cls) -> "Observability":
        """A null bundle: every hook is a no-op."""
        return cls(NullRegistry(), NullDecisionLog())


#: Shared null bundle — the default sink throughout the runtime.
NULL_OBS = Observability.disabled()

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "POW2_BUCKETS",
    "DecisionLog",
    "NullDecisionLog",
    "DecisionEmitter",
    "sf_as_json",
    "build_snapshot",
    "write_snapshot",
    "load_snapshot",
    "grid_payload",
    "export_chrome_trace",
    "to_trace_events",
    "MergedSnapshot",
    "merge",
    "job_snapshot",
    "job_snapshot_json",
    "summarize_decisions",
    "comparable_snapshot",
    "DiffThresholds",
    "SnapshotDiff",
    "diff_snapshots",
    "TrajectoryStore",
    "Span",
    "CausalEdge",
    "SpanRecorder",
    "span_violations",
]
