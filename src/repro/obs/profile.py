"""Profilers: sim-time cost attribution and wall-clock hotspots.

Two complementary views of where time goes:

* :func:`cost_attribution` is *deterministic*: it reads the
  ``sim_time_seconds_total{loop, core_type, category}`` counters the
  runtime publishes (compute / runtime overhead / fault stall from
  :class:`~repro.runtime.executor.LoopExecutor`, barrier idle from
  :class:`~repro.runtime.program_runner.ProgramRunner`) and renders the
  simulated-seconds split per loop and core type — the quantity the
  paper's overhead arguments are about.
* :class:`HotspotProfiler` is *wall-clock*: a :mod:`cProfile` wrapper
  producing a ranked self-time report of the DES hot path, keyed by a
  scenario digest (the SHA-256 of the profiled
  :class:`~repro.fleet.jobs.JobSpec` identities) so baselines from
  different grids are never confused. This is the before/after evidence
  ROADMAP item 1 (vectorized sim core, ≥10x) is judged against.

``python -m repro.obs.report profile`` drives both over the Fig. 6 grid
and CI uploads the result as the standing baseline artifact.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import pstats
from typing import Mapping, Sequence

#: Schema of the JSON document ``report profile --json`` writes.
#: v2: the document carries the profiled execution backend and the
#: wall-clock seconds of the grid run (the before/after speedup
#: evidence for the vectorized engine).
PROFILE_SCHEMA = "repro.obs.profile/v2"

#: Attribution categories, in display order.
CATEGORIES = ("compute", "overhead", "stall", "idle")


def cost_attribution(snapshot: Mapping) -> list[dict]:
    """Per-(loop, core_type) sim-time split from a snapshot document.

    Values sum over any extra label dimensions (program/config/platform
    on fleet-merged snapshots), mirroring how the report CLI aggregates
    every other counter. Rows are sorted by (loop, core_type).
    """
    cells: dict[tuple[str, str], dict[str, float]] = {}
    for m in (snapshot.get("metrics", {}) or {}).get("counters", []):
        if m.get("name") != "sim_time_seconds_total":
            continue
        labels = m.get("labels", {})
        key = (str(labels.get("loop", "?")), str(labels.get("core_type", "?")))
        slot = cells.setdefault(key, {c: 0.0 for c in CATEGORIES})
        category = str(labels.get("category", "?"))
        slot[category] = slot.get(category, 0.0) + float(m.get("value", 0.0))
    rows = []
    for (loop, core_type), split in sorted(cells.items()):
        total = sum(split.values())
        rows.append(
            {
                "loop": loop,
                "core_type": core_type,
                **{c: split.get(c, 0.0) for c in CATEGORIES},
                "total": total,
            }
        )
    return rows


def format_cost_attribution(snapshot: Mapping) -> str:
    """The attribution table as text (empty string when nothing to show)."""
    rows = cost_attribution(snapshot)
    if not rows:
        return ""
    header = (
        f"{'loop':<24s}{'core_type':<12s}"
        + "".join(f"{c + '_s':>12s}" for c in CATEGORIES)
        + f"{'total_s':>12s}{'compute%':>10s}"
    )
    lines = ["sim-time cost attribution (simulated seconds)", header,
             "-" * len(header)]
    for r in rows:
        pct = 100.0 * r["compute"] / r["total"] if r["total"] > 0 else 0.0
        lines.append(
            f"{r['loop']:<24s}{r['core_type']:<12s}"
            + "".join(f"{r[c]:>12.6f}" for c in CATEGORIES)
            + f"{r['total']:>12.6f}{pct:>9.1f}%"
        )
    return "\n".join(lines)


def scenario_digest(specs: Sequence) -> str:
    """Stable identity of a profiled scenario: the SHA-256 over the
    member :class:`~repro.fleet.jobs.JobSpec` digests, in grid order."""
    h = hashlib.sha256()
    for spec in specs:
        h.update(spec.key.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


class HotspotProfiler:
    """cProfile wrapper producing ranked self-time hotspot reports."""

    def __init__(self) -> None:
        self._profile = cProfile.Profile()

    def run(self, fn, *args, **kwargs):
        """Run ``fn`` under the profiler; returns its result."""
        self._profile.enable()
        try:
            return fn(*args, **kwargs)
        finally:
            self._profile.disable()

    def hotspots(self, top: int = 20) -> list[dict]:
        """The ``top`` functions by self (tottime) wall-clock seconds."""
        stats = pstats.Stats(self._profile, stream=io.StringIO())
        rows = []
        for (path, lineno, func), (cc, nc, tt, ct, _callers) in (
            stats.stats.items()  # type: ignore[attr-defined]
        ):
            rows.append(
                {
                    "function": func,
                    "location": f"{path}:{lineno}",
                    "ncalls": int(nc),
                    "self_seconds": float(tt),
                    "cumulative_seconds": float(ct),
                }
            )
        rows.sort(key=lambda r: (-r["self_seconds"], r["location"]))
        return rows[:top]


def format_hotspots(rows: Sequence[Mapping], scenario: str = "") -> str:
    """The hotspot rows as a ranked text table."""
    lines = []
    title = "wall-clock hotspots (cProfile self time)"
    if scenario:
        title += f"  scenario={scenario[:12]}"
    lines.append(title)
    header = (
        f"{'#':>3s}  {'self_s':>9s}{'cum_s':>9s}{'calls':>10s}  function"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, r in enumerate(rows, 1):
        loc = r["location"]
        # Keep the repo-relative tail; site-packages noise stays short.
        if "/repro/" in loc:
            loc = "repro/" + loc.split("/repro/", 1)[1]
        lines.append(
            f"{i:>3d}  {r['self_seconds']:>9.4f}{r['cumulative_seconds']:>9.4f}"
            f"{r['ncalls']:>10d}  {r['function']}  ({loc})"
        )
    return "\n".join(lines)


def profile_grid(
    platform_name: str = "odroid_xu4",
    programs: Sequence[str] | None = None,
    top: int = 20,
    backend: str | None = None,
):
    """Run one experiment grid serially under the wall-clock profiler.

    Returns ``(hotspots, snapshot, scenario)``: the ranked hotspot rows,
    the merged observability snapshot of the profiled run (the input to
    :func:`cost_attribution`), and the scenario digest. The default is
    the paper's Fig. 6 grid (odroid_xu4, all programs, all configs) —
    the ROADMAP-item-1 baseline scenario. ``backend`` selects the
    execution backend for every cell (``None`` = environment override,
    then ``reference``); the scenario digest covers it, so reference and
    vectorized baselines of the same grid never get confused.
    """
    from repro.amp import presets
    from repro.backends import resolve_backend_name
    from repro.experiments.harness import (
        default_configs,
        grid_specs,
        run_grid,
    )
    from repro.fleet.progress import FleetProgress
    from repro.workloads.registry import all_programs, get_program

    platform_factory = getattr(presets, platform_name)
    platform = platform_factory()
    progs = (
        [get_program(p) for p in programs] if programs else all_programs()
    )
    configs = default_configs()
    backend = resolve_backend_name(backend)
    scenario = scenario_digest(
        grid_specs(platform, progs, configs, backend=backend)
    )
    progress = FleetProgress()
    profiler = HotspotProfiler()
    profiler.run(
        run_grid,
        platform,
        programs=progs,
        configs=configs,
        progress=progress,
        backend=backend,
    )
    snapshot = progress.obs_snapshot(
        meta={
            "profiled": "grid",
            "platform": platform.name,
            "backend": backend,
        }
    )
    return profiler.hotspots(top), snapshot, scenario
