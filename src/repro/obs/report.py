"""Observability report CLI: summarize a metrics snapshot.

Usage::

    python -m repro.obs.report SNAPSHOT.json [--threads] [--loop NAME]

Prints, per loop: dispatch counts, scheduler calls, runtime-overhead
percentage, compute-time imbalance across threads, and — when the
snapshot carries a scheduler decision log — the SF-estimate convergence
(first vs last published estimate per core type). ``--threads`` adds the
per-thread drill-down behind each loop row.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Mapping

from repro.errors import ObsError
from repro.obs.snapshot import load_snapshot

#: Decision events that publish an SF estimate (one per AID variant).
_SF_EVENTS = ("publish_targets", "publish_ratio", "decide", "partition")


def _index(metrics: Mapping[str, list]) -> dict[tuple, float]:
    """(name, sorted label items) -> value, for counters and gauges."""
    out: dict[tuple, float] = {}
    for kind in ("counters", "gauges"):
        for m in metrics.get(kind, []):
            key = (m["name"], tuple(sorted(m["labels"].items())))
            out[key] = m["value"]
    return out


def _loops(idx: Mapping[tuple, float]) -> list[str]:
    loops = set()
    for (name, labels) in idx:
        if name in ("dispatches_total", "compute_seconds_total"):
            loops.update(v for k, v in labels if k == "loop")
    return sorted(loops)


def _per_loop(idx: Mapping[tuple, float], loop: str) -> dict:
    """Aggregate one loop's per-tid counters."""
    tids: set[str] = set()
    per_tid: dict[str, dict[str, float]] = {}
    for (name, labels), value in idx.items():
        d = dict(labels)
        if d.get("loop") != loop or "tid" not in d:
            continue
        tids.add(d["tid"])
        per_tid.setdefault(d["tid"], {})[name] = value

    def total(metric: str) -> float:
        return sum(per_tid[t].get(metric, 0.0) for t in tids)

    overhead = total("runtime_overhead_seconds_total")
    compute = total("compute_seconds_total")
    barrier = total("barrier_wait_seconds_total")
    busy_total = overhead + compute + barrier
    busy_per_tid = [
        per_tid[t].get("compute_seconds_total", 0.0)
        + per_tid[t].get("runtime_overhead_seconds_total", 0.0)
        for t in sorted(tids, key=lambda s: int(s))
    ]
    peak = max(busy_per_tid, default=0.0)
    return {
        "loop": loop,
        "invocations": idx.get(
            ("loop_invocations_total", (("loop", loop),)), 0.0
        ),
        "dispatches": total("dispatches_total"),
        "sched_calls": total("sched_calls_total"),
        "iterations": total("iterations_total"),
        "overhead_s": overhead,
        "compute_s": compute,
        "barrier_s": barrier,
        "overhead_pct": 100.0 * overhead / busy_total if busy_total else 0.0,
        "imbalance": (peak - min(busy_per_tid)) / peak if peak > 0 else 0.0,
        "per_tid": {t: per_tid[t] for t in sorted(tids, key=lambda s: int(s))},
    }


def _sf_convergence(decisions: Iterable[Mapping]) -> dict[str, dict]:
    """Per loop: first/last published SF estimate and publication count."""
    out: dict[str, dict] = {}
    for rec in decisions:
        if rec.get("event") not in _SF_EVENTS or rec.get("sf") is None:
            continue
        entry = out.setdefault(
            rec["loop"], {"count": 0, "first_sf": rec["sf"], "last_sf": rec["sf"]}
        )
        entry["count"] += 1
        entry["last_sf"] = rec["sf"]
    return out


def _fmt_sf(sf: Mapping[str, float]) -> str:
    return " ".join(f"{j}:{v:.2f}" for j, v in sorted(sf.items()))


def summarize(snapshot: Mapping, threads: bool = False, loop: str | None = None) -> str:
    """Render the report text for a loaded snapshot."""
    idx = _index(snapshot.get("metrics", {}))
    lines: list[str] = []
    meta = snapshot.get("meta", {})
    if meta:
        lines.append(
            "run: " + "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        )
        lines.append("")

    loops = [loop] if loop is not None else _loops(idx)
    header = (
        f"{'loop':<24s}{'invoc':>7s}{'disp':>9s}{'calls':>9s}{'iters':>10s}"
        f"{'ovh%':>7s}{'imbal':>8s}{'compute_s':>12s}{'barrier_s':>11s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in loops:
        row = _per_loop(idx, name)
        lines.append(
            f"{row['loop']:<24s}{row['invocations']:>7.0f}{row['dispatches']:>9.0f}"
            f"{row['sched_calls']:>9.0f}{row['iterations']:>10.0f}"
            f"{row['overhead_pct']:>6.1f}%{row['imbalance']:>8.3f}"
            f"{row['compute_s']:>12.6f}{row['barrier_s']:>11.6f}"
        )
        if threads:
            for tid, vals in row["per_tid"].items():
                lines.append(
                    f"    tid {tid:>3s}  disp={vals.get('dispatches_total', 0):>6.0f}"
                    f"  calls={vals.get('sched_calls_total', 0):>6.0f}"
                    f"  iters={vals.get('iterations_total', 0):>8.0f}"
                    f"  ovh={vals.get('runtime_overhead_seconds_total', 0):.6f}s"
                    f"  compute={vals.get('compute_seconds_total', 0):.6f}s"
                    f"  barrier={vals.get('barrier_wait_seconds_total', 0):.6f}s"
                )

    conv = _sf_convergence(snapshot.get("decisions", []))
    if conv:
        lines.append("")
        lines.append("SF convergence (per-type estimate, first -> last publication)")
        for name in sorted(conv):
            if loop is not None and name != loop:
                continue
            c = conv[name]
            lines.append(
                f"  {name:<22s} n={c['count']:<4d}"
                f" {_fmt_sf(c['first_sf'])}  ->  {_fmt_sf(c['last_sf'])}"
            )
    n_dec = len(snapshot.get("decisions", []))
    lines.append("")
    lines.append(f"decision records: {n_dec}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro.obs metrics snapshot.",
    )
    parser.add_argument("snapshot", help="path to a snapshot JSON file")
    parser.add_argument(
        "--threads", action="store_true", help="per-thread drill-down"
    )
    parser.add_argument("--loop", default=None, help="restrict to one loop")
    args = parser.parse_args(argv)
    try:
        snapshot = load_snapshot(args.snapshot)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(summarize(snapshot, threads=args.threads, loop=args.loop))
    except BrokenPipeError:  # e.g. piped into head; not an error
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
