"""Observability report CLI: summarize, diff and trend snapshots.

Usage::

    python -m repro.obs.report SNAPSHOT.json [--threads] [--loop NAME]
    python -m repro.obs.report diff A.json B.json [--fail-on-regression]
    python -m repro.obs.report trajectory [HISTORY.jsonl] [--source S]
    python -m repro.obs.report timeline SNAPSHOT.json [--loop L] [--metric M]
    python -m repro.obs.report profile [--platform P] [--backend B]
                                       [--top N] [--json PATH]
    python -m repro.obs.report critpath SNAPSHOT.json [--job S] [--json PATH]
    python -m repro.obs.report explain A.json B.json [--job S] [--top N]

The default mode prints, per loop: dispatch counts, scheduler calls,
runtime-overhead percentage, compute-time imbalance across threads, and
— when the snapshot carries a scheduler decision log — the SF-estimate
convergence (first vs last published estimate per core type).
``--threads`` adds the per-thread drill-down behind each loop row.
Snapshots merged from fleet runs additionally get a fleet section
(counters, per-profile EWMA duration estimates) and the combined
decision summary.

``diff`` compares two snapshots with :mod:`repro.obs.diff` and, with
``--fail-on-regression``, exits nonzero when any regression survives the
thresholds — the CI gate for warm-cache reruns. ``trajectory`` renders
the run-over-run history kept by :mod:`repro.obs.trajectory` as
sparkline trend tables. ``timeline`` renders the snapshot's windowed
timeseries as sparkline lanes over sim time plus a tail table
(p50/p99/p999) of its quantile digests — and, when the snapshot carries
span traces, a critical-path lane showing which category blocked the
makespan at every point of sim time. ``profile`` runs an experiment
grid under the hot-path profiler and prints the ranked wall-clock
hotspots alongside the deterministic sim-time cost attribution — the
ROADMAP-item-1 baseline CI keeps as an artifact.

``critpath`` extracts each span trace's critical path
(:mod:`repro.obs.critpath`) and prints the per-category "where the
makespan went" attribution; ``explain`` diffs two runs' critical paths
(:mod:`repro.obs.explain`) into a ranked report of makespan
contributors — categories and fault windows.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ObsError
from repro.obs.diff import DiffThresholds, diff_snapshots
from repro.obs.snapshot import load_snapshot
from repro.obs.timeseries import digest_quantile, series_values
from repro.obs.trajectory import TrajectoryStore, sparkline, trend_table

from repro.obs.decisions import SF_EVENTS as _SF_EVENTS


def _index(metrics: Mapping[str, list]) -> dict[tuple, float]:
    """(name, sorted label items) -> value, for counters and gauges."""
    out: dict[tuple, float] = {}
    for kind in ("counters", "gauges"):
        for m in metrics.get(kind, []):
            key = (m["name"], tuple(sorted(m["labels"].items())))
            out[key] = m["value"]
    return out


def _loops(idx: Mapping[tuple, float]) -> list[str]:
    loops = set()
    for (name, labels) in idx:
        if name in ("dispatches_total", "compute_seconds_total"):
            loops.update(v for k, v in labels if k == "loop")
    return sorted(loops)


def _per_loop(idx: Mapping[tuple, float], loop: str) -> dict:
    """Aggregate one loop's per-tid counters.

    Values *sum* over any extra label dimensions (merged fleet
    snapshots label every instrument with program/config/platform), so
    the same code reports single-run and fleet-merged snapshots.
    """
    tids: set[str] = set()
    per_tid: dict[str, dict[str, float]] = {}
    invocations = 0.0
    for (name, labels), value in idx.items():
        d = dict(labels)
        if d.get("loop") != loop:
            continue
        if name == "loop_invocations_total":
            invocations += value
        if "tid" not in d:
            continue
        tids.add(d["tid"])
        slot = per_tid.setdefault(d["tid"], {})
        slot[name] = slot.get(name, 0.0) + value

    def total(metric: str) -> float:
        return sum(per_tid[t].get(metric, 0.0) for t in tids)

    overhead = total("runtime_overhead_seconds_total")
    compute = total("compute_seconds_total")
    barrier = total("barrier_wait_seconds_total")
    busy_total = overhead + compute + barrier
    busy_per_tid = [
        per_tid[t].get("compute_seconds_total", 0.0)
        + per_tid[t].get("runtime_overhead_seconds_total", 0.0)
        for t in sorted(tids, key=lambda s: int(s))
    ]
    peak = max(busy_per_tid, default=0.0)
    return {
        "loop": loop,
        "invocations": invocations,
        "dispatches": total("dispatches_total"),
        "sched_calls": total("sched_calls_total"),
        "iterations": total("iterations_total"),
        "overhead_s": overhead,
        "compute_s": compute,
        "barrier_s": barrier,
        "overhead_pct": 100.0 * overhead / busy_total if busy_total else 0.0,
        "imbalance": (peak - min(busy_per_tid)) / peak if peak > 0 else 0.0,
        "per_tid": {t: per_tid[t] for t in sorted(tids, key=lambda s: int(s))},
    }


def _sf_convergence(decisions: Iterable[Mapping]) -> dict[str, dict]:
    """Per loop: first/last published SF estimate and publication count."""
    out: dict[str, dict] = {}
    for rec in decisions:
        if rec.get("event") not in _SF_EVENTS or rec.get("sf") is None:
            continue
        entry = out.setdefault(
            rec["loop"], {"count": 0, "first_sf": rec["sf"], "last_sf": rec["sf"]}
        )
        entry["count"] += 1
        entry["last_sf"] = rec["sf"]
    return out


def _fmt_sf(sf: Mapping[str, float]) -> str:
    return " ".join(f"{j}:{v:.2f}" for j, v in sorted(sf.items()))


#: Fleet counter names shown in the fleet section, in display order.
_FLEET_COUNTERS = (
    "fleet_jobs_submitted",
    "fleet_cache_hits",
    "fleet_cache_misses",
    "fleet_jobs_computed",
    "fleet_retries",
    "fleet_timeouts",
    "fleet_failures",
)


def _fleet_section(snapshot: Mapping, idx: Mapping[tuple, float]) -> list[str]:
    """Fleet counters + per-profile EWMA duration estimates, if any."""
    counts = {
        name: idx.get((name, ())) for name in _FLEET_COUNTERS
        if (name, ()) in idx
    }
    if not counts:
        return []
    lines = [
        "fleet: " + "  ".join(
            f"{name.removeprefix('fleet_')}={int(value)}"
            for name, value in counts.items()
        )
    ]
    merged_jobs = snapshot.get("merged_jobs")
    if merged_jobs:
        lines.append(f"merged per-job snapshots: {merged_jobs}")
    estimates = sorted(
        (dict(labels).get("profile", "?"), value)
        for (name, labels), value in idx.items()
        if name == "fleet_duration_estimate_seconds"
    )
    if estimates:
        lines.append("duration estimates (EWMA wall-clock, drive LPT dispatch):")
        for profile, value in estimates:
            lines.append(f"  {profile:<44s}{value:>10.3f}s")
    return lines


def _decision_summary_section(snapshot: Mapping) -> list[str]:
    summary = snapshot.get("decision_summary")
    if not isinstance(summary, Mapping) or not summary.get("total"):
        return []
    lines = [
        f"decision summary (merged): {summary['total']} records"
    ]
    for sched, entry in sorted((summary.get("schedulers") or {}).items()):
        events = "  ".join(
            f"{event}={n}"
            for event, n in sorted((entry.get("events") or {}).items())
        )
        lines.append(f"  {sched:<14s} total={entry.get('total', 0):<7d} {events}")
    return lines


def summarize(snapshot: Mapping, threads: bool = False, loop: str | None = None) -> str:
    """Render the report text for a loaded snapshot."""
    metrics_doc = snapshot.get("metrics", {}) or {}
    idx = _index(metrics_doc)
    lines: list[str] = []
    meta = snapshot.get("meta", {})
    if meta:
        lines.append(
            "run: " + "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        )
        lines.append("")

    n_instruments = sum(
        len(metrics_doc.get(kind, []))
        for kind in ("counters", "gauges", "histograms")
    )
    if n_instruments == 0:
        lines.append("no metrics recorded (was NULL_OBS used?)")
        lines.append(
            "hint: pass a live Observability() bundle to ProgramRunner, "
            "or a FleetProgress to run_grid/run_jobs."
        )
        lines.append("")
        lines.append(
            f"decision records: {len(snapshot.get('decisions', []))}"
        )
        return "\n".join(lines)

    fleet = _fleet_section(snapshot, idx)
    if fleet:
        lines.extend(fleet)
        lines.append("")

    loops = [loop] if loop is not None else _loops(idx)
    header = (
        f"{'loop':<24s}{'invoc':>7s}{'disp':>9s}{'calls':>9s}{'iters':>10s}"
        f"{'ovh%':>7s}{'imbal':>8s}{'compute_s':>12s}{'barrier_s':>11s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in loops:
        row = _per_loop(idx, name)
        lines.append(
            f"{row['loop']:<24s}{row['invocations']:>7.0f}{row['dispatches']:>9.0f}"
            f"{row['sched_calls']:>9.0f}{row['iterations']:>10.0f}"
            f"{row['overhead_pct']:>6.1f}%{row['imbalance']:>8.3f}"
            f"{row['compute_s']:>12.6f}{row['barrier_s']:>11.6f}"
        )
        if threads:
            for tid, vals in row["per_tid"].items():
                lines.append(
                    f"    tid {tid:>3s}  disp={vals.get('dispatches_total', 0):>6.0f}"
                    f"  calls={vals.get('sched_calls_total', 0):>6.0f}"
                    f"  iters={vals.get('iterations_total', 0):>8.0f}"
                    f"  ovh={vals.get('runtime_overhead_seconds_total', 0):.6f}s"
                    f"  compute={vals.get('compute_seconds_total', 0):.6f}s"
                    f"  barrier={vals.get('barrier_wait_seconds_total', 0):.6f}s"
                )

    conv = _sf_convergence(snapshot.get("decisions", []))
    if conv:
        lines.append("")
        lines.append("SF convergence (per-type estimate, first -> last publication)")
        for name in sorted(conv):
            if loop is not None and name != loop:
                continue
            c = conv[name]
            lines.append(
                f"  {name:<22s} n={c['count']:<4d}"
                f" {_fmt_sf(c['first_sf'])}  ->  {_fmt_sf(c['last_sf'])}"
            )
    dec_summary = _decision_summary_section(snapshot)
    if dec_summary:
        lines.append("")
        lines.extend(dec_summary)
    n_dec = len(snapshot.get("decisions", []))
    lines.append("")
    lines.append(f"decision records: {n_dec}")
    return "\n".join(lines)


def _label_str(labels: Mapping) -> str:
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{{{inner}}}" if inner else ""


def _doc_matches(doc: Mapping, loop: str | None, metric: str | None) -> bool:
    if metric is not None and doc.get("name") != metric:
        return False
    if loop is not None and (doc.get("labels") or {}).get("loop") != loop:
        return False
    return True


def _resample(values: list[float], width: int) -> list[float]:
    """Mean-pool a dense series down to at most ``width`` points, so a
    long run still fits one sparkline without dropping its head."""
    if len(values) <= width:
        return values
    out = []
    n = len(values)
    for i in range(width):
        lo, hi = i * n // width, max(i * n // width + 1, (i + 1) * n // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


#: Critical-path lane glyph per step category (timeline rendering).
_CRITPATH_GLYPHS = {
    "compute-big": "#",
    "compute-small": "=",
    "dispatch": "d",
    "sampling": "s",
    "serial": "S",
    "stall": "x",
    "idle": ".",
}


def critpath_lane(cp: Mapping, width: int = 48) -> str:
    """One ASCII lane: the critical path's blocking category over time.

    Each column covers ``makespan / width`` of sim time and shows the
    glyph of the step category blocking the makespan at the column's
    midpoint (``#`` compute-big, ``=`` compute-small, ``d`` dispatch,
    ``s`` sampling, ``S`` serial, ``x`` stall, ``.`` idle).
    """
    steps = cp.get("steps") or []
    t0, t1 = float(cp.get("t0", 0.0)), float(cp.get("t1", 0.0))
    if not steps or t1 <= t0:
        return " " * width
    cols = []
    for j in range(width):
        mid = t0 + (j + 0.5) * (t1 - t0) / width
        glyph = " "
        for step in steps:
            if step["t0"] <= mid < step["t1"]:
                glyph = _CRITPATH_GLYPHS.get(step["cat"], "?")
                break
        cols.append(glyph)
    return "".join(cols)


def _span_traces(snapshot: Mapping) -> list[tuple[str, Mapping]]:
    """(label, span doc) pairs carried by a snapshot (possibly empty).

    Accepts single-run snapshots (one bare span doc), fleet-merged
    snapshots (a list of labeled docs) and bare span docs themselves.
    """
    from repro.obs.spans import SPANS_SCHEMA

    if snapshot.get("schema") == SPANS_SCHEMA:
        return [("", snapshot)]
    spans = snapshot.get("spans")
    if spans is None:
        return []
    if isinstance(spans, Mapping):
        return [("", spans)]
    out = []
    for entry in spans:
        labels = entry.get("labels") or {}
        label = "/".join(str(labels[k]) for k in sorted(labels))
        out.append((label, entry.get("doc") or {}))
    return out


def _critpath_section(snapshot: Mapping, width: int) -> list[str]:
    """Critical-path lanes for the timeline view (empty without spans)."""
    from repro.obs.critpath import extract_critical_path

    traces = _span_traces(snapshot)
    if not traces:
        return []
    legend = "  ".join(
        f"{glyph}={cat}" for cat, glyph in _CRITPATH_GLYPHS.items()
    )
    lines = [f"critical path (blocking category over sim time; {legend})"]
    for label, doc in traces:
        cp = extract_critical_path(doc)
        name = label or "run"
        lines.append(f"  {name}")
        lines.append(
            f"    |{critpath_lane(cp, width=width)}|"
            f"  makespan={cp['makespan']:.6f}s"
        )
    return lines


def timeline(
    snapshot: Mapping,
    loop: str | None = None,
    metric: str | None = None,
    width: int = 48,
) -> str:
    """Sparkline lanes for the snapshot's timeseries + digest tails."""
    metrics_doc = snapshot.get("metrics", {}) or {}
    lines: list[str] = []
    series_docs = [
        doc for doc in metrics_doc.get("timeseries", [])
        if _doc_matches(doc, loop, metric)
    ]
    if series_docs:
        lines.append("timeseries (sim-time lanes, left = t0)")
        for doc in series_docs:
            pts = dict(series_values(doc))
            if not pts:
                continue
            hi_idx = max(pts)
            lo_idx = min(pts)
            # Dense lane from the first to the last populated window;
            # empty windows are genuinely zero (nothing observed).
            dense = [pts.get(i, 0.0) for i in range(lo_idx, hi_idx + 1)]
            window = float(doc.get("window", 1.0))
            vals = _resample(dense, width)
            lane = f"{doc['name']}{_label_str(doc.get('labels') or {})}"
            lines.append(f"  {lane}")
            lines.append(
                f"    |{sparkline(vals, width=width)}|"
                f"  t=[{lo_idx * window:.6f}s, {(hi_idx + 1) * window:.6f}s]"
                f"  min={min(dense):.4g} max={max(dense):.4g}"
                f"  window={window:.3g}s"
            )
    digest_docs = [
        doc for doc in metrics_doc.get("digests", [])
        if _doc_matches(doc, loop, metric)
    ]
    if digest_docs:
        if lines:
            lines.append("")
        header = (
            f"{'digest':<52s}{'count':>8s}{'p50':>12s}{'p99':>12s}"
            f"{'p999':>12s}{'max':>12s}"
        )
        lines.append("digest tails (streaming quantiles)")
        lines.append(header)
        lines.append("-" * len(header))
        for doc in digest_docs:
            name = f"{doc['name']}{_label_str(doc.get('labels') or {})}"
            lines.append(
                f"{name:<52s}{int(doc.get('count', 0)):>8d}"
                f"{digest_quantile(doc, 0.5):>12.3g}"
                f"{digest_quantile(doc, 0.99):>12.3g}"
                f"{digest_quantile(doc, 0.999):>12.3g}"
                f"{float(doc.get('max', 0.0)):>12.3g}"
            )
    critpath_lines = _critpath_section(snapshot, width)
    if critpath_lines:
        if lines:
            lines.append("")
        lines.extend(critpath_lines)
    if not lines:
        lines.append(
            "no timeseries or digests in this snapshot (schema "
            + str((snapshot.get("metrics", {}) or {}).get("schema", "?"))
            + " predates them, or NULL_OBS was used)"
        )
    return "\n".join(lines)


def _timeline_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report timeline",
        description="Render a snapshot's timeseries as sim-time "
        "sparkline lanes and its digests as a tail table.",
    )
    parser.add_argument("snapshot", help="path to a snapshot JSON file")
    parser.add_argument("--loop", default=None, help="restrict to one loop")
    parser.add_argument(
        "--metric", default=None, help="restrict to one metric name"
    )
    parser.add_argument(
        "--width", type=int, default=48,
        help="sparkline lane width in glyphs (default %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        snapshot = load_snapshot(args.snapshot)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(
            timeline(
                snapshot, loop=args.loop, metric=args.metric,
                width=args.width,
            )
        )
    except BrokenPipeError:
        pass
    return 0


def _profile_main(argv: list[str]) -> int:
    from repro.obs.profile import (
        PROFILE_SCHEMA,
        cost_attribution,
        format_cost_attribution,
        format_hotspots,
        profile_grid,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report profile",
        description="Run an experiment grid under the hot-path profiler; "
        "print ranked wall-clock hotspots and the sim-time cost "
        "attribution.",
    )
    parser.add_argument(
        "--platform", default="odroid_xu4",
        help="repro.amp.presets factory name (default %(default)s)",
    )
    parser.add_argument(
        "--programs", default=None,
        help="comma-separated program names (default: all registered)",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="hotspot rows to keep (default %(default)s)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="execution backend to profile (reference, vectorized, "
        "real; default: $REPRO_BACKEND, then reference)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write hotspots + attribution as a JSON document",
    )
    args = parser.parse_args(argv)
    programs = args.programs.split(",") if args.programs else None
    import time as _time

    t0 = _time.perf_counter()
    hotspots, snapshot, scenario = profile_grid(
        platform_name=args.platform, programs=programs, top=args.top,
        backend=args.backend,
    )
    wall = _time.perf_counter() - t0
    try:
        print(format_hotspots(hotspots, scenario=scenario))
        attribution = format_cost_attribution(snapshot)
        if attribution:
            print()
            print(attribution)
        backend = snapshot.get("meta", {}).get("backend")
        print(f"\nbackend={backend}  wall_clock={wall:.2f}s")
    except BrokenPipeError:
        pass
    if args.json:
        doc = {
            "schema": PROFILE_SCHEMA,
            "scenario": scenario,
            "platform": args.platform,
            "backend": snapshot.get("meta", {}).get("backend"),
            "wall_clock_seconds": wall,
            "hotspots": hotspots,
            "cost_attribution": cost_attribution(snapshot),
        }
        Path(args.json).write_text(
            json.dumps(doc, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
    return 0


def _diff_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report diff",
        description="Diff two repro.obs snapshots and flag regressions.",
    )
    parser.add_argument("baseline", help="baseline snapshot JSON")
    parser.add_argument("candidate", help="candidate snapshot JSON")
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any regression survives the thresholds",
    )
    parser.add_argument(
        "--metric-tol", type=float, default=DiffThresholds.metric_rel,
        help="relative tolerance for simulation metrics (default %(default)s)",
    )
    parser.add_argument(
        "--cost-tol", type=float, default=DiffThresholds.cost_rel,
        help="relative growth tolerance for cost metrics (default %(default)s)",
    )
    parser.add_argument(
        "--hist-tol", type=float, default=DiffThresholds.hist_dist,
        help="histogram bucket-distance tolerance (default %(default)s)",
    )
    parser.add_argument(
        "--tail-tol", type=float, default=DiffThresholds.tail_rel,
        help="digest p99/p999 growth tolerance before a tail-latency "
        "regression is flagged (default %(default)s)",
    )
    parser.add_argument(
        "--critpath-tol", type=float, default=DiffThresholds.critpath_rel,
        help="critical-path makespan/attribution growth tolerance, "
        "relative to the baseline makespan (default %(default)s)",
    )
    parser.add_argument(
        "--lax-decisions", action="store_true",
        help="treat decision-summary divergence as a change, not a regression",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the structured diff as JSON",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_snapshot(args.baseline)
        candidate = load_snapshot(args.candidate)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_snapshots(
        baseline,
        candidate,
        DiffThresholds(
            metric_rel=args.metric_tol,
            cost_rel=args.cost_tol,
            hist_dist=args.hist_tol,
            tail_rel=args.tail_tol,
            critpath_rel=args.critpath_tol,
            strict_decisions=not args.lax_decisions,
        ),
    )
    try:
        print(diff.format())
    except BrokenPipeError:
        pass
    if args.json:
        Path(args.json).write_text(
            json.dumps(diff.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
    if args.fail_on_regression and diff.regressions:
        return 1
    return 0


def _critpath_main(argv: list[str]) -> int:
    from repro.obs.critpath import (
        CRITPATH_SCHEMA,
        extract_critical_path,
        format_critpath,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report critpath",
        description="Extract and print the critical path of every span "
        "trace a snapshot carries: the longest causal chain ending at "
        "completion, attributed per category.",
    )
    parser.add_argument("snapshot", help="snapshot JSON (with span traces)")
    parser.add_argument(
        "--job", default=None, metavar="SUBSTR",
        help="restrict to traces whose job label contains this substring",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the critical paths as a JSON document",
    )
    args = parser.parse_args(argv)
    try:
        snapshot = load_snapshot(args.snapshot)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    traces = _span_traces(snapshot)
    if args.job is not None:
        traces = [(label, doc) for label, doc in traces if args.job in label]
    if not traces:
        print(
            "no span traces in this snapshot (run with tracing on, e.g. "
            "python -m repro.fleet ... --trace-spans)",
            file=sys.stderr,
        )
        return 2
    paths = []
    try:
        for i, (label, doc) in enumerate(traces):
            cp = extract_critical_path(doc)
            paths.append({"label": label, "critpath": cp})
            if i:
                print()
            if label:
                print(f"== {label} ==")
            print(format_critpath(cp))
    except BrokenPipeError:
        pass
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {"schema": CRITPATH_SCHEMA, "paths": paths},
                sort_keys=True, indent=2,
            ) + "\n",
            encoding="utf-8",
        )
    return 0


def _explain_main(argv: list[str]) -> int:
    from repro.obs.explain import EXPLAIN_SCHEMA, explain, format_explain

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report explain",
        description="Diff two runs' critical paths into a ranked "
        "'where the makespan went' report.",
    )
    parser.add_argument("baseline", help="baseline snapshot JSON (with spans)")
    parser.add_argument("candidate", help="candidate snapshot JSON (with spans)")
    parser.add_argument(
        "--job", default=None, metavar="SUBSTR",
        help="restrict to job labels containing this substring",
    )
    parser.add_argument(
        "--top", type=int, default=12,
        help="contributors shown per pair (default %(default)s)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the structured report as JSON",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_snapshot(args.baseline)
        candidate = load_snapshot(args.candidate)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = explain(baseline, candidate, job=args.job)
    except (ObsError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(format_explain(report, top=args.top))
    except BrokenPipeError:
        pass
    if args.json:
        assert report.get("schema") == EXPLAIN_SCHEMA
        Path(args.json).write_text(
            json.dumps(report, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
    return 0


def _trajectory_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report trajectory",
        description="Render the run-over-run trajectory as trend tables.",
    )
    parser.add_argument(
        "history", nargs="?", default=None,
        help="trajectory JSONL (default $OBS_TRAJECTORY or "
        "OBS_TRAJECTORY.jsonl)",
    )
    parser.add_argument(
        "--source", default=None, help="restrict to one record source"
    )
    parser.add_argument(
        "--last", type=int, default=24,
        help="sparkline width / points shown (default %(default)s)",
    )
    args = parser.parse_args(argv)
    store = TrajectoryStore(args.history)
    records = store.records()
    if not records:
        print(f"no trajectory records in {store.path}")
        return 0
    try:
        print(trend_table(records, source=args.source, last=args.last))
    except BrokenPipeError:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "diff":
        return _diff_main(argv[1:])
    if argv and argv[0] == "trajectory":
        return _trajectory_main(argv[1:])
    if argv and argv[0] == "timeline":
        return _timeline_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "critpath":
        return _critpath_main(argv[1:])
    if argv and argv[0] == "explain":
        return _explain_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro.obs metrics snapshot "
        "(subcommands: diff, trajectory, timeline, profile, critpath, "
        "explain).",
    )
    parser.add_argument("snapshot", help="path to a snapshot JSON file")
    parser.add_argument(
        "--threads", action="store_true", help="per-thread drill-down"
    )
    parser.add_argument("--loop", default=None, help="restrict to one loop")
    args = parser.parse_args(argv)
    try:
        snapshot = load_snapshot(args.snapshot)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(summarize(snapshot, threads=args.threads, loop=args.loop))
    except BrokenPipeError:  # e.g. piped into head; not an error
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
