"""Cross-process snapshot merging: per-job capture -> one fleet view.

Since the experiment grids run through :mod:`repro.fleet` worker
subprocesses, each cell's metrics registry and decision log live (and
would die) in a worker. This module defines the wire format and the
merge algebra that carry them back:

* :func:`job_snapshot` / :func:`job_snapshot_json` — the compact per-job
  document a worker attaches to its
  :class:`~repro.fleet.jobs.JobResult`: the full metrics registry dump
  plus a :func:`summarize_decisions` digest of the decision log (counts
  per scheduler and event, not the raw records — cache entries stay
  small);
* :class:`MergedSnapshot` / :func:`merge` — fold any number of per-job
  documents into one fleet-level :class:`~repro.obs.registry.MetricsRegistry`
  (counters and histogram buckets sum, gauges are last-wins in merge
  order) and one combined decision summary;
* :func:`comparable_snapshot` — strip the wall-clock metrics and
  volatile meta fields, leaving only content that must be byte-identical
  across ``--jobs 1`` / ``--jobs N`` / warm-cache reruns of the same
  grid. The diff tool and the determinism tests both build on it.

Merging happens in *submission order* (the pool guarantees this), so the
only order-sensitive instrument — the gauge — resolves identically no
matter how many workers raced.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.errors import ObsError
from repro.obs.registry import KIND_PLURALS, Histogram, MetricsRegistry
from repro.obs.snapshot import SCHEMA as SNAPSHOT_SCHEMA
from repro.obs.timeseries import QuantileDigest, TimeSeries

#: Per-job snapshot document identifier. v2 added the time-resolved
#: instruments (``timeseries`` + ``digests``) to the metrics dump.
#: v3 lets span-tracing jobs attach their canonical causal span trace
#: under an optional ``spans`` key (absent, not empty, when untraced).
JOB_SCHEMA = "repro.obs.job-snapshot/v3"

#: Metrics measured in host wall-clock time: meaningful per run, never
#: comparable across hosts, cache states or worker counts.
WALL_CLOCK_METRICS = frozenset(
    {
        "fleet_job_duration_seconds",
        "fleet_duration_estimate_seconds",
        # Real-execution instruments measure host wall time by nature.
        "real_chunk_compute_seconds",
        "real_dispatch_overhead_seconds",
        "real_worker_rate",
    }
)

#: Meta keys that legitimately vary between otherwise-identical runs.
VOLATILE_META = frozenset(
    {"jobs", "wall_clock_seconds", "elapsed_seconds", "unix_time", "host"}
)


def summarize_decisions(records: Iterable[Mapping]) -> dict:
    """Digest a decision log into per-scheduler event counts.

    The summary keeps what the diff tool needs to detect divergence per
    AID variant — how many decisions each scheduler made, of which
    events, touching which loops — while dropping the per-record payload
    (sampled mean times, SF tables) that would bloat cache entries.
    """
    try:
        # Fast path: schema-complete records (everything DecisionLog
        # produces). Counting collapses to C-speed Counter folds over
        # plain subscripts; missing fields fall back below, and non-str
        # values are detected on the (few) distinct keys afterwards.
        trips = [(r["scheduler"], r["event"], r["loop"]) for r in records]
    except (KeyError, TypeError):
        trips = None
    if trips is not None:
        from collections import Counter

        se = Counter([(s, e) for s, e, _ in trips])
        loop_counts = Counter([t[2] for t in trips])
        if all(
            isinstance(s, str) and isinstance(e, str) for s, e in se
        ) and all(isinstance(k, str) for k in loop_counts):
            schedulers: dict[str, dict] = {}
            for (sched, event), n in se.items():
                entry = schedulers.setdefault(
                    sched, {"total": 0, "events": {}}
                )
                entry["total"] += n
                entry["events"][event] = n
            return {
                "total": len(trips),
                "schedulers": {
                    name: {
                        "total": entry["total"],
                        "events": dict(sorted(entry["events"].items())),
                    }
                    for name, entry in sorted(schedulers.items())
                },
                "loops": dict(sorted(loop_counts.items())),
            }
    total = 0
    schedulers = {}
    loops = {}
    for rec in records:
        total += 1
        sched = str(rec.get("scheduler", "?"))
        entry = schedulers.setdefault(sched, {"total": 0, "events": {}})
        entry["total"] += 1
        event = str(rec.get("event", "?"))
        entry["events"][event] = entry["events"].get(event, 0) + 1
        loop = str(rec.get("loop", "?"))
        loops[loop] = loops.get(loop, 0) + 1
    return {
        "total": total,
        "schedulers": {
            name: {
                "total": entry["total"],
                "events": dict(sorted(entry["events"].items())),
            }
            for name, entry in sorted(schedulers.items())
        },
        "loops": dict(sorted(loops.items())),
    }


def job_snapshot(obs) -> dict:
    """The per-job observability document for one finished run.

    Span-tracing bundles attach their canonical span-trace document
    under ``spans``; untraced jobs omit the key entirely, so their
    documents are byte-identical to pre-tracing ones modulo the schema
    marker.
    """
    doc = {
        "schema": JOB_SCHEMA,
        "metrics": obs.registry.snapshot(),
        "decisions": summarize_decisions(obs.decisions.records),
    }
    spans = getattr(obs, "spans", None)
    if spans is not None:
        doc["spans"] = spans.as_doc()
    return doc


def job_snapshot_json(obs) -> str:
    """Canonical (sorted-keys, compact) serialization of the per-job
    document — the form :class:`~repro.fleet.jobs.JobResult` stores, so
    snapshot equality is plain string equality."""
    return json.dumps(job_snapshot(obs), sort_keys=True, separators=(",", ":"))


def merge_metrics_into(
    registry: MetricsRegistry,
    metrics: Mapping[str, list],
    extra_labels: Mapping[str, object] | None = None,
) -> None:
    """Fold one registry dump into ``registry``.

    Counters and histogram buckets add; gauges take the incoming value
    (last-wins, so callers must merge in a deterministic order).
    ``extra_labels`` (e.g. ``program``/``config``/``platform`` of the
    producing job) are appended to every instrument's label set, keeping
    same-named metrics from different jobs distinguishable.
    """
    extra = dict(extra_labels) if extra_labels else {}
    for m in metrics.get("counters", []):
        labels = {**m["labels"], **extra}
        registry.counter(m["name"], **labels).inc(float(m["value"]))
    for m in metrics.get("gauges", []):
        labels = {**m["labels"], **extra}
        registry.gauge(m["name"], **labels).set(float(m["value"]))
    for m in metrics.get("histograms", []):
        labels = {**m["labels"], **extra}
        bounds = tuple(
            float(b["le"]) for b in m["buckets"] if b["le"] != "+Inf"
        )
        hist = registry.histogram(m["name"], buckets=bounds or (1.0,), **labels)
        if not isinstance(hist, Histogram):  # null registry: nothing to do
            continue
        if hist.bounds != (bounds or (1.0,)):
            raise ObsError(
                f"histogram {m['name']!r} bucket mismatch while merging: "
                f"{hist.bounds} vs {bounds}"
            )
        counts = [int(b["count"]) for b in m["buckets"]]
        if len(counts) != len(hist.counts):
            raise ObsError(
                f"histogram {m['name']!r} has {len(counts)} buckets, "
                f"expected {len(hist.counts)}"
            )
        for i, c in enumerate(counts):
            hist.counts[i] += c
        hist.sum += float(m["sum"])
        hist.count += int(m["count"])
    for m in metrics.get("timeseries", []):
        labels = {**m["labels"], **extra}
        ts = registry.timeseries(
            m["name"],
            mode=m.get("mode", "sample"),
            window=float(m.get("window0", m.get("window", 1.0))),
            capacity=int(m.get("capacity", 256)),
            norm=float(m.get("norm", 1.0)),
            **labels,
        )
        if isinstance(ts, TimeSeries):  # null registry: nothing to do
            ts.merge_doc(m)
    for m in metrics.get("digests", []):
        labels = {**m["labels"], **extra}
        dg = registry.digest(m["name"], gamma=float(m["gamma"]), **labels)
        if isinstance(dg, QuantileDigest):
            dg.merge_doc(m)


def merge_decision_summaries(into: dict, add: Mapping) -> None:
    """Accumulate one job's decision summary into a combined one."""
    into["total"] = into.get("total", 0) + int(add.get("total", 0))
    schedulers = into.setdefault("schedulers", {})
    for name, entry in (add.get("schedulers") or {}).items():
        slot = schedulers.setdefault(name, {"total": 0, "events": {}})
        slot["total"] += int(entry.get("total", 0))
        for event, n in (entry.get("events") or {}).items():
            slot["events"][event] = slot["events"].get(event, 0) + int(n)
    loops = into.setdefault("loops", {})
    for name, n in (add.get("loops") or {}).items():
        loops[name] = loops.get(name, 0) + int(n)


class MergedSnapshot:
    """Accumulator folding per-job snapshots into one fleet-level view.

    Pass an existing registry (e.g. the one
    :class:`~repro.fleet.progress.FleetProgress` keeps its fleet counters
    in) to merge job metrics alongside it; the default is a fresh one.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.decisions: dict = {"total": 0, "schedulers": {}, "loops": {}}
        self.spans: list[dict] = []
        self.jobs = 0

    def add_job(self, snapshot: Mapping, **labels: object) -> None:
        """Merge one per-job document (see :func:`job_snapshot`).

        Span traces are not summed like metrics: each job's tree is kept
        whole, tagged with the job's merge labels. Merging in submission
        order keeps the folded list deterministic, so span-bearing
        merged snapshots obey the same jobs=1 == jobs=N byte-equality
        contract as the metrics they ride with.
        """
        if snapshot.get("schema") != JOB_SCHEMA:
            raise ObsError(
                f"not a {JOB_SCHEMA} document "
                f"(schema={snapshot.get('schema')!r})"
            )
        merge_metrics_into(
            self.registry, snapshot.get("metrics", {}), labels
        )
        merge_decision_summaries(self.decisions, snapshot.get("decisions", {}))
        spans = snapshot.get("spans")
        if spans is not None:
            self.spans.append(
                {
                    "labels": {str(k): labels[k] for k in sorted(labels)},
                    "doc": spans,
                }
            )
        self.jobs += 1

    def decision_summary(self) -> dict:
        """The combined decision summary with deterministic ordering."""
        return {
            "total": self.decisions.get("total", 0),
            "schedulers": {
                name: {
                    "total": entry["total"],
                    "events": dict(sorted(entry["events"].items())),
                }
                for name, entry in sorted(
                    self.decisions.get("schedulers", {}).items()
                )
            },
            "loops": dict(sorted(self.decisions.get("loops", {}).items())),
        }

    def to_snapshot(self, meta: Mapping[str, object] | None = None) -> dict:
        """A full snapshot document (same schema the report CLI reads).

        Raw decision records never cross the process boundary, so
        ``decisions`` is empty and the merged digest travels in
        ``decision_summary`` instead. Span traces (present only when the
        jobs ran with tracing on) travel whole under ``spans``, one
        labeled tree per traced job in submission order.
        """
        doc = {
            "schema": SNAPSHOT_SCHEMA,
            "meta": dict(meta) if meta else {},
            "metrics": self.registry.snapshot(),
            "decisions": [],
            "decision_summary": self.decision_summary(),
            "merged_jobs": self.jobs,
        }
        if self.spans:
            doc["spans"] = list(self.spans)
        return doc


def merge(
    snapshots: Iterable[Mapping],
    registry: MetricsRegistry | None = None,
) -> MergedSnapshot:
    """Fold an iterable of per-job documents into a fresh accumulator."""
    merged = MergedSnapshot(registry=registry)
    for snap in snapshots:
        merged.add_job(snap)
    return merged


def comparable_snapshot(snapshot: Mapping) -> dict:
    """A deep copy with every run-volatile field removed.

    Drops :data:`WALL_CLOCK_METRICS` instruments and
    :data:`VOLATILE_META` meta keys; what remains must be byte-identical
    between a serial and a parallel run of the same grid, and between a
    cold run and its warm cache replay.
    """
    doc = json.loads(json.dumps(snapshot))
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for kind in KIND_PLURALS.values():
            if kind in metrics:
                metrics[kind] = [
                    m
                    for m in metrics[kind]
                    if m.get("name") not in WALL_CLOCK_METRICS
                ]
    meta = doc.get("meta")
    if isinstance(meta, dict):
        for key in VOLATILE_META:
            meta.pop(key, None)
    return doc
