"""Run-over-run trend store: the perf-regression observatory.

Every bench or fleet run can append one compact record — named scalar
metrics such as speedup vs. best-static per platform, runtime-overhead
seconds, fleet cache-hit rate, wall-clock seconds — to an append-only
JSONL history (``OBS_TRAJECTORY.jsonl`` by default, ``$OBS_TRAJECTORY``
to relocate). ``python -m repro.obs.report trajectory`` renders the
history as sparkline trend tables, turning one-off snapshots into the
run-over-run view the ROADMAP's regression tracking needs.

Records are intentionally flat::

    {"schema": "repro.obs.trajectory/v1", "seq": 4,
     "source": "bench:fig6_platform_a",
     "metrics": {"speedup_vs_best_static:odroid-xu4": 1.31, ...},
     "meta": {...}}

Derivation helpers turn the repo's existing artifacts into metrics:
:func:`bench_metrics` reads a ``BENCH_*.json`` grid payload,
:func:`snapshot_metrics` reads a (merged) obs snapshot.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ObsError

#: Trajectory record format identifier.
SCHEMA = "repro.obs.trajectory/v1"

#: Default history file name (relative to the CWD unless overridden).
DEFAULT_FILENAME = "OBS_TRAJECTORY.jsonl"

#: Environment variable relocating the default history file.
ENV_VAR = "OBS_TRAJECTORY"

#: Eight-level sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


class TrajectoryStore:
    """Append-only JSONL history of per-run metric records."""

    def __init__(self, path: str | Path | None = None) -> None:
        if path is None:
            path = os.environ.get(ENV_VAR) or DEFAULT_FILENAME
        self.path = Path(path)

    def append(
        self,
        source: str,
        metrics: Mapping[str, float],
        meta: Mapping[str, object] | None = None,
    ) -> dict:
        """Append one record; returns the record written."""
        if not source:
            raise ObsError("trajectory records need a non-empty source")
        clean: dict[str, float] = {}
        for name, value in sorted(metrics.items()):
            value = float(value)
            if not math.isfinite(value):
                raise ObsError(
                    f"trajectory metric {name!r} is not finite: {value!r}"
                )
            clean[str(name)] = value
        if not clean:
            raise ObsError("trajectory records need at least one metric")
        rec = {
            "schema": SCHEMA,
            "seq": len(self.records()),
            "source": str(source),
            "metrics": clean,
            "meta": dict(meta) if meta else {},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return rec

    def records(self, source: str | None = None) -> list[dict]:
        """All valid records, oldest first; corrupt lines are skipped."""
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        out = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(rec, dict) or rec.get("schema") != SCHEMA:
                continue
            if source is not None and rec.get("source") != source:
                continue
            out.append(rec)
        return out

    def series(self, source: str, metric: str) -> list[float]:
        """One metric's values over time for one source."""
        return [
            float(rec["metrics"][metric])
            for rec in self.records(source)
            if metric in rec.get("metrics", {})
        ]

    def sources(self) -> list[str]:
        return sorted({rec.get("source", "?") for rec in self.records()})


def sparkline(values: Iterable[float], width: int = 24) -> str:
    """Render a value series as unicode block glyphs (newest rightmost)."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK[3] * len(vals)
    span = hi - lo
    return "".join(
        _SPARK[min(7, int(8 * (v - lo) / span))] for v in vals
    )


def trend_table(
    records: Iterable[Mapping],
    source: str | None = None,
    last: int = 24,
) -> str:
    """Sparkline trend table over trajectory records, grouped by
    (source, metric)."""
    series: dict[tuple[str, str], list[float]] = {}
    for rec in records:
        src = str(rec.get("source", "?"))
        if source is not None and src != source:
            continue
        for name, value in (rec.get("metrics") or {}).items():
            series.setdefault((src, name), []).append(float(value))
    if not series:
        return "no trajectory records"
    src_w = max(len(s) for s, _ in series) + 2
    met_w = max(len(m) for _, m in series) + 2
    header = (
        f"{'source':<{src_w}s}{'metric':<{met_w}s}{'n':>4s}"
        f"{'first':>12s}{'last':>12s}{'delta%':>9s}  trend"
    )
    lines = [header, "-" * len(header)]
    for (src, name), vals in sorted(series.items()):
        first, final = vals[0], vals[-1]
        delta = 100.0 * (final - first) / abs(first) if first else 0.0
        lines.append(
            f"{src:<{src_w}s}{name:<{met_w}s}{len(vals):>4d}"
            f"{first:>12.4f}{final:>12.4f}{delta:>+8.1f}%  "
            f"{sparkline(vals, width=last)}"
        )
    return "\n".join(lines)


# -- metric derivation from existing artifacts ------------------------------


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_metrics(payload: Mapping) -> dict[str, float]:
    """Trend metrics from a ``BENCH_*.json`` grid payload.

    Per grid: the geometric mean, across programs, of the best AID
    scheme's normalized performance over the best static scheme's — the
    paper's headline "portability dividend" number, tracked per
    platform as ``speedup_vs_best_static:<platform>``.
    """
    out: dict[str, float] = {}
    for grid in payload.get("grids", []) or []:
        platform = str(grid.get("platform", "?"))
        ratios: list[float] = []
        for rows in (grid.get("programs") or {}).values():
            best_static = 0.0
            best_aid = 0.0
            for row in rows:
                perf = float(row.get("normalized_performance") or 0.0)
                scheme = str(row.get("scheme", "")).lower()
                if scheme.startswith("static"):
                    best_static = max(best_static, perf)
                elif scheme.startswith("aid"):
                    best_aid = max(best_aid, perf)
            if best_static > 0.0 and best_aid > 0.0:
                ratios.append(best_aid / best_static)
        if ratios:
            out[f"speedup_vs_best_static:{platform}"] = _geomean(ratios)
    return out


def snapshot_metrics(snapshot: Mapping) -> dict[str, float]:
    """Trend metrics from a (merged) obs snapshot document.

    Sums the runtime-overhead seconds across every merged job, counts
    decision records, and derives the fleet cache-hit rate when fleet
    counters are present.
    """
    out: dict[str, float] = {}
    counters = (snapshot.get("metrics") or {}).get("counters", [])
    by_name: dict[str, float] = {}
    for m in counters:
        by_name[m["name"]] = by_name.get(m["name"], 0.0) + float(m["value"])
    if "runtime_overhead_seconds_total" in by_name:
        out["runtime_overhead_seconds"] = by_name[
            "runtime_overhead_seconds_total"
        ]
    submitted = by_name.get("fleet_jobs_submitted", 0.0)
    if submitted > 0:
        out["fleet_cache_hit_rate"] = (
            by_name.get("fleet_cache_hits", 0.0) / submitted
        )
    summary = snapshot.get("decision_summary")
    if isinstance(summary, Mapping) and "total" in summary:
        out["decision_records"] = float(summary["total"])
    elif snapshot.get("decisions"):
        out["decision_records"] = float(len(snapshot["decisions"]))
    return out
