"""Time-resolved instruments: windowed timeseries and quantile digests.

End-of-run aggregates (counters, fixed-bucket histograms) cannot tell a
fault-throttled run from a healthy one whose totals happen to match —
the paper's asymmetry effects are precisely *when* work lands on big vs
little cores. This module adds the two instruments that carry the time
axis through the snapshot pipeline:

* :class:`TimeSeries` — a deterministic windowed sampler over simulated
  time. Observations land in fixed-width windows aligned at t=0; when
  the run outgrows ``capacity`` windows the series coalesces (window
  width doubles, adjacent windows fold pairwise), so memory stays
  bounded while the window width remains an exact power-of-two multiple
  of the base width. ``mode="sample"`` records point observations (the
  per-window mean is ``sum/count``); ``mode="busy"`` records busy
  *spans*, distributing the overlap into each window it crosses (the
  per-window utilization is ``sum / (window * norm)``).
* :class:`QuantileDigest` — a streaming, mergeable, fixed-relative-
  precision quantile sketch (DDSketch-style logarithmic buckets). Two
  digests fed the same values are byte-identical; merging sums bucket
  counts, so p50/p99/p999 survive the fleet's per-job snapshot merge
  with bounded relative error (``gamma - 1``, ~2% by default).

Both instruments are registered through
:class:`~repro.obs.registry.MetricsRegistry` (kinds ``timeseries`` and
``digest``), serialize deterministically into snapshots, and merge
pointwise — the jobs=1 == jobs=N byte-equality contract extends to them
unchanged.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ObsError

#: Base window width in simulated seconds: a power of two (exact in
#: binary floating point), fine enough to resolve individual dispatches
#: in the paper-scale loops (~1 microsecond).
DEFAULT_WINDOW = 2.0 ** -20

#: Windows kept before the series coalesces (doubles its window).
DEFAULT_CAPACITY = 256

#: Digest bucket growth factor: relative error is (gamma - 1) / 2.
DEFAULT_GAMMA = 1.02


def _grouped_minmax(
    mins: np.ndarray, maxs: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> None:
    """Per-group min/max of ``vals`` grouped by ``idx``, folded into the
    ``mins``/``maxs`` columns in place.

    Equivalent to ``np.minimum.at(mins, idx, vals)`` (and the maximum
    twin) but via a sort + ``reduceat``, which is an order of magnitude
    faster than the unbuffered ``ufunc.at`` path on the short columns
    the instruments feed.
    """
    if idx.size == 0:
        return
    order = np.argsort(idx, kind="stable")
    si = idx[order]
    sv = vals[order]
    starts = np.flatnonzero(np.concatenate(([True], si[1:] != si[:-1])))
    gidx = si[starts]
    mins[gidx] = np.minimum(mins[gidx], np.minimum.reduceat(sv, starts))
    maxs[gidx] = np.maximum(maxs[gidx], np.maximum.reduceat(sv, starts))


def utilization(busy_seconds: float, span_seconds: float) -> float:
    """Fraction of ``span_seconds`` covered by ``busy_seconds``.

    The one shared definition behind
    :func:`repro.metrics.imbalance.thread_utilization` and the
    ``core_utilization`` timeseries renderer.
    """
    if span_seconds <= 0.0:
        raise ObsError(f"utilization over non-positive span {span_seconds}")
    return busy_seconds / span_seconds


class TimeSeries:
    """Windowed sampler over (simulated) time.

    Windows are ``[i * window, (i + 1) * window)``; each holds
    ``[sum, count, min, max]`` of what landed there. The window width
    adapts: exceeding ``capacity`` distinct windows doubles ``window``
    and folds indices pairwise (``i -> i // 2``), a deterministic
    function of the observation sequence alone.
    """

    __slots__ = ("name", "labels", "mode", "window0", "level", "capacity",
                 "norm", "points")
    kind = "timeseries"

    def __init__(
        self,
        name: str,
        labels: tuple,
        mode: str = "sample",
        window: float = DEFAULT_WINDOW,
        capacity: int = DEFAULT_CAPACITY,
        norm: float = 1.0,
    ) -> None:
        if mode not in ("sample", "busy"):
            raise ObsError(f"timeseries {name!r}: unknown mode {mode!r}")
        if window <= 0.0:
            raise ObsError(f"timeseries {name!r}: window must be > 0")
        if capacity < 2:
            raise ObsError(f"timeseries {name!r}: capacity must be >= 2")
        self.name = name
        self.labels = labels
        self.mode = mode
        self.window0 = float(window)
        self.level = 0  # current window = window0 * 2**level
        self.capacity = int(capacity)
        self.norm = float(norm)
        self.points: dict[int, list[float]] = {}

    @property
    def window(self) -> float:
        """Current window width in seconds."""
        return self.window0 * (2.0 ** self.level)

    # -- recording ---------------------------------------------------------

    def observe(self, t: float, value: float) -> None:
        """Record a point sample ``value`` at time ``t`` (sample mode)."""
        if self.mode != "sample":
            raise ObsError(
                f"timeseries {self.name!r} is busy-mode; use observe_span"
            )
        self._add(int(t // self.window), float(value))

    def observe_span(self, t0: float, t1: float) -> None:
        """Record a busy span ``[t0, t1)``, split across the windows it
        overlaps (busy mode)."""
        if self.mode != "busy":
            raise ObsError(
                f"timeseries {self.name!r} is sample-mode; use observe"
            )
        cur = float(t0)
        end = float(t1)
        while cur < end:
            # Re-read every iteration: _add may coalesce mid-span, and
            # the remaining tail must land in the new, wider windows.
            w = self.window
            i = int(cur // w)
            hi = (i + 1) * w
            part = min(end, hi) - cur
            if part > 0.0:
                self._add(i, part)
            cur = hi

    def observe_many(self, ts: Sequence[float], values: Sequence[float]) -> None:
        """Record a whole column of point samples at once (sample mode).

        Semantically equivalent to calling :meth:`observe` per element,
        but the windowing runs as numpy column operations — this is the
        bulk entry point the vectorized execution backend publishes
        through. Determinism is preserved (the result is a pure function
        of the observation column), though the coalescing level is
        chosen from the index *range* rather than replayed one
        observation at a time, so a bulk-fed series may sit one level
        coarser than an element-fed twin. Merging stays exact either
        way: every level is a power-of-two fold of the base window.
        """
        if self.mode != "sample":
            raise ObsError(
                f"timeseries {self.name!r} is busy-mode; use observe_spans"
            )
        if len(ts) != len(values):
            raise ObsError(
                f"timeseries {self.name!r}: observe_many got "
                f"{len(ts)} times for {len(values)} values"
            )
        if len(ts) == 0:
            return
        if len(ts) < 24:
            # numpy's fixed per-call cost dwarfs a short column; run the
            # same settle-then-fold sequence on scalars.
            tl = [float(x) for x in ts]
            vl = [float(x) for x in values]
            w = self.window
            idxs = [int(t // w) for t in tl]
            shift = self._settle_level(min(idxs), max(idxs))
            if shift:
                idxs = [i >> shift for i in idxs]
            points = self.points
            for i, val in zip(idxs, vl):
                slot = points.get(i)
                if slot is None:
                    points[i] = [val, 1.0, val, val]
                else:
                    slot[0] += val
                    slot[1] += 1.0
                    if val < slot[2]:
                        slot[2] = val
                    if val > slot[3]:
                        slot[3] = val
            while len(points) > self.capacity:
                self._coalesce()
            return
        t = np.asarray(ts, dtype=float)
        v = np.asarray(values, dtype=float)
        idx = np.floor_divide(t, self.window).astype(np.int64)
        idx >>= self._settle_level(int(idx.min()), int(idx.max()))
        base = int(idx.min())
        rel = idx - base
        n_windows = int(rel.max()) + 1
        sums = np.bincount(rel, weights=v, minlength=n_windows)
        counts = np.bincount(rel, minlength=n_windows)
        mins = np.full(n_windows, math.inf)
        maxs = np.full(n_windows, -math.inf)
        _grouped_minmax(mins, maxs, rel, v)
        self._fold_columns(base, sums, counts.astype(float), mins, maxs)

    def observe_spans(
        self, t0s: Sequence[float], t1s: Sequence[float]
    ) -> None:
        """Record a whole column of busy spans at once (busy mode).

        Each span ``[t0, t1)`` contributes exactly the same per-window
        overlap parts :meth:`observe_span` would produce (first/last
        windows partial, interior windows one full width each), so the
        busy-capacity invariant (``sum <= window * norm``) carries over
        unchanged. Interior windows are accumulated through a
        difference-array cumsum instead of one ``_add`` per window.
        """
        if self.mode != "busy":
            raise ObsError(
                f"timeseries {self.name!r} is sample-mode; use observe_many"
            )
        if len(t0s) != len(t1s):
            raise ObsError(
                f"timeseries {self.name!r}: observe_spans got "
                f"{len(t0s)} starts for {len(t1s)} ends"
            )
        if len(t0s) < 24:
            spans = [
                (float(a), float(b)) for a, b in zip(t0s, t1s) if b > a
            ]
            if not spans:
                return
            w = self.window
            i0s = [int(a // w) for a, _ in spans]
            shift = self._settle_level(
                min(i0s), max(int(b // w) for _, b in spans)
            )
            if shift:
                w = self.window
                i0s = [a // w for a, _ in spans]
            points = self.points
            for (a, b), i in zip(spans, i0s):
                # The observe_span walk, minus mid-span coalescing (the
                # level was settled for the whole column up front).
                i = int(i)
                cur = a
                while True:
                    hi = (i + 1) * w
                    part = min(b, hi) - cur
                    if part > 0.0:
                        slot = points.get(i)
                        if slot is None:
                            points[i] = [part, 1.0, part, part]
                        else:
                            slot[0] += part
                            slot[1] += 1.0
                            if part < slot[2]:
                                slot[2] = part
                            if part > slot[3]:
                                slot[3] = part
                    if b <= hi:
                        break
                    cur = hi
                    i += 1
            while len(points) > self.capacity:
                self._coalesce()
            return
        t0 = np.asarray(t0s, dtype=float)
        t1 = np.asarray(t1s, dtype=float)
        keep = t1 > t0
        t0, t1 = t0[keep], t1[keep]
        if t0.size == 0:
            return
        w = self.window
        i0 = np.floor_divide(t0, w).astype(np.int64)
        i1 = np.floor_divide(t1, w).astype(np.int64)
        shift = self._settle_level(int(i0.min()), int(i1.max()))
        if shift:
            w = self.window
            i0 = np.floor_divide(t0, w).astype(np.int64)
            i1 = np.floor_divide(t1, w).astype(np.int64)
        base = int(i0.min())
        n_windows = int(i1.max()) - base + 1
        r0, r1 = i0 - base, i1 - base
        # Head part: from t0 to the end of its window (or to t1 when the
        # span never leaves it). Always positive because t1 > t0.
        head = np.minimum(t1, (i0 + 1) * w) - t0
        # Tail part: from the final window's start to t1; zero-length
        # tails (t1 exactly on a boundary) are skipped like observe_span
        # skips zero parts.
        tail = t1 - i1 * w
        has_tail = (r1 > r0) & (tail > 0.0)
        if np.any(has_tail):
            part_idx = np.concatenate((r0, r1[has_tail]))
            part_val = np.concatenate((head, tail[has_tail]))
        else:
            part_idx, part_val = r0, head
        sums = np.bincount(part_idx, weights=part_val, minlength=n_windows)
        counts = np.bincount(part_idx, minlength=n_windows).astype(float)
        mins = np.full(n_windows, math.inf)
        maxs = np.full(n_windows, -math.inf)
        _grouped_minmax(mins, maxs, part_idx, part_val)
        # Interior windows: every window strictly between the head and
        # tail holds exactly one full width per covering span.
        interior = r1 > r0 + 1
        if np.any(interior):
            dcount = np.bincount(
                r0[interior] + 1, minlength=n_windows
            ).astype(float)
            dcount -= np.bincount(r1[interior], minlength=n_windows)
            cover = np.cumsum(dcount)
            covered = cover > 0.0
            sums[covered] += cover[covered] * w
            counts[covered] += cover[covered]
            mins[covered] = np.minimum(mins[covered], w)
            maxs[covered] = np.maximum(maxs[covered], w)
        self._fold_columns(base, sums, counts, mins, maxs)

    def _settle_level(self, min_idx: int, max_idx: int) -> int:
        """Coalesce until the union of the existing windows and the
        incoming index range ``[min_idx, max_idx]`` (given at the
        *current* level) fits in ``capacity`` windows. Returns how many
        doublings were applied."""
        applied = 0
        while True:
            lo, hi = min_idx, max_idx
            if self.points:
                lo = min(lo, min(self.points))
                hi = max(hi, max(self.points))
            if hi - lo + 1 <= self.capacity:
                return applied
            self._coalesce()
            min_idx >>= 1
            max_idx >>= 1
            applied += 1

    def _fold_columns(self, base, sums, counts, mins, maxs) -> None:
        """Merge per-window columns (at the current level) into points."""
        nz = np.flatnonzero(counts > 0.0)
        points = self.points
        for i, s, c, mn, mx in zip(
            (nz + base).tolist(), sums[nz].tolist(), counts[nz].tolist(),
            mins[nz].tolist(), maxs[nz].tolist(),
        ):
            slot = points.get(i)
            if slot is None:
                points[i] = [s, c, mn, mx]
            else:
                slot[0] += s
                slot[1] += c
                if mn < slot[2]:
                    slot[2] = mn
                if mx > slot[3]:
                    slot[3] = mx
        while len(points) > self.capacity:
            self._coalesce()

    def _add(self, idx: int, value: float) -> None:
        slot = self.points.get(idx)
        if slot is None:
            self.points[idx] = [value, 1.0, value, value]
            if len(self.points) > self.capacity:
                self._coalesce()
        else:
            slot[0] += value
            slot[1] += 1.0
            if value < slot[2]:
                slot[2] = value
            if value > slot[3]:
                slot[3] = value

    def _coalesce(self) -> None:
        points = self.points
        n = len(points)
        if n > 48:
            # Bulk fold: group by idx >> 1 with grouped reductions. Each
            # folded key merges at most two windows (2k and 2k+1), so the
            # pairwise float adds are order-independent and the result is
            # identical to the sequential fold below.
            keys = np.fromiter(points.keys(), dtype=np.int64, count=n)
            vals = np.asarray(list(points.values()))
            half = keys >> 1
            order = np.argsort(half, kind="stable")
            sh = half[order]
            sv = vals[order]
            starts = np.flatnonzero(
                np.concatenate(([True], sh[1:] != sh[:-1]))
            )
            self.points = dict(zip(
                sh[starts].tolist(),
                np.column_stack((
                    np.add.reduceat(sv[:, 0], starts),
                    np.add.reduceat(sv[:, 1], starts),
                    np.minimum.reduceat(sv[:, 2], starts),
                    np.maximum.reduceat(sv[:, 3], starts),
                )).tolist(),
            ))
            self.level += 1
            return
        folded: dict[int, list[float]] = {}
        for idx, (s, c, lo, hi) in points.items():
            slot = folded.get(idx >> 1)
            if slot is None:
                folded[idx >> 1] = [s, c, lo, hi]
            else:
                slot[0] += s
                slot[1] += c
                if lo < slot[2]:
                    slot[2] = lo
                if hi > slot[3]:
                    slot[3] = hi
        self.points = folded
        self.level += 1

    # -- merging -----------------------------------------------------------

    def merge_doc(self, doc: Mapping) -> None:
        """Fold a serialized series (:meth:`as_dict` form) into this one.

        Both sides are rescaled to the coarser of the two window widths
        (every width is ``window0 * 2**k``, so folding is exact), then
        windows add pointwise. Mode, base window and norm must match.
        """
        if doc.get("mode") != self.mode:
            raise ObsError(
                f"timeseries {self.name!r} mode mismatch while merging: "
                f"{self.mode} vs {doc.get('mode')}"
            )
        if float(doc.get("window0", self.window0)) != self.window0:
            raise ObsError(
                f"timeseries {self.name!r} base-window mismatch while merging"
            )
        if float(doc.get("norm", self.norm)) != self.norm:
            raise ObsError(
                f"timeseries {self.name!r} norm mismatch while merging"
            )
        level = int(doc.get("level", 0))
        incoming = {
            int(k): [float(v[0]), float(v[1]), float(v[2]), float(v[3])]
            for k, v in (doc.get("points") or {}).items()
        }
        while self.level < level:
            self._coalesce()
        while level < self.level:
            folded: dict[int, list[float]] = {}
            for idx, (s, c, lo, hi) in incoming.items():
                slot = folded.get(idx >> 1)
                if slot is None:
                    folded[idx >> 1] = [s, c, lo, hi]
                else:
                    slot[0] += s
                    slot[1] += c
                    slot[2] = min(slot[2], lo)
                    slot[3] = max(slot[3], hi)
            incoming = folded
            level += 1
        for idx, (s, c, lo, hi) in incoming.items():
            slot = self.points.get(idx)
            if slot is None:
                self.points[idx] = [s, c, lo, hi]
            else:
                slot[0] += s
                slot[1] += c
                slot[2] = min(slot[2], lo)
                slot[3] = max(slot[3], hi)
        while len(self.points) > self.capacity:
            self._coalesce()

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "mode": self.mode,
            "window0": self.window0,
            "window": self.window,
            "level": self.level,
            "capacity": self.capacity,
            "norm": self.norm,
            "points": {
                str(idx): list(self.points[idx])
                for idx in sorted(self.points)
            },
        }


class QuantileDigest:
    """Streaming quantile sketch with fixed relative precision.

    Positive values land in logarithmic buckets
    ``idx = ceil(log(v) / log(gamma))`` (so bucket ``idx`` covers
    ``(gamma**(idx-1), gamma**idx]``); non-positive values count in a
    dedicated zero bucket. Quantile queries walk the cumulative counts
    and return the matched bucket's upper bound, clamped to the observed
    extrema — relative error is bounded by ``gamma - 1``.
    """

    __slots__ = ("name", "labels", "gamma", "_log_gamma", "counts", "zero",
                 "sum", "count", "min", "max")
    kind = "digest"

    def __init__(
        self, name: str, labels: tuple, gamma: float = DEFAULT_GAMMA
    ) -> None:
        if gamma <= 1.0:
            raise ObsError(f"digest {name!r}: gamma must be > 1")
        self.name = name
        self.labels = labels
        self.gamma = float(gamma)
        self._log_gamma = math.log(self.gamma)
        self.counts: dict[int, int] = {}
        self.zero = 0
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero += 1
            return
        idx = math.ceil(math.log(value) / self._log_gamma)
        self.counts[idx] = self.counts.get(idx, 0) + 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a whole column of observations at once.

        Equivalent to per-element :meth:`observe` up to float summation
        order (bucket counts and the observation count are exact; the
        running ``sum`` accumulates in numpy's reduction order). This is
        the bulk entry point for the vectorized execution backend.
        """
        v = np.asarray(values, dtype=float)
        if v.size == 0:
            return
        self.sum += float(v.sum())
        self.count += int(v.size)
        lo, hi = float(v.min()), float(v.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        pos = v[v > 0.0]
        self.zero += int(v.size - pos.size)
        if pos.size:
            idx = np.ceil(np.log(pos) / self._log_gamma).astype(np.int64)
            buckets, counts = np.unique(idx, return_counts=True)
            for b, c in zip(buckets, counts):
                b = int(b)
                self.counts[b] = self.counts.get(b, 0) + int(c)

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) of everything observed so far."""
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"digest {self.name!r}: quantile {q} out of [0,1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero:
            return min(0.0, self.max) if self.max < 0.0 else 0.0
        seen = self.zero
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                return max(self.min, min(self.gamma ** idx, self.max))
        return self.max  # pragma: no cover - rank <= count always matches

    # -- merging -----------------------------------------------------------

    def merge_doc(self, doc: Mapping) -> None:
        """Fold a serialized digest (:meth:`as_dict` form) into this one."""
        if float(doc.get("gamma", self.gamma)) != self.gamma:
            raise ObsError(
                f"digest {self.name!r} gamma mismatch while merging: "
                f"{self.gamma} vs {doc.get('gamma')}"
            )
        for k, c in (doc.get("buckets") or {}).items():
            idx = int(k)
            self.counts[idx] = self.counts.get(idx, 0) + int(c)
        self.zero += int(doc.get("zero", 0))
        self.sum += float(doc.get("sum", 0.0))
        n = int(doc.get("count", 0))
        self.count += n
        if n > 0:
            self.min = min(self.min, float(doc["min"]))
            self.max = max(self.max, float(doc["max"]))

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "gamma": self.gamma,
            "zero": self.zero,
            "buckets": {
                str(idx): self.counts[idx] for idx in sorted(self.counts)
            },
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


def digest_quantile(doc: Mapping, q: float) -> float:
    """Quantile query over a *serialized* digest (dict form).

    The diff tool and the report CLI read snapshots, not live
    instruments; this reconstructs the walk :meth:`QuantileDigest.quantile`
    performs, bucket-exact.
    """
    count = int(doc.get("count", 0))
    if count == 0:
        return 0.0
    gamma = float(doc.get("gamma", DEFAULT_GAMMA))
    zero = int(doc.get("zero", 0))
    vmin = float(doc.get("min", 0.0))
    vmax = float(doc.get("max", 0.0))
    rank = max(1, math.ceil(q * count))
    if rank <= zero:
        return min(0.0, vmax) if vmax < 0.0 else 0.0
    seen = zero
    buckets = doc.get("buckets") or {}
    for idx, c in sorted((int(k), int(v)) for k, v in buckets.items()):
        seen += c
        if seen >= rank:
            return max(vmin, min(gamma ** idx, vmax))
    return vmax


def series_values(doc: Mapping) -> list[tuple[int, float]]:
    """Per-window rendered values of a *serialized* timeseries.

    Busy-mode windows render as utilization
    (``sum / (window * norm)``); sample-mode windows as the in-window
    mean (``sum / count``). Returned sorted by window index.
    """
    mode = doc.get("mode", "sample")
    window = float(doc.get("window", DEFAULT_WINDOW))
    norm = float(doc.get("norm", 1.0)) or 1.0
    out: list[tuple[int, float]] = []
    for k, (s, c, _lo, _hi) in sorted(
        (int(k), v) for k, v in (doc.get("points") or {}).items()
    ):
        if mode == "busy":
            out.append((k, utilization(float(s), window * norm)))
        else:
            out.append((k, float(s) / float(c) if c else 0.0))
    return out
