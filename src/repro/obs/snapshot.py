"""JSON metrics snapshots: the single run artifact everything reads.

A snapshot bundles the metrics registry dump, the scheduler decision
log, and caller-supplied metadata into one deterministic JSON document —
the format ``python -m repro.obs.report`` consumes and the benchmark
harness derives its machine-readable results from. Determinism is a
design requirement (a satellite test asserts byte-identical snapshots
from identical seeded runs), so: keys are sorted, metrics are sorted by
(name, labels) inside the registry, and no wall-clock timestamps are
stamped here — pass run identity through ``meta`` if you need it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.errors import ObsError

#: Document format identifier.
SCHEMA = "repro.obs.snapshot/v1"


def build_snapshot(obs, meta: Mapping[str, object] | None = None) -> dict:
    """Assemble the snapshot document for an
    :class:`~repro.obs.Observability` bundle.

    When the bundle carries a span recorder, the canonical span-trace
    document rides along under ``spans``; runs without tracing emit a
    byte-identical snapshot to what they produced before spans existed.
    """
    doc = {
        "schema": SCHEMA,
        "meta": dict(meta) if meta else {},
        "metrics": obs.registry.snapshot(),
        "decisions": list(obs.decisions.records),
    }
    spans = getattr(obs, "spans", None)
    if spans is not None:
        doc["spans"] = spans.as_doc()
    return doc


def to_json(snapshot: Mapping[str, object]) -> str:
    """Canonical serialization (sorted keys, 2-space indent)."""
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


def write_snapshot(
    path: str | Path, obs, meta: Mapping[str, object] | None = None
) -> str:
    """Build, serialize and write a snapshot; returns the JSON text."""
    text = to_json(build_snapshot(obs, meta))
    Path(path).write_text(text, encoding="utf-8")
    return text


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot back, checking the schema marker."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ObsError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ObsError(
            f"{path} is not a {SCHEMA} snapshot "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    return doc


# -- canonical result payloads (one source of truth for reported numbers) --


def completion_payload(
    scheme: str, platform: str, completion_time: float, baseline_time: float
) -> dict:
    """One (scheme, platform) result row in the shared reporting format.

    Normalization routes through
    :func:`repro.metrics.stats.normalized_performance`, the same function
    the experiment grids use, so benchmark JSON, Table-2 summaries and
    Figs. 6/7 can never disagree on the definition.
    """
    # Imported here: repro.metrics pulls in the runtime package, which
    # imports repro.obs — a cycle at module-import time only.
    from repro.metrics.stats import normalized_performance

    return {
        "scheme": scheme,
        "platform": platform,
        "completion_time": completion_time,
        "normalized_performance": normalized_performance(
            baseline_time, completion_time
        ),
    }


def grid_payload(grid, baseline: str | None = None) -> dict:
    """Reporting payload for an experiments ``GridResult``.

    The payload is a faithful round-trip format:
    :meth:`repro.experiments.harness.GridResult.from_payload` is its
    exact inverse. JSON serialization may sort object keys (ours does),
    so cell *ordering* travels in the explicit ``program_order`` and
    ``schemes`` lists rather than in dict insertion order.

    Args:
        grid: a :class:`repro.experiments.harness.GridResult`.
        baseline: baseline scheme label; defaults to the grid harness's
            own (static(SB), as in the paper).
    """
    from repro.experiments.harness import BASELINE_LABEL

    base = baseline if baseline is not None else BASELINE_LABEL
    rows: dict[str, list[dict]] = {}
    for program, times in sorted(grid.times.items()):
        base_time = times[base]
        rows[program] = [
            completion_payload(label, grid.platform_name, t, base_time)
            for label, t in sorted(times.items())
        ]
    return {
        "platform": grid.platform_name,
        "baseline": base,
        "schemes": list(grid.config_labels),
        "program_order": list(grid.times),
        "programs": rows,
    }
