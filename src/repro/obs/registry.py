"""Runtime metrics: counters, gauges and fixed-bucket histograms.

The registry is the quantitative half of the observability layer (the
qualitative half is :mod:`repro.obs.decisions`). Instruments follow the
conventions the paper's own measurement methodology implies:

* **counters** only go up (dispatch counts, seconds of runtime overhead);
* **gauges** hold the latest value of something (team shape, last loop
  imbalance);
* **histograms** bucket a distribution against *fixed* upper bounds
  chosen at creation time (granted chunk sizes), so two runs that observe
  the same values produce byte-identical snapshots.

Instruments are keyed by ``(name, labels)``; asking for the same key
twice returns the same instrument, so call sites never need to cache.
The :class:`NullRegistry` subclass hands out shared no-op instruments —
the default everywhere in the runtime, so uninstrumented runs pay only
an attribute check per hook.
"""

from __future__ import annotations

import bisect
from typing import Mapping, Sequence

from repro.errors import ObsError
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    DEFAULT_GAMMA,
    DEFAULT_WINDOW,
    QuantileDigest,
    TimeSeries,
)

#: Canonical label key: sorted (key, stringified value) pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Snapshot key per instrument kind ("timeseries" is its own plural).
KIND_PLURALS = {
    "counter": "counters",
    "gauge": "gauges",
    "histogram": "histograms",
    "timeseries": "timeseries",
    "digest": "digests",
}

#: Default histogram buckets: powers of two covering chunk sizes from a
#: single iteration up to the largest AID allotments seen in practice.
POW2_BUCKETS = tuple(float(2**i) for i in range(13))  # 1 .. 4096


def label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical, hashable, deterministic form of a label set."""
    items = [(k, str(v)) for k, v in labels.items()]
    if len(items) > 1:
        items.sort()
    return tuple(items)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never decrease)."""
        if amount < 0:
            raise ObsError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """Last-value-wins instrument."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket histogram (cumulative-style export).

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    An observation lands in the first bucket whose bound is >= value.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelKey, buckets: Sequence[float]
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObsError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObsError(
                f"histogram {name!r} buckets must be strictly increasing: {bounds}"
            )
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values) -> None:
        """Fold a whole column of observations at once.

        Bucket counts and the running sum land exactly where per-element
        :meth:`observe` calls would put them (``np.searchsorted`` with
        ``side="left"`` is ``bisect_left``; the sum accumulates through a
        cumsum, which rounds in the same left-to-right order as repeated
        ``+=``).
        """
        import numpy as np

        v = np.asarray(values, dtype=float)
        if v.size == 0:
            return
        idx = np.searchsorted(self.bounds, v, side="left")
        folded = np.bincount(idx, minlength=len(self.counts))
        counts = self.counts
        for i, c in enumerate(folded.tolist()):
            if c:
                counts[i] += c
        chain = np.empty(v.size + 1)
        chain[0] = self.sum
        chain[1:] = v
        self.sum = float(np.cumsum(chain)[-1])
        self.count += int(v.size)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": [
                {"le": le, "count": c}
                for le, c in zip(list(self.bounds) + ["+Inf"], self.counts)
            ],
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create store of instruments, keyed by (name, labels).

    The same metric name must always be used with the same instrument
    kind; mixing kinds is a programming error and raises
    :class:`~repro.errors.ObsError`.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], object] = {}

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = POW2_BUCKETS, **labels: object
    ) -> Histogram:
        key = (name, label_key(labels))
        inst = self._metrics.get(key)
        if inst is None:
            inst = Histogram(name, key[1], buckets)
            self._metrics[key] = inst
        elif not isinstance(inst, Histogram):
            raise ObsError(
                f"metric {name!r} already registered as a {inst.kind}"
            )
        return inst

    def timeseries(
        self,
        name: str,
        mode: str = "sample",
        window: float = DEFAULT_WINDOW,
        capacity: int = DEFAULT_CAPACITY,
        norm: float = 1.0,
        **labels: object,
    ) -> TimeSeries:
        key = (name, label_key(labels))
        inst = self._metrics.get(key)
        if inst is None:
            inst = TimeSeries(
                name, key[1], mode=mode, window=window,
                capacity=capacity, norm=norm,
            )
            self._metrics[key] = inst
        elif not isinstance(inst, TimeSeries):
            raise ObsError(
                f"metric {name!r} already registered as a {inst.kind}"
            )
        return inst

    def digest(
        self, name: str, gamma: float = DEFAULT_GAMMA, **labels: object
    ) -> QuantileDigest:
        key = (name, label_key(labels))
        inst = self._metrics.get(key)
        if inst is None:
            inst = QuantileDigest(name, key[1], gamma=gamma)
            self._metrics[key] = inst
        elif not isinstance(inst, QuantileDigest):
            raise ObsError(
                f"metric {name!r} already registered as a {inst.kind}"
            )
        return inst

    def _get(self, cls, name: str, labels: Mapping[str, object]):
        key = (name, label_key(labels))
        inst = self._metrics.get(key)
        if inst is None:
            inst = cls(name, key[1])
            self._metrics[key] = inst
        elif not isinstance(inst, cls):
            raise ObsError(
                f"metric {name!r} already registered as a {inst.kind}"
            )
        return inst

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, **labels: object) -> float:
        """Current value of a counter/gauge (test & report convenience)."""
        inst = self._metrics.get((name, label_key(labels)))
        if inst is None:
            raise ObsError(f"no metric {name!r} with labels {labels!r}")
        if not isinstance(inst, (Counter, Gauge)):
            raise ObsError(f"{name!r} is a {inst.kind}; read its structure")
        return inst.value

    def snapshot(self) -> dict:
        """Deterministic, JSON-ready dump of every instrument.

        Instruments are sorted by (name, labels), so two registries fed
        the same observations serialize identically regardless of
        creation order.
        """
        out: dict[str, list] = {plural: [] for plural in KIND_PLURALS.values()}
        for (_, _), inst in sorted(self._metrics.items()):
            out[KIND_PLURALS[inst.kind]].append(inst.as_dict())
        return out


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram/timeseries/digest."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, *args: float) -> None:
        pass

    def observe_span(self, t0: float, t1: float) -> None:
        pass

    def observe_many(self, *columns) -> None:
        pass

    def observe_spans(self, t0s, t1s) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The zero-overhead sink: every accessor returns a shared no-op.

    ``enabled`` is False so hot paths can skip metric *computation*
    entirely (building label dicts, iterating ranges) with one check.
    """

    enabled = False

    def counter(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=POW2_BUCKETS, **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def timeseries(self, name, **kwargs):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def digest(self, name, gamma=DEFAULT_GAMMA, **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {plural: [] for plural in KIND_PLURALS.values()}
