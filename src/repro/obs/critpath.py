"""Critical-path extraction over a causal span document.

Because the span recorder tiles every thread's busy window exactly
(wake → dispatch → compute → … → empty take → barrier idle, with each
span starting where its predecessor ended — see :mod:`repro.obs.spans`),
the longest causal chain ending at program/loop completion can be
recovered by a backward walk: start at the tiling span with the latest
end time and repeatedly step to a span whose end coincides with the
current span's start. The resulting chain covers ``[t_start, t_end]``
with no gaps on fault-free runs, so its per-category attribution sums
to the makespan *exactly* (modulo float summation noise far below the
1e-9 acceptance bound).

On faulted runs a worker can be parked or a core taken offline, leaving
real holes in the tiling; the walk accounts any unbridgeable gap as a
synthetic ``stall`` step so the attribution still sums to the makespan
and the lost window is visible in the report.

Causal edges beyond the tiling: steal (victim→thief) and
fault→resample edges are materialized in the document; fetch-and-add
ordering edges — chunk *k+1* of the shared pool causally follows chunk
*k* regardless of thread — are implied by the dispatch spans' pool
order and can be derived with :func:`ordering_edges` when needed, which
keeps span documents small.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.obs.spans import Span, TILING_CATS, load_span_doc

#: Schema of the critical-path JSON document.
CRITPATH_SCHEMA = "repro.obs.critpath/v1"

#: Attribution categories, in display order. ``gap`` time (holes in the
#: tiling, e.g. a parked worker under fault injection) is reported as
#: ``stall``.
ATTRIBUTION_CATS = (
    "compute-big", "compute-small", "dispatch", "sampling", "stall",
    "idle", "serial",
)


def tiling_spans(spans: Sequence[Span]) -> list[Span]:
    """The spans participating in the busy-time tiling (the only ones a
    critical path may traverse)."""
    return [s for s in spans if s.cat in TILING_CATS]


def extract_critical_path(doc: Mapping) -> dict:
    """Walk the longest causal chain ending at run completion.

    Returns the critical-path document::

        {"schema": ..., "t0": ..., "t1": ..., "makespan": ...,
         "attribution": {category: seconds},
         "steps": [{"id", "cat", "tid", "t0", "t1"}, ...]}

    Deterministic by construction: ties at every choice point break on
    (same tid, lowest tid, span id), all content-derived.
    """
    spans = tiling_spans(load_span_doc(doc))
    if not spans:
        return {
            "schema": CRITPATH_SCHEMA,
            "t0": 0.0,
            "t1": 0.0,
            "makespan": 0.0,
            "attribution": {},
            "steps": [],
        }
    eps = 1e-12
    t_start = min(s.t0 for s in spans)
    # Terminal: the latest-ending span; ties break toward the longest,
    # then the lexicographically smallest id.
    terminal = max(spans, key=lambda s: (s.t1, -s.t0, s.span_id))
    # Index spans by end time for the backward walk. Times are exact
    # simulator floats shared between adjacent spans, so bucketing by
    # value (not epsilon range) is sufficient; the eps fallback below
    # catches near-misses.
    by_end: dict[float, list[Span]] = {}
    for s in spans:
        by_end.setdefault(s.t1, []).append(s)

    def predecessor(cur: Span) -> Span | None:
        cands = by_end.get(cur.t0)
        if not cands:
            cands = [
                s for s in spans
                if abs(s.t1 - cur.t0) <= eps and s is not cur
            ]
        cands = [s for s in cands if s is not cur]
        if not cands:
            return None
        same = [s for s in cands if s.tid == cur.tid]
        pool = same if same else cands
        return min(pool, key=lambda s: (s.tid, s.t0, s.span_id))

    chain: list[Span] = [terminal]
    guard = len(spans) + 1
    while len(chain) <= guard:
        cur = chain[-1]
        if cur.t0 <= t_start + eps:
            break
        prev = predecessor(cur)
        if prev is None:
            # Hole in the tiling (faulted run): bridge with a synthetic
            # stall step back to the latest span ending at or before the
            # hole, so attribution still telescopes to the makespan.
            before = [s for s in spans if s.t1 <= cur.t0 + eps]
            if not before:
                break
            prev = max(before, key=lambda s: (s.t1, -s.t0, s.span_id))
            if prev.t1 < cur.t0 - eps:
                chain.append(
                    Span(
                        f"gap@{cur.t0!r}", None, "gap", "stall",
                        prev.t1, cur.t0, cur.tid,
                    )
                )
        chain.append(prev)
    chain.reverse()
    attribution: dict[str, float] = {}
    steps = []
    for s in chain:
        attribution[s.cat] = attribution.get(s.cat, 0.0) + (s.t1 - s.t0)
        steps.append(
            {"id": s.span_id, "cat": s.cat, "tid": s.tid,
             "t0": s.t0, "t1": s.t1}
        )
    return {
        "schema": CRITPATH_SCHEMA,
        "t0": chain[0].t0 if chain else 0.0,
        "t1": terminal.t1,
        "makespan": terminal.t1 - (chain[0].t0 if chain else 0.0),
        "attribution": {k: attribution[k] for k in sorted(attribution)},
        "steps": steps,
    }


def span_category_totals(doc: Mapping) -> dict[str, dict[str, float]]:
    """Full-tree per-loop, per-category span seconds.

    Keyed by loop *name* (summed over invocations); the per-loop totals
    are what :func:`reconcile` holds against the runtime's
    ``sim_time_seconds_total`` counters.
    """
    spans = load_span_doc(doc)
    by_id = {s.span_id: s for s in spans}
    totals: dict[str, dict[str, float]] = {}
    for s in spans:
        if s.cat not in TILING_CATS:
            continue
        # Find the enclosing loop span by walking the parent chain.
        cur = s
        loop_name = None
        while cur is not None:
            if cur.cat == "loop":
                loop_name = cur.name
                break
            cur = by_id.get(cur.parent) if cur.parent else None
        if loop_name is None:
            # Barrier spans parent to the program (their interval extends
            # past the loop span) but their id still embeds the loop path:
            # fall back to the longest loop-span id prefix.
            best = None
            for sid, cand in by_id.items():
                if cand.cat == "loop" and s.span_id.startswith(sid + "/"):
                    if best is None or len(sid) > len(best.span_id):
                        best = cand
            if best is not None:
                loop_name = best.name
        if loop_name is None:
            loop_name = ""  # serial spans and program-level idle
        slot = totals.setdefault(loop_name, {})
        slot[s.cat] = slot.get(s.cat, 0.0) + (s.t1 - s.t0)
    return totals


def reconcile(
    doc: Mapping,
    snapshot: Mapping,
    rel: float = 1e-9,
    abs_tol: float = 1e-12,
) -> list[str]:
    """Cross-check span totals against ``sim_time_seconds_total``.

    Per loop: compute-big + compute-small span seconds must equal the
    counters' ``compute`` total; dispatch + sampling must equal
    ``overhead`` + ``stall`` (fault stalls are folded into dispatch
    windows at the span level); barrier/idle spans must equal ``idle``.
    Returns human-readable violations (empty == reconciled).
    """
    metrics = snapshot.get("metrics", snapshot) or {}
    sim: dict[str, dict[str, float]] = {}
    for m in metrics.get("counters", []):
        if m.get("name") != "sim_time_seconds_total":
            continue
        labels = m.get("labels", {})
        slot = sim.setdefault(str(labels.get("loop", "?")), {})
        cat = str(labels.get("category", "?"))
        slot[cat] = slot.get(cat, 0.0) + float(m.get("value", 0.0))
    spans = span_category_totals(doc)
    out: list[str] = []

    def close(a: float, b: float) -> bool:
        return abs(a - b) <= max(abs_tol, rel * max(abs(a), abs(b)))

    for loop, counters in sorted(sim.items()):
        st = spans.get(loop, {})
        pairs = (
            (
                "compute",
                counters.get("compute", 0.0),
                st.get("compute-big", 0.0) + st.get("compute-small", 0.0),
            ),
            (
                "overhead+stall",
                counters.get("overhead", 0.0) + counters.get("stall", 0.0),
                st.get("dispatch", 0.0) + st.get("sampling", 0.0)
                + st.get("stall", 0.0),
            ),
            ("idle", counters.get("idle", 0.0), st.get("idle", 0.0)),
        )
        for label, want, got in pairs:
            if not close(want, got):
                out.append(
                    f"critpath: loop {loop!r} {label}: span seconds "
                    f"{got!r} != sim_time {want!r}"
                )
    return out


def critpath_violations(doc: Mapping, eps: float = 1e-9) -> list[str]:
    """Critical-path invariants over one span document.

    * the path's attribution sums to its makespan (within ``eps``);
    * the path never exceeds the overall span envelope (critical path
      ≤ makespan);
    * on the degenerate serial case (all tiling spans on one tid) the
      path covers every tiling span exactly, so path == makespan.
    """
    cp = extract_critical_path(doc)
    out: list[str] = []
    total = sum(cp["attribution"].values())
    scale = max(1.0, abs(cp["makespan"]))
    if abs(total - cp["makespan"]) > eps * scale:
        out.append(
            f"critpath: attribution sum {total!r} != makespan "
            f"{cp['makespan']!r}"
        )
    spans = tiling_spans(load_span_doc(doc))
    if spans:
        env0 = min(s.t0 for s in spans)
        env1 = max(s.t1 for s in spans)
        if cp["makespan"] > (env1 - env0) + eps * scale:
            out.append(
                f"critpath: path {cp['makespan']!r} exceeds span envelope "
                f"{(env1 - env0)!r}"
            )
        tids = {s.tid for s in spans}
        if len(tids) == 1:
            covered = sum(s.t1 - s.t0 for s in spans)
            if abs(total - covered) > eps * scale:
                out.append(
                    "critpath: serial case path does not cover all spans "
                    f"({total!r} != {covered!r})"
                )
    return out


def ordering_edges(doc: Mapping) -> list[dict]:
    """Derive fetch-and-add ordering edges from dispatch spans.

    The shared work-share pool hands out chunks in fetch-and-add order:
    within one loop, the dispatch that obtained ``[lo_k, hi_k)`` causally
    precedes the dispatch that obtained ``[lo_{k+1}, hi_{k+1})`` with
    ``lo_{k+1} >= hi_k``. These edges are implied by the chunk spans'
    ``lo`` attributes and dispatch times, so the recorder does not
    materialize them; this helper reconstructs them for analyses that
    want the full causal graph.
    """
    spans = load_span_doc(doc)
    by_loop: dict[str, list[Span]] = {}
    by_id = {s.span_id: s for s in spans}
    for s in spans:
        if s.name != "dispatch" or "lo" not in s.attrs:
            continue
        cur = s
        loop_id = None
        while cur is not None:
            if cur.cat == "loop":
                loop_id = cur.span_id
                break
            cur = by_id.get(cur.parent) if cur.parent else None
        if loop_id is not None:
            by_loop.setdefault(loop_id, []).append(s)
    edges = []
    for loop_id in sorted(by_loop):
        seq = sorted(
            by_loop[loop_id],
            key=lambda s: (int(s.attrs["lo"]), s.t0, s.span_id),
        )
        for a, b in zip(seq, seq[1:]):
            if int(b.attrs["lo"]) >= int(a.attrs["hi"]):
                edges.append(
                    {"src": a.span_id, "dst": b.span_id,
                     "kind": "pool_order", "t": b.t0}
                )
    return edges


def format_critpath(cp: Mapping, width: int = 60) -> str:
    """Human-readable critical-path report."""
    lines = [
        f"critical path: {cp['makespan']:.6f}s "
        f"over {len(cp['steps'])} steps "
        f"[{cp['t0']:.6f}, {cp['t1']:.6f}]",
        "",
        f"{'category':<16s}{'seconds':>14s}{'share':>9s}",
    ]
    makespan = cp["makespan"] or 1.0
    attribution = cp.get("attribution", {})
    for cat in ATTRIBUTION_CATS:
        if cat not in attribution:
            continue
        sec = attribution[cat]
        lines.append(f"{cat:<16s}{sec:>14.6f}{sec / makespan:>8.1%}")
    for cat in sorted(set(attribution) - set(ATTRIBUTION_CATS)):
        sec = attribution[cat]
        lines.append(f"{cat:<16s}{sec:>14.6f}{sec / makespan:>8.1%}")
    return "\n".join(lines)
