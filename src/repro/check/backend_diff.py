"""Differential backend fuzzing: reference vs vectorized, byte for byte.

The vectorized execution backend's contract is not "close enough" — it
is *byte identity*: the same :class:`~repro.runtime.executor.LoopResult`
and the same scheduler decision log as the reference discrete-event
simulator, for every schedule, platform, cost distribution and fault
plan. This module is the gate on that contract.

:func:`diff_case` runs one :class:`~repro.check.generators.FuzzCase`
through each backend with a fresh observability bundle, serializes the
decision records canonically, and compares both the result tuple and the
log bytes. :func:`diff_fuzz` drives a seeded campaign over randomly
generated cases (the same generator the conformance fuzzer uses, so the
pools are identical) and greedily shrinks any mismatch to a minimal
reproducer with the conformance shrinker — a differential failure's
counterexample is a tiny, replayable case, not a 500-iteration haystack.

Cases with fault plans exercise the vectorized backend's delegation
path: faulted runs fall back to reference semantics, so the diff proves
the fallback is transparent. CI runs ``python -m repro.check backends``
with and without ``--faults sim`` (200 cases each) and uploads the
shrunk counterexamples on failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.check.fuzz import shrink as conformance_shrink
from repro.check.generators import (
    FuzzCase,
    case_costs,
    case_rng,
    generate_case,
    run_loop,
)
from repro.faults.model import plan_from_tuples
from repro.obs import Observability
from repro.sim.rng import stable_seed

#: The pair every campaign compares unless told otherwise. The first
#: entry is the ground truth; every other entry must match it exactly.
DEFAULT_BACKENDS = ("reference", "vectorized")


def result_key(result) -> tuple:
    """A :class:`LoopResult` as a comparable value tuple.

    Covers every simulated field — times, per-thread finishes and
    iteration counts, dispatch/scheduler-call counters, the estimated-SF
    table and the full per-chunk range list. Excludes only ``extra``
    (the live scheduler object).
    """
    return (
        result.loop_name,
        result.start_time,
        result.end_time,
        tuple(result.finish_times),
        tuple(result.iterations),
        result.dispatches,
        result.scheduler_calls,
        (
            None
            if result.estimated_sf is None
            else tuple(sorted(result.estimated_sf.items()))
        ),
        tuple((t, lo, hi) for t, lo, hi in result.ranges),
    )


def decision_bytes(obs: Observability) -> bytes:
    """The run's decision log as canonical JSONL bytes."""
    return "\n".join(
        json.dumps(r, sort_keys=True, separators=(",", ":"))
        for r in obs.decisions.records
    ).encode("utf-8")


@dataclass
class BackendObservation:
    """One backend's run of a case: the comparable result + log."""

    backend: str
    key: tuple
    decisions: bytes
    n_decisions: int


@dataclass
class CaseMismatch:
    """The first observable divergence between two backends on a case."""

    case: FuzzCase
    baseline: str
    candidate: str
    field_name: str
    detail: str

    def render(self) -> str:
        return (
            f"case: {self.case.describe()}\n"
            f"  {self.candidate} diverges from {self.baseline} "
            f"on {self.field_name}: {self.detail}"
        )


#: LoopResult tuple positions, for mismatch reporting.
_KEY_FIELDS = (
    "loop_name", "start_time", "end_time", "finish_times", "iterations",
    "dispatches", "scheduler_calls", "estimated_sf", "ranges",
)


def _first_jsonl_divergence(a: bytes, b: bytes) -> str:
    """Human-readable pointer at the first differing decision record."""
    la, lb = a.split(b"\n"), b.split(b"\n")
    if len(la) != len(lb):
        return f"record count {len(la)} != {len(lb)}"
    for i, (ra, rb) in enumerate(zip(la, lb)):
        if ra != rb:
            return (
                f"record {i}: {ra.decode('utf-8', 'replace')} != "
                f"{rb.decode('utf-8', 'replace')}"
            )
    return "identical?"  # pragma: no cover - only reached on a race


def observe_case(case: FuzzCase, backend: str) -> BackendObservation:
    """Run one simulator case under ``backend`` with fresh observability.

    Fault tuples carry *fractions of the fault-free makespan* (the fuzz
    convention); the baseline probe that scales them always runs on the
    reference backend, so every backend under test receives the
    identical absolute-time plan.
    """
    obs = Observability()
    faults_plan = None
    if case.faults:
        probe = run_loop(
            case.build_platform(),
            case.build_spec(),
            n_iterations=case.n_iterations,
            costs=case_costs(case),
            overhead=case.overhead_model(),
            n_threads=case.n_threads,
            rng=case_rng(case),
            backend="reference",
        )
        faults_plan = plan_from_tuples(case.faults).scaled(
            max(probe.duration, 1e-9)
        )
    result = run_loop(
        case.build_platform(),
        case.build_spec(),
        n_iterations=case.n_iterations,
        costs=case_costs(case),
        overhead=case.overhead_model(),
        n_threads=case.n_threads,
        rng=case_rng(case),
        faults=faults_plan,
        obs=obs,
        backend=backend,
    )
    log = decision_bytes(obs)
    return BackendObservation(
        backend=backend,
        key=result_key(result),
        decisions=log,
        n_decisions=len(obs.decisions.records),
    )


def diff_case(
    case: FuzzCase, backends: tuple[str, ...] = DEFAULT_BACKENDS
) -> CaseMismatch | None:
    """Run a case through every backend; ``None`` means byte-identical.

    The first backend is the baseline. A crash in any backend is a
    mismatch too (reported with the exception text) — a backend may
    never fail where the reference succeeds.
    """
    baseline = observe_case(case, backends[0])
    for name in backends[1:]:
        try:
            cand = observe_case(case, name)
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            return CaseMismatch(
                case, backends[0], name, "crash",
                f"{type(exc).__name__}: {exc}",
            )
        for i, field_name in enumerate(_KEY_FIELDS):
            if baseline.key[i] != cand.key[i]:
                return CaseMismatch(
                    case, backends[0], name, field_name,
                    f"{baseline.key[i]!r} != {cand.key[i]!r}",
                )
        if baseline.decisions != cand.decisions:
            return CaseMismatch(
                case, backends[0], name, "decision_log",
                _first_jsonl_divergence(baseline.decisions, cand.decisions),
            )
    return None


@dataclass
class DiffFailure:
    """A mismatching case and its shrunk reproducer."""

    case: FuzzCase
    shrunk: FuzzCase
    mismatch: CaseMismatch  # the divergence on the shrunk reproducer

    def render(self) -> str:
        lines = [f"original: {self.case.describe()}"]
        if self.shrunk != self.case:
            lines.append(f"shrunk:   {self.shrunk.describe()}")
        lines.append(self.mismatch.render())
        return "\n".join(lines)


@dataclass
class DiffResult:
    """Outcome of one differential campaign."""

    n_cases: int
    seed: int
    backends: tuple[str, ...] = DEFAULT_BACKENDS
    failures: list[DiffFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        pair = " vs ".join(self.backends)
        if self.ok:
            return (
                f"backend diff ({pair}): {self.n_cases} cases, "
                f"seed {self.seed} — byte-identical"
            )
        lines = [
            f"backend diff ({pair}): {self.n_cases} cases, "
            f"seed {self.seed} — {len(self.failures)} mismatching case(s)"
        ]
        for i, f in enumerate(self.failures):
            lines.append(
                f"--- mismatch {i} (replay with seed={f.case.seed}) ---"
            )
            lines.append(f.render())
        return "\n".join(lines)


def diff_fuzz(
    cases: int,
    seed: int,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    variants: tuple[str, ...] | None = None,
    platforms: tuple[str, ...] | None = None,
    faults: str | None = None,
    shrink_failures: bool = True,
    max_failures: int = 5,
    progress: Callable[[int, FuzzCase], None] | None = None,
) -> DiffResult:
    """Run a differential campaign; stops early after ``max_failures``.

    Case derivation matches :func:`repro.check.fuzz.fuzz` — sub-seed
    ``stable_seed("fuzz", seed, index)`` — but under its own schedule
    pool: the conformance variants *plus* the plain ``static``,
    ``dynamic`` and ``guided`` kinds the grids run, since the vectorized
    drain engine only engages on dynamic-family schedules and the diff
    must cover both engine paths. ``faults="sim"`` rides a random fault
    plan on every case (``"stall"`` cases are real-thread-only and not
    meaningful here; passing it raises via the generator); the static
    kinds drop out of the default pool then — fault recovery requeues
    preempted work into the shared pool, which statically-partitioned
    threads never re-poll, so the *reference* itself cannot complete
    such runs (same restriction as the conformance fault campaign).
    """
    if variants is None:
        variants = (
            "dynamic,1", "dynamic,4", "guided,1",
            "aid_static", "aid_hybrid,80", "aid_dynamic,1,5",
            "aid_auto,1,5", "aid_steal,8",
        )
        if faults is None:
            variants = ("static", "static,7") + variants
    out = DiffResult(n_cases=cases, seed=seed, backends=tuple(backends))
    fails = lambda c: diff_case(c, out.backends) is not None  # noqa: E731
    for i in range(cases):
        case = generate_case(
            stable_seed("fuzz", seed, i), variants, platforms, faults=faults
        )
        if progress is not None:
            progress(i, case)
        mismatch = diff_case(case, out.backends)
        if mismatch is None:
            continue
        shrunk = (
            conformance_shrink(case, fails=fails)
            if shrink_failures
            else case
        )
        final = diff_case(shrunk, out.backends)
        if final is None:  # pragma: no cover - shrinker raced a fixpoint
            shrunk, final = case, mismatch
        out.failures.append(DiffFailure(case, shrunk, final))
        if len(out.failures) >= max_failures:
            break
    return out
