"""Schedule-conformance oracle: invariants, differential checks, fuzzing.

The paper's claims rest on the AID state machines (Figs. 3 and 5)
faithfully mirroring libgomp's work-share semantics: every loop
iteration dispatched exactly once, fetch-and-add chunk removal never
racing past ``end``, barriers releasing only complete teams. The rest of
the test suite asserts *outcomes* (speedups, byte-identical snapshots);
this package machine-checks the *schedules themselves*:

* :mod:`repro.check.recording` — the opt-in ``check=`` context the
  runtime threads through :class:`~repro.runtime.workshare.WorkShare`,
  the executor and the schedulers, so the oracle sees ground truth
  (every fetch-and-add, every dispatched range, every state transition)
  rather than state reconstructed from results;
* :mod:`repro.check.invariants` — the invariant catalog (exact-once
  execution, pool-pointer conformance, clock monotonicity, per-variant
  AID properties, barrier completeness);
* :mod:`repro.check.oracle` — runs the catalog over an observation and
  renders violations, including a minimal ASCII schedule excerpt;
* :mod:`repro.check.differential` — the same loop through all AID
  variants plus a brute-force reference executor and the real-thread
  executor, cross-checking completed-iteration sets, work conservation
  and makespan sanity bounds;
* :mod:`repro.check.generators` — seeded factories for loop specs,
  platforms and overhead regimes, shared by unit tests and the fuzzer;
* :mod:`repro.check.fuzz` — deterministic fuzzing with greedy shrinking
  of failing cases to minimal reproducers;
* :mod:`repro.check.mutants` — named fault injections CI uses to prove
  the oracle actually catches scheduler bugs.

CLI: ``python -m repro.check fuzz --cases N --seed S`` and
``python -m repro.check verify <payload.json>`` (see docs/testing.md).
"""

from __future__ import annotations

from repro.check.differential import (
    DifferentialReport,
    reference_schedule,
    run_differential,
)
from repro.check.fuzz import FuzzResult, fuzz, run_case, shrink
from repro.check.generators import (
    FuzzCase,
    generate_case,
    make_loop,
    preset_platform,
    run_loop,
)
from repro.check.invariants import INVARIANTS, Violation
from repro.check.mutants import MUTANTS, apply_mutant
from repro.check.oracle import (
    ConformanceReport,
    verify_loop,
    verify_payload,
    verify_timeline,
)
from repro.check.recording import CheckContext

__all__ = [
    "CheckContext",
    "ConformanceReport",
    "DifferentialReport",
    "FuzzCase",
    "FuzzResult",
    "INVARIANTS",
    "MUTANTS",
    "Violation",
    "apply_mutant",
    "fuzz",
    "generate_case",
    "make_loop",
    "preset_platform",
    "reference_schedule",
    "run_case",
    "run_differential",
    "run_loop",
    "shrink",
    "verify_loop",
    "verify_payload",
    "verify_timeline",
]
