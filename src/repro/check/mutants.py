"""Named fault injections proving the oracle has teeth.

A conformance oracle that never fires is indistinguishable from one
that checks nothing. Each mutant here plants a realistic scheduler /
work-share bug behind a context manager; CI runs the fuzzer under a
mutant and asserts the oracle reports violations with a small shrunk
reproducer (see the ``mutant`` subcommand of ``python -m repro.check``).

Mutants patch at class level and always restore on exit, so they are
safe to use inside a single test without leaking into others.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, ContextManager

from repro.errors import ConfigError, WorkShareError
from repro.runtime.workshare import WorkShare


@dataclass(frozen=True)
class Mutant:
    """One named fault injection."""

    name: str
    description: str
    apply: Callable[[], ContextManager[None]]


@contextlib.contextmanager
def _patched_take(broken):
    original = WorkShare.take
    WorkShare.take = broken
    try:
        yield
    finally:
        WorkShare.take = original


def _under_advance():
    """The classic chunk-decrement bug: the runtime hands out ``n``
    iterations but only moves the shared pointer by ``n - 1``, so every
    multi-iteration grant (AID-dynamic's phase allotments ``R*M`` being
    the prime producer) overlaps the next thread's chunk."""

    def broken(self, n):
        if n <= 0:
            raise WorkShareError(f"chunk size must be positive, got {n}")
        lo = self._next.fetch_add(max(1, n - 1))
        if lo >= self.end:
            self._empty_takes.add_fetch(1)
            if self._check is not None:
                self._check.on_take(n, lo, None)
            return None
        hi = min(lo + n, self.end)
        self._dispatches.add_fetch(1)
        if self._check is not None:
            self._check.on_take(n, lo, (lo, hi))
        return (lo, hi)

    return _patched_take(broken)


def _no_clamp():
    """Drop the clamp against ``end``: the final grant of a loop runs
    past the last iteration (libgomp without the ``min`` in
    ``gomp_iter_dynamic_next``)."""

    def broken(self, n):
        if n <= 0:
            raise WorkShareError(f"chunk size must be positive, got {n}")
        lo = self._next.fetch_add(n)
        if lo >= self.end:
            self._empty_takes.add_fetch(1)
            if self._check is not None:
                self._check.on_take(n, lo, None)
            return None
        hi = lo + n
        self._dispatches.add_fetch(1)
        if self._check is not None:
            self._check.on_take(n, lo, (lo, hi))
        return (lo, hi)

    return _patched_take(broken)


@contextlib.contextmanager
def _watchdog_off():
    from repro.exec_real.team import ThreadTeam

    original = ThreadTeam.watchdog_enabled
    ThreadTeam.watchdog_enabled = False
    try:
        yield
    finally:
        ThreadTeam.watchdog_enabled = original


def _watchdog_stall_blind():
    """Disable the stalled-worker watchdog: a worker sleeping on a chunk
    is never detected and its range never redistributed. Caught by the
    ``watchdog-redistributes`` invariant on real stall cases."""
    return _watchdog_off()


MUTANTS: dict[str, Mutant] = {
    m.name: m
    for m in (
        Mutant(
            "aid-dynamic-chunk-decrement",
            "multi-iteration grants advance the pool pointer by n-1 "
            "(breaks AID-dynamic's R*M phase allotments into overlapping "
            "chunks)",
            _under_advance,
        ),
        Mutant(
            "workshare-no-clamp",
            "the final grant is not clamped against end and runs past "
            "the last iteration",
            _no_clamp,
        ),
        Mutant(
            "watchdog-stall-blind",
            "the stalled-worker watchdog is disabled; a stall fault well "
            "past the timeout is never answered by a redistribution",
            _watchdog_stall_blind,
        ),
    )
}


def apply_mutant(name: str | None) -> ContextManager[None]:
    """Context manager installing the named mutant (no-op for ``None``)."""
    if name is None:
        return contextlib.nullcontext()
    try:
        mutant = MUTANTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown mutant {name!r}; valid: {sorted(MUTANTS)}"
        ) from None
    return mutant.apply()
