"""The opt-in ``check=`` context: ground truth for the oracle.

A :class:`CheckContext` is passed into the runtime (``LoopExecutor.run``
or ``ThreadTeam.parallel_for``) and threaded down to the structures the
invariants reason about:

* :class:`~repro.runtime.workshare.WorkShare` reports every
  fetch-and-add on the pool pointer — requested size, pointer value
  before the add, the granted (clamped) range or ``None``;
* the executor reports each scheduler dispatch (tid, virtual time,
  granted range) and the final :class:`LoopResult`;
* the AID schedulers report per-thread state transitions through
  :func:`repro.sched.aid_common.set_state` and their decision records
  through a tee emitter that is *always on* — the oracle does not depend
  on observability being enabled.

This is deliberately a write-only event log: no checking happens while
recording, so instrumented runs take the exact same scheduling decisions
as bare ones. The oracle (:mod:`repro.check.oracle`) replays the log
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.decisions import DecisionEmitter, DecisionLog


@dataclass(frozen=True)
class TakeEvent:
    """One fetch-and-add on a work-share pool pointer.

    Attributes:
        seq: append order (equals true order in the simulator, where
            events are serialized; under real threads sort by ``before``
            to recover the serialization order of the atomic itself).
        requested: chunk size asked for.
        before: pool ``next`` value the fetch-and-add returned.
        granted: the clamped range handed out, or ``None`` when the pool
            was already drained.
        requeued: True when the grant was served from the pool's
            returned-range queue (fault recovery) rather than the
            fetch-and-add pointer; ``before`` is then the range's own
            ``lo``, not a pointer value.
    """

    seq: int
    requested: int
    before: int
    granted: tuple[int, int] | None
    requeued: bool = False


@dataclass(frozen=True)
class DispatchEvent:
    """One scheduler call as seen by the executor (ground truth of what
    each thread actually executes)."""

    seq: int
    tid: int
    t: float
    granted: tuple[int, int] | None


@dataclass(frozen=True)
class StateEvent:
    """One per-thread scheduler state transition."""

    seq: int
    tid: int
    state: str
    scheduler: str


class _TeeEmitter:
    """Decision emitter writing to the check log and (optionally) obs.

    Drop-in for :class:`~repro.obs.decisions.DecisionEmitter`: the AID
    schedulers only touch ``.on`` and ``.emit``. ``on`` is always True —
    conformance checking needs the decision stream even when the
    observability layer is the null sink.
    """

    __slots__ = ("_log", "_loop", "_scheduler", "_obs_emitter")

    on = True

    def __init__(
        self, log: DecisionLog, loop_name: str, scheduler_name: str, obs
    ) -> None:
        self._log = log
        self._loop = loop_name
        self._scheduler = scheduler_name
        self._obs_emitter = DecisionEmitter(obs, loop_name, scheduler_name)

    def emit(self, tid: int, t: float, event: str, **fields: object) -> None:
        self._log.record(
            loop=self._loop,
            scheduler=self._scheduler,
            tid=tid,
            t=t,
            event=event,
            **fields,
        )
        if self._obs_emitter.on:
            self._obs_emitter.emit(tid, t, event, **fields)


@dataclass
class CheckContext:
    """Ground-truth observation of one parallel-loop execution.

    Create one, pass it as ``check=`` to the executor, then hand it to
    :func:`repro.check.oracle.verify_loop`.
    """

    takes: list[TakeEvent] = field(default_factory=list)
    dispatches: list[DispatchEvent] = field(default_factory=list)
    states: list[StateEvent] = field(default_factory=list)
    decisions: DecisionLog = field(default_factory=DecisionLog)
    team_info: dict | None = None
    loop_name: str = ""
    spec_name: str = ""
    n_iterations: int | None = None
    result: object | None = None
    #: Runtime self-check failure (e.g. the executor's iteration-count
    #: assertion) captured by the harness when the run aborted.
    error: str | None = None
    #: Scheduler label of the last tee emitter built (the active policy).
    scheduler: str = ""

    # -- hooks called by the runtime ----------------------------------------

    def on_team(self, info: dict) -> None:
        self.team_info = dict(info)

    def on_loop_begin(
        self, *, loop_name: str, n_iterations: int, spec_name: str
    ) -> None:
        self.loop_name = loop_name
        self.n_iterations = int(n_iterations)
        self.spec_name = spec_name

    def on_take(
        self,
        requested: int,
        before: int,
        granted: tuple[int, int] | None,
        requeued: bool = False,
    ) -> None:
        self.takes.append(
            TakeEvent(
                len(self.takes), int(requested), int(before), granted,
                bool(requeued),
            )
        )

    def on_dispatch(
        self, tid: int, t: float, granted: tuple[int, int] | None
    ) -> None:
        self.dispatches.append(
            DispatchEvent(len(self.dispatches), int(tid), float(t), granted)
        )

    def on_state(self, tid: int, state: str, scheduler: str) -> None:
        self.states.append(
            StateEvent(len(self.states), int(tid), state, scheduler)
        )

    def on_loop_end(self, result) -> None:
        self.result = result

    def emitter(self, loop_name: str, scheduler_name: str, obs) -> _TeeEmitter:
        """Build the always-on decision emitter for one scheduler."""
        self.scheduler = scheduler_name
        return _TeeEmitter(self.decisions, loop_name, scheduler_name, obs)

    def fault_emitter(self, loop_name: str, obs) -> _TeeEmitter:
        """Build the emitter the fault-injection engines log through.

        Records carry ``scheduler="faults"`` so the oracle can separate
        injected perturbations from policy decisions; unlike
        :meth:`emitter` this does *not* update :attr:`scheduler` — the
        active policy label stays whatever the scheduler installed.
        """
        return _TeeEmitter(self.decisions, loop_name, "faults", obs)

    # -- derived views -------------------------------------------------------

    def executed_ranges(self) -> list[tuple[int, int, int]]:
        """Every executed ``(tid, lo, hi)`` in dispatch order."""
        return [
            (d.tid, d.granted[0], d.granted[1])
            for d in self.dispatches
            if d.granted is not None
        ]

    def decision_records(self, event: str | None = None) -> list[dict]:
        recs = self.decisions.records
        return recs if event is None else [r for r in recs if r["event"] == event]

    def fault_records(self, event: str | None = None) -> list[dict]:
        """Fault-engine records (``scheduler="faults"``), optionally
        filtered by event name."""
        recs = [
            r for r in self.decisions.records if r.get("scheduler") == "faults"
        ]
        return recs if event is None else [r for r in recs if r["event"] == event]

    @property
    def has_faults(self) -> bool:
        """True when any fault-engine record was logged — the signal the
        invariants use to switch to their under-fault relaxations."""
        return any(
            r.get("scheduler") == "faults" for r in self.decisions.records
        )
