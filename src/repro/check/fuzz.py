"""Deterministic schedule fuzzing with greedy shrinking.

``fuzz(cases, seed)`` derives one :class:`~repro.check.generators.FuzzCase`
per index from the seed (pure function — the same ``--cases/--seed``
always replays the same executions), runs each through the simulator
with a conformance recorder attached, and hands the observation to the
oracle. A failing case is shrunk to a minimal reproducer by greedily
re-running simplified variants (fewer iterations, smaller platform,
uniform costs, zero overhead) until no simplification still fails.

Runtime self-check aborts (the executor's own iteration-count assertion,
work-share errors) are caught and folded into the report — the take log
recorded up to the abort usually carries the actual evidence, e.g. the
overlapping grants behind an iteration-count mismatch.

Every simulator case also runs with a live observability bundle, and
:func:`obs_violations` validates the resulting snapshot: canonical-JSON
round-trip (no NaN/inf leaks), busy-window occupancy bounds, agreement
between the ``chunk_size`` sampler and the ``chunk_size_iters`` digest,
and merge self-consistency (one fold rebuilds the snapshot exactly, a
second fold exactly doubles it). A violation is folded into
``check.error`` like any other runtime abort, so the fuzzer shrinks it.

The bundle carries a span recorder too, so every case also checks the
causal span tree (:func:`repro.obs.spans.span_violations` — single
root, no cycles, chunk spans nested inside their phase/loop spans) and
the critical path (:func:`repro.obs.critpath.critpath_violations` —
per-category attribution telescopes exactly to the makespan).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.check.generators import (
    FuzzCase,
    case_costs,
    case_rng,
    generate_case,
    run_loop,
    simplified,
)
from repro.check.mutants import apply_mutant
from repro.check.oracle import ConformanceReport, verify_loop
from repro.check.recording import CheckContext
from repro.faults.model import plan_from_tuples
from repro.obs import Observability
from repro.sim.rng import stable_seed
from repro.tracing.trace import TraceRecorder


@dataclass
class CaseResult:
    """One fuzz-case execution with its oracle verdict."""

    case: FuzzCase
    report: ConformanceReport
    check: CheckContext
    trace: TraceRecorder

    @property
    def ok(self) -> bool:
        return self.report.ok

    def render(self) -> str:
        return (
            f"case: {self.case.describe()}\n"
            + self.report.render(self.trace)
        )


def obs_violations(metrics: dict) -> list[str]:
    """Invariant checks over one registry snapshot (empty list = clean).

    These are the properties the telemetry layer promises everywhere
    else (fleet shipping, snapshot diffing, trace export) and which a
    scheduling bug could silently corrupt:

    * the document serializes as strict canonical JSON (``allow_nan``
      off — a NaN rate or infinite span poisons every merge) and
      round-trips unchanged;
    * busy-mode windows never hold more busy time than ``window * norm``
      (a sampler overrun means overlapping execution spans);
    * the ``chunk_size`` sampler and the ``chunk_size_iters`` digest saw
      the same number of grants per instrument labels;
    * folding the snapshot into a fresh registry rebuilds it exactly,
      and folding it twice exactly doubles counters and digest counts
      (the fleet-merge determinism contract, jobs=1 vs jobs=N).
    """
    from repro.obs.merge import merge_metrics_into
    from repro.obs.registry import MetricsRegistry

    out: list[str] = []
    try:
        text = json.dumps(metrics, sort_keys=True, allow_nan=False)
    except ValueError as exc:
        return [f"obs: snapshot is not strict JSON: {exc}"]
    if json.loads(text) != metrics:
        out.append("obs: snapshot does not round-trip through JSON")

    eps = 1e-9
    for doc in metrics.get("timeseries", []):
        if doc.get("mode") != "busy":
            continue
        window = float(doc["window"])
        cap = window * float(doc.get("norm", 1.0))
        for idx, point in (doc.get("points") or {}).items():
            if point[0] > cap * (1.0 + eps) + eps:
                out.append(
                    f"obs: busy window overrun in {doc['name']}"
                    f"{doc.get('labels')}: window {idx} holds "
                    f"{point[0]!r}s > {cap!r}s capacity"
                )

    def _count_of(kind: str, name: str) -> dict[tuple, float]:
        counts: dict[tuple, float] = {}
        for doc in metrics.get(kind, []):
            if doc["name"] != name:
                continue
            key = tuple(sorted((doc.get("labels") or {}).items()))
            if kind == "timeseries":
                n = sum(p[1] for p in (doc.get("points") or {}).values())
            else:
                n = float(doc.get("count", 0))
            counts[key] = counts.get(key, 0.0) + n
        return counts

    sampler = _count_of("timeseries", "chunk_size")
    digest = _count_of("digests", "chunk_size_iters")
    if sampler != digest:
        out.append(
            f"obs: chunk_size sampler counts {sampler} disagree with "
            f"chunk_size_iters digest counts {digest}"
        )

    once = MetricsRegistry()
    merge_metrics_into(once, metrics)
    if json.dumps(once.snapshot(), sort_keys=True) != text:
        out.append("obs: merging the snapshot once does not rebuild it")
    twice = MetricsRegistry()
    merge_metrics_into(twice, metrics)
    merge_metrics_into(twice, metrics)
    doubled = twice.snapshot()
    for a, b in zip(metrics.get("counters", []), doubled.get("counters", [])):
        if abs(b["value"] - 2.0 * a["value"]) > 1e-9 * max(1.0, abs(a["value"])):
            out.append(
                f"obs: counter {a['name']}{a['labels']} does not double "
                f"under self-merge ({a['value']} -> {b['value']})"
            )
            break
    for a, b in zip(metrics.get("digests", []), doubled.get("digests", [])):
        if b.get("count") != 2 * a.get("count"):
            out.append(
                f"obs: digest {a['name']}{a['labels']} count does not "
                f"double under self-merge"
            )
            break
    return out


def run_case(case: FuzzCase, mutant: str | None = None) -> CaseResult:
    """Execute one case under full observation and run the oracle.

    Real cases (``case.real``) run on the thread team with the watchdog
    armed and the case's stall plan injected. Simulator cases with a
    fault plan first run a fault-free probe (same costs and jitter) to
    learn the baseline makespan, then scale the plan's fractional times
    onto it — a fault tuple at ``t0=0.5`` always lands mid-loop no
    matter how long the case runs.
    """
    if case.real:
        return _run_real_case(case, mutant)
    from repro.obs import SpanRecorder

    check = CheckContext()
    trace = TraceRecorder()
    obs = Observability(spans=SpanRecorder(context="fuzz"))
    faults_plan = None
    if case.faults:
        probe = run_loop(
            case.build_platform(),
            case.build_spec(),
            n_iterations=case.n_iterations,
            costs=case_costs(case),
            overhead=case.overhead_model(),
            n_threads=case.n_threads,
            rng=case_rng(case),
        )
        faults_plan = plan_from_tuples(case.faults).scaled(
            max(probe.duration, 1e-9)
        )
    with apply_mutant(mutant):
        try:
            run_loop(
                case.build_platform(),
                case.build_spec(),
                n_iterations=case.n_iterations,
                costs=case_costs(case),
                overhead=case.overhead_model(),
                n_threads=case.n_threads,
                trace=trace,
                check=check,
                rng=case_rng(case),
                faults=faults_plan,
                obs=obs,
            )
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            check.error = f"{type(exc).__name__}: {exc}"
    if check.error is None:
        bad = obs_violations(obs.registry.snapshot())
        if not bad:
            from repro.obs.critpath import critpath_violations
            from repro.obs.spans import span_violations

            span_doc = obs.spans.as_doc()
            bad = span_violations(span_doc) or critpath_violations(span_doc)
        if bad:
            check.error = "; ".join(bad)
    return CaseResult(case, verify_loop(check, trace), check, trace)


#: Per-iteration busy-sleep of the real-case loop body. Long enough that
#: a chunk is observable, short enough that a 24-iteration case is fast.
_REAL_BODY_SLEEP = 3e-4


def _run_real_case(case: FuzzCase, mutant: str | None) -> CaseResult:
    import time

    from repro.exec_real.team import ThreadTeam
    from repro.faults.model import FaultPlan

    check = CheckContext()
    trace = TraceRecorder()
    platform = case.build_platform()
    nt = case.n_threads if case.n_threads is not None else platform.n_cores
    stalls = plan_from_tuples(case.faults) if case.faults else FaultPlan()

    def body(tid: int, lo: int, hi: int) -> None:
        for _ in range(lo, hi):
            time.sleep(_REAL_BODY_SLEEP)

    with apply_mutant(mutant):
        try:
            team = ThreadTeam(nt, platform)
            team.parallel_for(
                case.n_iterations,
                body,
                case.build_spec(),
                check=check,
                watchdog_timeout=case.watchdog,
                stalls=stalls,
            )
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            check.error = f"{type(exc).__name__}: {exc}"
    return CaseResult(case, verify_loop(check, trace), check, trace)


def shrink(
    case: FuzzCase,
    fails: Callable[[FuzzCase], bool] | None = None,
    mutant: str | None = None,
    max_attempts: int = 200,
) -> FuzzCase:
    """Greedily minimize a failing case.

    Repeatedly tries the simplification candidates from
    :func:`repro.check.generators.simplified`, keeping the first that
    still fails, until a fixpoint (no candidate fails) — rounds matter
    because one shrink can unlock another (a smaller platform lowers the
    iteration count a bug needs).
    """
    if fails is None:
        fails = lambda c: not run_case(c, mutant=mutant).ok  # noqa: E731
    current = case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand in simplified(current):
            attempts += 1
            if attempts > max_attempts:
                break
            if fails(cand):
                current = cand
                improved = True
                break
    return current


@dataclass
class FuzzFailure:
    """A failing case and its shrunk reproducer."""

    case: FuzzCase
    shrunk: FuzzCase
    result: CaseResult  # oracle verdict for the shrunk reproducer

    def render(self) -> str:
        lines = [f"original: {self.case.describe()}"]
        if self.shrunk != self.case:
            lines.append(f"shrunk:   {self.shrunk.describe()}")
        lines.append(self.result.report.render(self.result.trace))
        return "\n".join(lines)


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign."""

    n_cases: int
    seed: int
    failures: list[FuzzFailure] = field(default_factory=list)
    mutant: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        tag = f" mutant={self.mutant}" if self.mutant else ""
        if self.ok:
            return (
                f"fuzz: {self.n_cases} cases, seed {self.seed}{tag} — "
                f"zero violations"
            )
        lines = [
            f"fuzz: {self.n_cases} cases, seed {self.seed}{tag} — "
            f"{len(self.failures)} failing case(s)"
        ]
        for i, f in enumerate(self.failures):
            lines.append(f"--- failure {i} (replay with seed={f.case.seed}) ---")
            lines.append(f.render())
        return "\n".join(lines)


def fuzz(
    cases: int,
    seed: int,
    variants: tuple[str, ...] | None = None,
    platforms: tuple[str, ...] | None = None,
    mutant: str | None = None,
    shrink_failures: bool = True,
    max_failures: int = 5,
    progress: Callable[[int, FuzzCase], None] | None = None,
    faults: str | None = None,
) -> FuzzResult:
    """Run a fuzzing campaign; stops early after ``max_failures``.

    Each case's sub-seed is ``stable_seed("fuzz", seed, index)`` — a
    failure report's seed therefore replays that exact case standalone
    via :func:`repro.check.generators.generate_case`. ``faults`` selects
    the fault-injection mode (``None``, ``"sim"`` or ``"stall"``; see
    :func:`repro.check.generators.generate_case`).
    """
    out = FuzzResult(n_cases=cases, seed=seed, mutant=mutant)
    for i in range(cases):
        case = generate_case(
            stable_seed("fuzz", seed, i), variants, platforms, faults=faults
        )
        if progress is not None:
            progress(i, case)
        result = run_case(case, mutant=mutant)
        if result.ok:
            continue
        shrunk = shrink(case, mutant=mutant) if shrink_failures else case
        out.failures.append(FuzzFailure(case, shrunk, run_case(shrunk, mutant=mutant)))
        if len(out.failures) >= max_failures:
            break
    return out
