"""Deterministic schedule fuzzing with greedy shrinking.

``fuzz(cases, seed)`` derives one :class:`~repro.check.generators.FuzzCase`
per index from the seed (pure function — the same ``--cases/--seed``
always replays the same executions), runs each through the simulator
with a conformance recorder attached, and hands the observation to the
oracle. A failing case is shrunk to a minimal reproducer by greedily
re-running simplified variants (fewer iterations, smaller platform,
uniform costs, zero overhead) until no simplification still fails.

Runtime self-check aborts (the executor's own iteration-count assertion,
work-share errors) are caught and folded into the report — the take log
recorded up to the abort usually carries the actual evidence, e.g. the
overlapping grants behind an iteration-count mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.check.generators import (
    FuzzCase,
    case_costs,
    case_rng,
    generate_case,
    run_loop,
    simplified,
)
from repro.check.mutants import apply_mutant
from repro.check.oracle import ConformanceReport, verify_loop
from repro.check.recording import CheckContext
from repro.faults.model import plan_from_tuples
from repro.sim.rng import stable_seed
from repro.tracing.trace import TraceRecorder


@dataclass
class CaseResult:
    """One fuzz-case execution with its oracle verdict."""

    case: FuzzCase
    report: ConformanceReport
    check: CheckContext
    trace: TraceRecorder

    @property
    def ok(self) -> bool:
        return self.report.ok

    def render(self) -> str:
        return (
            f"case: {self.case.describe()}\n"
            + self.report.render(self.trace)
        )


def run_case(case: FuzzCase, mutant: str | None = None) -> CaseResult:
    """Execute one case under full observation and run the oracle.

    Real cases (``case.real``) run on the thread team with the watchdog
    armed and the case's stall plan injected. Simulator cases with a
    fault plan first run a fault-free probe (same costs and jitter) to
    learn the baseline makespan, then scale the plan's fractional times
    onto it — a fault tuple at ``t0=0.5`` always lands mid-loop no
    matter how long the case runs.
    """
    if case.real:
        return _run_real_case(case, mutant)
    check = CheckContext()
    trace = TraceRecorder()
    faults_plan = None
    if case.faults:
        probe = run_loop(
            case.build_platform(),
            case.build_spec(),
            n_iterations=case.n_iterations,
            costs=case_costs(case),
            overhead=case.overhead_model(),
            n_threads=case.n_threads,
            rng=case_rng(case),
        )
        faults_plan = plan_from_tuples(case.faults).scaled(
            max(probe.duration, 1e-9)
        )
    with apply_mutant(mutant):
        try:
            run_loop(
                case.build_platform(),
                case.build_spec(),
                n_iterations=case.n_iterations,
                costs=case_costs(case),
                overhead=case.overhead_model(),
                n_threads=case.n_threads,
                trace=trace,
                check=check,
                rng=case_rng(case),
                faults=faults_plan,
            )
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            check.error = f"{type(exc).__name__}: {exc}"
    return CaseResult(case, verify_loop(check, trace), check, trace)


#: Per-iteration busy-sleep of the real-case loop body. Long enough that
#: a chunk is observable, short enough that a 24-iteration case is fast.
_REAL_BODY_SLEEP = 3e-4


def _run_real_case(case: FuzzCase, mutant: str | None) -> CaseResult:
    import time

    from repro.exec_real.team import ThreadTeam
    from repro.faults.model import FaultPlan

    check = CheckContext()
    trace = TraceRecorder()
    platform = case.build_platform()
    nt = case.n_threads if case.n_threads is not None else platform.n_cores
    stalls = plan_from_tuples(case.faults) if case.faults else FaultPlan()

    def body(tid: int, lo: int, hi: int) -> None:
        for _ in range(lo, hi):
            time.sleep(_REAL_BODY_SLEEP)

    with apply_mutant(mutant):
        try:
            team = ThreadTeam(nt, platform)
            team.parallel_for(
                case.n_iterations,
                body,
                case.build_spec(),
                check=check,
                watchdog_timeout=case.watchdog,
                stalls=stalls,
            )
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            check.error = f"{type(exc).__name__}: {exc}"
    return CaseResult(case, verify_loop(check, trace), check, trace)


def shrink(
    case: FuzzCase,
    fails: Callable[[FuzzCase], bool] | None = None,
    mutant: str | None = None,
    max_attempts: int = 200,
) -> FuzzCase:
    """Greedily minimize a failing case.

    Repeatedly tries the simplification candidates from
    :func:`repro.check.generators.simplified`, keeping the first that
    still fails, until a fixpoint (no candidate fails) — rounds matter
    because one shrink can unlock another (a smaller platform lowers the
    iteration count a bug needs).
    """
    if fails is None:
        fails = lambda c: not run_case(c, mutant=mutant).ok  # noqa: E731
    current = case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand in simplified(current):
            attempts += 1
            if attempts > max_attempts:
                break
            if fails(cand):
                current = cand
                improved = True
                break
    return current


@dataclass
class FuzzFailure:
    """A failing case and its shrunk reproducer."""

    case: FuzzCase
    shrunk: FuzzCase
    result: CaseResult  # oracle verdict for the shrunk reproducer

    def render(self) -> str:
        lines = [f"original: {self.case.describe()}"]
        if self.shrunk != self.case:
            lines.append(f"shrunk:   {self.shrunk.describe()}")
        lines.append(self.result.report.render(self.result.trace))
        return "\n".join(lines)


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign."""

    n_cases: int
    seed: int
    failures: list[FuzzFailure] = field(default_factory=list)
    mutant: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        tag = f" mutant={self.mutant}" if self.mutant else ""
        if self.ok:
            return (
                f"fuzz: {self.n_cases} cases, seed {self.seed}{tag} — "
                f"zero violations"
            )
        lines = [
            f"fuzz: {self.n_cases} cases, seed {self.seed}{tag} — "
            f"{len(self.failures)} failing case(s)"
        ]
        for i, f in enumerate(self.failures):
            lines.append(f"--- failure {i} (replay with seed={f.case.seed}) ---")
            lines.append(f.render())
        return "\n".join(lines)


def fuzz(
    cases: int,
    seed: int,
    variants: tuple[str, ...] | None = None,
    platforms: tuple[str, ...] | None = None,
    mutant: str | None = None,
    shrink_failures: bool = True,
    max_failures: int = 5,
    progress: Callable[[int, FuzzCase], None] | None = None,
    faults: str | None = None,
) -> FuzzResult:
    """Run a fuzzing campaign; stops early after ``max_failures``.

    Each case's sub-seed is ``stable_seed("fuzz", seed, index)`` — a
    failure report's seed therefore replays that exact case standalone
    via :func:`repro.check.generators.generate_case`. ``faults`` selects
    the fault-injection mode (``None``, ``"sim"`` or ``"stall"``; see
    :func:`repro.check.generators.generate_case`).
    """
    out = FuzzResult(n_cases=cases, seed=seed, mutant=mutant)
    for i in range(cases):
        case = generate_case(
            stable_seed("fuzz", seed, i), variants, platforms, faults=faults
        )
        if progress is not None:
            progress(i, case)
        result = run_case(case, mutant=mutant)
        if result.ok:
            continue
        shrunk = shrink(case, mutant=mutant) if shrink_failures else case
        out.failures.append(FuzzFailure(case, shrunk, run_case(shrunk, mutant=mutant)))
        if len(out.failures) >= max_failures:
            break
    return out
