"""``python -m repro.check`` — the conformance-oracle command line.

Subcommands:

* ``fuzz`` — deterministic fuzzing campaign over the AID variants
  (CI acceptance: ``fuzz --cases 200 --seed 1`` must report zero
  violations on both platform presets);
* ``backends`` — differential fuzzing of the vectorized execution
  backend against the reference simulator: every case must produce a
  byte-identical decision log and loop result (CI acceptance:
  ``backends --cases 200`` with and without ``--faults sim``);
* ``verify`` — structural validation of an on-disk result payload
  (obs snapshot or experiment grid JSON);
* ``diff`` — differential run of one loop through every variant plus
  the brute-force reference, with analytic makespan bounds;
* ``mutant`` — inject a known scheduler bug and assert the oracle
  catches it with a small shrunk reproducer (the CI smoke that proves
  the oracle has teeth);
* ``golden`` — check or regenerate the per-variant golden decision
  logs under ``tests/golden/``.

Exit status is 0 iff every requested check passed.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.check import differential
from repro.check import golden as golden_mod
from repro.check.fuzz import FuzzResult, fuzz as run_fuzz
from repro.check.generators import DEFAULT_VARIANTS, FuzzCase
from repro.check.mutants import MUTANTS
from repro.check.oracle import verify_payload

#: Platform pool for the acceptance fuzz run (both paper testbeds).
DEFAULT_FUZZ_PLATFORMS = ("odroid_xu4", "xeon_emulated")

#: Ceiling on the shrunk reproducer size the mutant smoke accepts — a
#: larger minimum means the shrinker regressed.
MUTANT_MAX_SHRUNK_NI = 8


def _failure_artifact(result: FuzzResult) -> dict:
    """JSON-serializable record of a campaign's shrunk counterexamples."""
    return {
        "schema": "repro.check.counterexamples/v1",
        "seed": result.seed,
        "n_cases": result.n_cases,
        "mutant": result.mutant,
        "failures": [
            {
                "case": dataclasses.asdict(f.case),
                "shrunk": dataclasses.asdict(f.shrunk),
                "violations": [
                    dataclasses.asdict(v) for v in f.result.report.violations
                ],
                "error": f.result.report.error,
            }
            for f in result.failures
        ],
    }


def _cmd_fuzz(args: argparse.Namespace) -> int:
    variants = tuple(args.variant) if args.variant else None
    platforms = tuple(args.platform) if args.platform else DEFAULT_FUZZ_PLATFORMS

    def progress(i: int, case: FuzzCase) -> None:
        if args.progress and i % 25 == 0:
            print(f"[{i}/{args.cases}] {case.describe()}", file=sys.stderr)

    result = run_fuzz(
        args.cases,
        args.seed,
        variants=variants,
        platforms=platforms,
        mutant=args.mutant,
        shrink_failures=not args.no_shrink,
        max_failures=args.max_failures,
        progress=progress,
        faults=args.faults,
    )
    print(result.render())
    if args.out and not result.ok:
        Path(args.out).write_text(
            json.dumps(_failure_artifact(result), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        print(f"counterexamples written to {args.out}")
    return 0 if result.ok else 1


def _backend_diff_artifact(result) -> dict:
    """JSON-serializable record of a diff campaign's counterexamples."""
    return {
        "schema": "repro.check.backend_diff/v1",
        "seed": result.seed,
        "n_cases": result.n_cases,
        "backends": list(result.backends),
        "failures": [
            {
                "case": dataclasses.asdict(f.case),
                "shrunk": dataclasses.asdict(f.shrunk),
                "field": f.mismatch.field_name,
                "detail": f.mismatch.detail,
            }
            for f in result.failures
        ],
    }


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.check.backend_diff import DEFAULT_BACKENDS, diff_fuzz

    backends = (
        tuple(args.backend) if args.backend else DEFAULT_BACKENDS
    )
    if len(backends) < 2:
        print("need at least two backends to diff", file=sys.stderr)
        return 2

    def progress(i: int, case: FuzzCase) -> None:
        if args.progress and i % 25 == 0:
            print(f"[{i}/{args.cases}] {case.describe()}", file=sys.stderr)

    result = diff_fuzz(
        args.cases,
        args.seed,
        backends=backends,
        variants=tuple(args.variant) if args.variant else None,
        platforms=tuple(args.platform) if args.platform else None,
        faults=args.faults,
        shrink_failures=not args.no_shrink,
        max_failures=args.max_failures,
        progress=progress,
    )
    print(result.render())
    if args.out and not result.ok:
        Path(args.out).write_text(
            json.dumps(
                _backend_diff_artifact(result), indent=2, sort_keys=True
            ),
            encoding="utf-8",
        )
        print(f"counterexamples written to {args.out}")
    return 0 if result.ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    try:
        payload = json.loads(Path(args.payload).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read payload {args.payload}: {exc}")
        return 2
    report = verify_payload(payload)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    variants = tuple(args.variant) if args.variant else DEFAULT_VARIANTS
    report = differential.run_differential(
        platform=args.platform,
        n_iterations=args.iterations,
        variants=variants,
        seed=args.seed,
        include_real=not args.no_real,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_mutant(args: argparse.Namespace) -> int:
    """Prove the oracle detects a planted bug, with a small reproducer."""
    variants = tuple(args.variant) if args.variant else ("aid_dynamic",)
    # The watchdog mutant lives in the real-thread executor: it needs
    # real stall cases, which only the "stall" fault mode generates.
    faults = args.faults
    if faults is None and args.name == "watchdog-stall-blind":
        faults = "stall"
    result = run_fuzz(
        args.cases,
        args.seed,
        variants=variants,
        mutant=args.name,
        max_failures=1,
        faults=faults,
    )
    if result.ok:
        print(
            f"mutant {args.name!r} NOT detected in {args.cases} cases — "
            f"the oracle is blind to this bug class"
        )
        return 1
    failure = result.failures[0]
    print(f"mutant {args.name!r} detected:")
    print(failure.render())
    ni = failure.shrunk.n_iterations
    if ni > args.max_shrunk_ni:
        print(
            f"shrunk reproducer has ni={ni} > {args.max_shrunk_ni} — "
            f"shrinking regressed"
        )
        return 1
    print(f"shrunk reproducer: ni={ni} (<= {args.max_shrunk_ni})")
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    directory = Path(args.dir)
    if args.update:
        for path in golden_mod.update_golden(directory):
            print(f"wrote {path}")
        return 0
    problems = golden_mod.check_golden(directory)
    if not problems:
        print(
            f"golden: all {len(golden_mod.GOLDEN_VARIANTS)} decision logs "
            f"match {directory}"
        )
        return 0
    for key, rendered in sorted(problems.items()):
        print(rendered)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Schedule-conformance oracle: fuzz, verify, diff, "
        "mutant smoke and golden decision logs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fuzz", help="run a deterministic fuzzing campaign")
    p.add_argument("--cases", type=int, default=200)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--variant",
        action="append",
        help="restrict the schedule pool (repeatable)",
    )
    p.add_argument(
        "--platform",
        action="append",
        help=f"platform pool (repeatable; default {DEFAULT_FUZZ_PLATFORMS})",
    )
    p.add_argument("--mutant", choices=sorted(MUTANTS), default=None)
    p.add_argument(
        "--faults",
        choices=("sim", "stall"),
        default=None,
        help="fault-injection mode: seeded random plans on simulator "
        "cases (sim) or real-thread stall cases with the watchdog armed "
        "(stall)",
    )
    p.add_argument("--no-shrink", action="store_true")
    p.add_argument("--max-failures", type=int, default=5)
    p.add_argument(
        "--out", help="write shrunk counterexamples as JSON on failure"
    )
    p.add_argument("--progress", action="store_true")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "backends",
        help="differential fuzz: vectorized backend vs the reference "
        "simulator, byte for byte",
    )
    p.add_argument("--cases", type=int, default=200)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--backend",
        action="append",
        help="backends to compare, first is the baseline (repeatable; "
        "default: reference, vectorized)",
    )
    p.add_argument(
        "--variant",
        action="append",
        help="restrict the schedule pool (repeatable; default covers "
        "static/dynamic/guided plus the five AID variants)",
    )
    p.add_argument(
        "--platform",
        action="append",
        help="platform pool (repeatable; default: the fuzzer's mixed "
        "preset + synthetic pool)",
    )
    p.add_argument(
        "--faults",
        choices=("sim",),
        default=None,
        help="ride a seeded random fault plan on every case (exercises "
        "the vectorized backend's reference-delegation path)",
    )
    p.add_argument("--no-shrink", action="store_true")
    p.add_argument("--max-failures", type=int, default=5)
    p.add_argument(
        "--out", help="write shrunk counterexamples as JSON on failure"
    )
    p.add_argument("--progress", action="store_true")
    p.set_defaults(func=_cmd_backends)

    p = sub.add_parser("verify", help="validate an on-disk result payload")
    p.add_argument("payload", help="snapshot or grid JSON file")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "diff", help="differential run across every AID variant"
    )
    p.add_argument("--platform", default="odroid_xu4")
    p.add_argument("--iterations", type=int, default=128)
    p.add_argument("--variant", action="append")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--no-real", action="store_true", help="skip the real-thread executor"
    )
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "mutant", help="assert the oracle detects a planted bug"
    )
    p.add_argument(
        "--name",
        choices=sorted(MUTANTS),
        default="aid-dynamic-chunk-decrement",
    )
    p.add_argument("--cases", type=int, default=25)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--variant",
        action="append",
        help="schedule pool for the campaign (default: aid_dynamic)",
    )
    p.add_argument(
        "--faults",
        choices=("sim", "stall"),
        default=None,
        help="fault mode for the campaign (watchdog-stall-blind "
        "defaults to stall)",
    )
    p.add_argument(
        "--max-shrunk-ni", type=int, default=MUTANT_MAX_SHRUNK_NI
    )
    p.set_defaults(func=_cmd_mutant)

    p = sub.add_parser(
        "golden", help="check or regenerate golden decision logs"
    )
    p.add_argument("--dir", default="tests/golden")
    p.add_argument(
        "--update", action="store_true", help="rewrite the golden files"
    )
    p.set_defaults(func=_cmd_golden)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
