"""Golden decision-log regression fixtures.

One canonical run per AID variant — ``odroid_xu4()``, 64 iterations of a
linear cost ramp, default overheads, no wake jitter — produces a
deterministic scheduler decision log. The logs are committed under
``tests/golden/`` as JSONL; the regression test replays the runs and
compares byte-for-byte, so *any* change to a scheduler's decision
sequence fails loudly with a rendered divergence instead of silently
shifting Figs. 6/7-style results.

Determinism notes: the ramp is a pure ``linspace`` (no RNG, so no
numpy-version drift), the executor runs with ``rng=None`` (no wake
jitter) and all arithmetic is plain IEEE doubles — the JSONL is
reproducible across machines. Regenerate deliberately with::

    python -m repro.check golden --update
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.check.generators import preset_platform, run_loop
from repro.check.recording import CheckContext
from repro.perfmodel.overhead import OverheadModel
from repro.sched.registry import parse_schedule
from repro.workloads.costmodels import RampCost

#: file-stem -> schedule string. Keep in sync with tests/golden/*.jsonl.
GOLDEN_VARIANTS: dict[str, str] = {
    "aid_static": "aid_static",
    "aid_hybrid_80": "aid_hybrid,80",
    "aid_dynamic_1_5": "aid_dynamic,1,5",
    "aid_auto_1_5": "aid_auto,1,5",
    "aid_steal_8": "aid_steal,8",
}

#: Canonical workload: enough iterations for every variant to pass
#: through its full state machine (sampling, publication, drain/phases/
#: steals) on the 4+4 odroid preset, small enough to diff by eye.
GOLDEN_N_ITERATIONS = 64
_GOLDEN_COST = RampCost(5e-5, 2e-4)


def run_golden(key: str) -> CheckContext:
    """Execute one golden case and return its recorded observation."""
    schedule = GOLDEN_VARIANTS[key]
    platform = preset_platform("odroid_xu4")
    costs = _GOLDEN_COST.generate(GOLDEN_N_ITERATIONS, rng=None)
    check = CheckContext()
    run_loop(
        platform,
        parse_schedule(schedule),
        n_iterations=GOLDEN_N_ITERATIONS,
        costs=costs,
        overhead=OverheadModel(),
        check=check,
        rng=None,
    )
    return check


def golden_jsonl(key: str) -> str:
    """The canonical decision-log serialization for one variant."""
    return run_golden(key).decisions.to_jsonl()


def digest(text: str) -> str:
    """Digest used to name a decision-log revision in messages."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def render_divergence(key: str, expected: str, actual: str) -> str:
    """Oracle-style rendering of the first decision-log divergence."""
    exp_lines = expected.splitlines()
    act_lines = actual.splitlines()
    idx = next(
        (
            i
            for i, (a, b) in enumerate(zip(exp_lines, act_lines))
            if a != b
        ),
        min(len(exp_lines), len(act_lines)),
    )
    lines = [
        f"golden decision log for {key!r} diverged "
        f"(expected digest {digest(expected)}, got {digest(actual)})",
        f"first divergence at record {idx} "
        f"({len(exp_lines)} expected records, {len(act_lines)} actual):",
    ]
    for label, src in (("expected", exp_lines), ("actual  ", act_lines)):
        for i in range(max(0, idx - 1), min(len(src), idx + 2)):
            rec = json.loads(src[i])
            marker = ">>" if i == idx else "  "
            lines.append(
                f"{marker} {label} #{i}: tid={rec['tid']} t={rec['t']:.3e} "
                f"{rec['event']}"
                + (f" range={rec['range']}" if "range" in rec else "")
            )
    lines.append(
        "if the schedule change is intentional, regenerate with: "
        "python -m repro.check golden --update"
    )
    return "\n".join(lines)


def check_golden(directory: str | Path) -> dict[str, str]:
    """Compare every golden file against a fresh run.

    Returns a map of diverging keys to rendered divergence reports
    (empty = all match). Missing files count as divergences.
    """
    directory = Path(directory)
    problems: dict[str, str] = {}
    for key in GOLDEN_VARIANTS:
        path = directory / f"{key}.jsonl"
        actual = golden_jsonl(key)
        if not path.exists():
            problems[key] = f"golden file {path} missing; run --update"
            continue
        expected = path.read_text(encoding="utf-8")
        if expected != actual:
            problems[key] = render_divergence(key, expected, actual)
    return problems


def update_golden(directory: str | Path) -> list[str]:
    """(Re)write every golden file; returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for key in GOLDEN_VARIANTS:
        path = directory / f"{key}.jsonl"
        path.write_text(golden_jsonl(key), encoding="utf-8")
        written.append(str(path))
    return written
