"""Differential validation: one loop, every AID variant, plus references.

The same (loop, platform) instance runs through all five AID variants on
the simulator, through the real-thread executor, and through a
brute-force list-scheduling reference. Cross-checks:

* each execution passes the invariant oracle (exact-once coverage is the
  work-conservation check: every variant completes the identical
  iteration set ``[0, NI)``);
* simulated makespans respect analytic sanity bounds for zero-overhead
  work-conserving schedules:

      max(total/sum(rates), max_cost/max(rate))  <=  makespan
      makespan  <=  total/min(rate)

  — no schedule finishes faster than the critical path or perfect
  rate-proportional balance, and none slower than "one slowest core does
  everything";
* the greedy reference makespan is reported alongside for context (it is
  a heuristic, not a bound, so it is not asserted against).

Differential runs use zero overhead and disabled locality so the bounds
are tight and exact; the fuzzer covers the noisy regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amp.platform import Platform
from repro.amp.topology import bs_mapping
from repro.check.generators import (
    DEFAULT_VARIANTS,
    PLAIN_KERNEL,
    preset_platform,
    run_loop,
)
from repro.check.oracle import ConformanceReport, verify_loop
from repro.check.recording import CheckContext
from repro.errors import ReproError
from repro.exec_real.team import ThreadTeam
from repro.perfmodel.speed import PerfModel
from repro.runtime.team import Team
from repro.sched.registry import parse_schedule
from repro.sim.rng import stable_seed
from repro.tracing.trace import TraceRecorder
from repro.workloads.costmodels import CostModel, UniformCost

#: Relative tolerance on the analytic makespan bounds (DES float noise).
_REL_EPS = 1e-9


def team_rates(platform: Platform, n_threads: int | None = None) -> list[float]:
    """Per-TID execution rates for the plain kernel on a BS-mapped team."""
    team = Team(platform, bs_mapping(platform, n_threads))
    perf = PerfModel(platform)
    cpus = tuple(team.mapping.cpu_of_tid)
    return [
        perf.rate(team.cpu_of(tid), PLAIN_KERNEL, cpus)
        for tid in range(team.n_threads)
    ]


def makespan_bounds(
    costs: np.ndarray, rates: list[float]
) -> tuple[float, float]:
    """``(lower, upper)`` for any zero-overhead work-conserving schedule."""
    total = float(np.sum(costs))
    lower = max(total / sum(rates), float(np.max(costs)) / max(rates))
    upper = total / min(rates)
    return lower, upper


def reference_schedule(
    costs: np.ndarray, rates: list[float]
) -> dict:
    """Brute-force list-scheduling reference executor.

    Assigns each iteration, in index order, to the worker that would
    finish it earliest — the textbook greedy on uniform machines. Not
    optimal, but a transparent few-line executor that shares no code
    with the runtime under test.

    Returns:
        dict with ``makespan``, per-tid ``finish_times`` and
        ``iterations`` counts.
    """
    nt = len(rates)
    avail = [0.0] * nt
    iters = [0] * nt
    for c in np.asarray(costs, dtype=float):
        finish = [avail[t] + c / rates[t] for t in range(nt)]
        tid = min(range(nt), key=lambda t: (finish[t], t))
        avail[tid] = finish[tid]
        iters[tid] += 1
    return {
        "makespan": max(avail),
        "finish_times": avail,
        "iterations": iters,
    }


@dataclass
class DiffEntry:
    """One executor run inside a differential comparison."""

    variant: str
    mode: str  # "sim" or "real"
    makespan: float | None
    report: ConformanceReport
    bounds_ok: bool = True
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.report.ok and self.bounds_ok and self.error is None


@dataclass
class DifferentialReport:
    """Cross-variant comparison for one (loop, platform)."""

    platform: str
    n_iterations: int
    bounds: tuple[float, float]
    reference_makespan: float
    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    def render(self) -> str:
        lo, hi = self.bounds
        lines = [
            f"differential: platform={self.platform} ni={self.n_iterations} "
            f"bounds=[{lo:.3e}, {hi:.3e}] reference={self.reference_makespan:.3e}"
        ]
        for e in self.entries:
            span = "-" if e.makespan is None else f"{e.makespan:.3e}"
            status = "ok" if e.ok else "FAIL"
            lines.append(f"  {e.mode:4s} {e.variant:22s} makespan={span} {status}")
            if not e.ok:
                if e.error:
                    lines.append(f"       error: {e.error}")
                if not e.bounds_ok:
                    lines.append("       makespan outside analytic bounds")
                for v in e.report.violations:
                    lines.append(f"       {v.render()}")
        return "\n".join(lines)


def run_differential(
    platform: str | Platform = "odroid_xu4",
    n_iterations: int = 128,
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    cost: CostModel | None = None,
    n_threads: int | None = None,
    seed: int = 0,
    include_real: bool = True,
) -> DifferentialReport:
    """Run one loop through every variant and cross-check the schedules.

    ``cost`` defaults to uniform work; the cost vector is sampled once
    (deterministically in ``seed``) and shared by every executor, so the
    comparison is over schedules, not workloads.
    """
    plat = preset_platform(platform) if isinstance(platform, str) else platform
    name = platform if isinstance(platform, str) else plat.name
    model = cost if cost is not None else UniformCost(1e-4)
    rng = np.random.default_rng(stable_seed("check.diff", seed))
    costs = model.generate(n_iterations, rng)
    rates = team_rates(plat, n_threads)
    lower, upper = makespan_bounds(costs, rates)
    ref = reference_schedule(costs, rates)

    out = DifferentialReport(
        platform=name,
        n_iterations=n_iterations,
        bounds=(lower, upper),
        reference_makespan=ref["makespan"],
    )
    for variant in variants:
        spec = parse_schedule(variant)
        check = CheckContext()
        trace = TraceRecorder()
        makespan: float | None = None
        error: str | None = None
        try:
            result = run_loop(
                plat,
                spec,
                n_iterations=n_iterations,
                costs=costs,
                n_threads=n_threads,
                trace=trace,
                check=check,
            )
            makespan = result.duration
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
            check.error = check.error or error
        report = verify_loop(check, trace)
        bounds_ok = makespan is None or (
            makespan >= lower * (1.0 - _REL_EPS)
            and makespan <= upper * (1.0 + _REL_EPS)
        )
        out.entries.append(
            DiffEntry(variant, "sim", makespan, report, bounds_ok, error)
        )
        if include_real:
            out.entries.append(
                _run_real(plat, variant, n_iterations, n_threads)
            )
    return out


def _run_real(
    platform: Platform,
    variant: str,
    n_iterations: int,
    n_threads: int | None,
) -> DiffEntry:
    """Same schedule through the real-thread executor (no-op bodies)."""
    spec = parse_schedule(variant)
    check = CheckContext()
    nt = n_threads if n_threads is not None else platform.n_cores
    error: str | None = None
    try:
        team = ThreadTeam(nt, platform)
        team.parallel_for(
            n_iterations, lambda tid, lo, hi: None, spec, check=check
        )
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
        check.error = check.error or error
    report = verify_loop(check)
    return DiffEntry(variant, "real", None, report, True, error)
