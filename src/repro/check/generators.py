"""Seeded factories for loops, platforms and fuzz cases.

One place builds every synthetic workload the conformance layer (and the
unit-test suite, which imports from here via ``tests/helpers.py``) runs:
loop specs over the repo's cost models, platform presets plus a
parameterized synthetic AMP, and :class:`FuzzCase` — a fully
value-typed, JSON-printable description of one fuzzer execution. Being
value-typed is what makes shrinking trivial: a candidate reproducer is
just a ``dataclasses.replace`` away.

Everything is deterministic in explicit seeds through
:func:`repro.sim.rng.stable_seed`; no call here touches global RNG
state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.amp.platform import Platform
from repro.amp.presets import (
    dual_speed_platform,
    odroid_xu4,
    tri_type_platform,
    xeon_emulated,
)
from repro.amp.topology import bs_mapping
from repro.errors import ConfigError
from repro.perfmodel.kernel import KernelProfile
from repro.perfmodel.locality import LocalityModel
from repro.perfmodel.overhead import ZERO_OVERHEAD, OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.executor import LoopExecutor, LoopResult
from repro.runtime.team import Team
from repro.sched.base import ScheduleSpec
from repro.sched.registry import parse_schedule
from repro.sim.rng import stable_seed
from repro.workloads.costmodels import (
    BimodalCost,
    CostModel,
    JitteredCost,
    LognormalCost,
    RampCost,
    UniformCost,
)
from repro.workloads.loopspec import LoopSpec

#: A bland kernel: compute-ish, tiny working set, identical everywhere.
PLAIN_KERNEL = KernelProfile(
    name="test-plain", compute_weight=1.0, ilp=0.0, working_set_mb=0.0
)

#: The five AID variants the oracle acceptance run covers.
DEFAULT_VARIANTS = (
    "aid_static",
    "aid_hybrid,80",
    "aid_dynamic,1,5",
    "aid_auto,1,5",
    "aid_steal,8",
)

#: Platform presets by name (see :func:`preset_platform` for the
#: ``dual:ns:nb[:speedup]`` synthetic family).
_PRESETS = {
    "odroid_xu4": odroid_xu4,
    "xeon_emulated": xeon_emulated,
    "tri": tri_type_platform,
}


def preset_platform(name: str) -> Platform:
    """Build a platform from its fuzz-case string.

    Accepts the preset names ``odroid_xu4``, ``xeon_emulated`` and
    ``tri``, plus the synthetic family ``dual:<n_small>:<n_big>[:<speedup>]``
    (flat-speedup two-type AMP — the shrinker's favourite target because
    ``dual:1:1`` is the smallest platform any asymmetric bug can live on).
    """
    if name in _PRESETS:
        return _PRESETS[name]()
    if name.startswith("dual:"):
        parts = name.split(":")[1:]
        if len(parts) not in (2, 3):
            raise ConfigError(f"bad synthetic platform spec {name!r}")
        n_small, n_big = int(parts[0]), int(parts[1])
        speedup = float(parts[2]) if len(parts) == 3 else 2.0
        return dual_speed_platform(n_small, n_big, big_speedup=speedup)
    raise ConfigError(
        f"unknown platform {name!r}; valid: {sorted(_PRESETS)} or dual:ns:nb[:sp]"
    )


def make_loop(
    n_iterations: int,
    work: float = 1e-4,
    kernel: KernelProfile = PLAIN_KERNEL,
    cost: CostModel | None = None,
    name: str | None = None,
) -> LoopSpec:
    """A loop spec with uniform (or caller-supplied) per-iteration cost."""
    return LoopSpec(
        name=name if name is not None else f"test.loop{n_iterations}",
        n_iterations=n_iterations,
        cost=cost if cost is not None else UniformCost(work),
        kernel=kernel,
    )


def run_loop(
    platform: Platform,
    spec: ScheduleSpec,
    n_iterations: int = 256,
    costs: np.ndarray | None = None,
    work: float = 1e-4,
    overhead: OverheadModel | None = None,
    n_threads: int | None = None,
    offline_sf=None,
    kernel: KernelProfile = PLAIN_KERNEL,
    trace=None,
    obs=None,
    check=None,
    rng: np.random.Generator | None = None,
    faults=None,
    backend=None,
) -> LoopResult:
    """Run one loop on the simulator and return its result.

    The shared test/fuzz driver: BS-mapped team, flat locality, zero
    overhead unless told otherwise, optional trace recorder, conformance
    recorder and fault plan (absolute virtual seconds; ``None`` or an
    empty plan is a strict no-op). ``backend`` selects the execution
    backend by name (``None`` = environment override, then reference).
    """
    team = Team(platform, bs_mapping(platform, n_threads))
    loop = make_loop(n_iterations, work, kernel)
    if costs is None:
        costs = np.full(n_iterations, work)
    executor = LoopExecutor(
        team,
        PerfModel(platform),
        overhead if overhead is not None else ZERO_OVERHEAD,
        recorder=trace,
        locality=LocalityModel(enabled=False),
        obs=obs,
        backend=backend,
    )
    return executor.run(
        loop, costs, spec, offline_sf=offline_sf, check=check, rng=rng,
        faults=faults,
    )


# -- fuzz cases ---------------------------------------------------------------

#: Cost-model kinds a fuzz case may carry, with their parameter tuples.
COST_KINDS = ("uniform", "jittered", "ramp", "lognormal", "bimodal")


@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined fuzzer execution.

    Every field is a printable value type, so a failing case *is* its own
    reproducer: feed the same ``FuzzCase`` back through
    :func:`repro.check.fuzz.run_case` and the identical schedule plays
    out.

    Attributes:
        seed: drives cost sampling and wake jitter (stable-hashed with
            distinct stream tags; see :func:`case_costs`).
        schedule: ``OMP_SCHEDULE``-style string (``aid_dynamic,1,5``...).
        platform: platform string for :func:`preset_platform`.
        n_iterations: loop trip count.
        n_threads: team size; ``None`` uses every core.
        cost: ``(kind, *params)`` tuple, kind from :data:`COST_KINDS`.
        overhead_scale: multiplier on the default overhead model;
            0 means :data:`~repro.perfmodel.overhead.ZERO_OVERHEAD`.
        faults: fault events as :func:`repro.faults.model.plan_from_tuples`
            tuples. For simulator cases the times are *fractions of the
            fault-free makespan* (``run_case`` probes the baseline and
            scales the plan); for real cases they are seconds from loop
            start. Empty means no fault injection at all.
        real: run on the real-thread executor instead of the simulator
            (the watchdog lives there; only stall faults apply).
        watchdog: real-executor watchdog timeout in seconds, or ``None``.
    """

    seed: int
    schedule: str
    platform: str
    n_iterations: int
    n_threads: int | None = None
    cost: tuple = ("uniform", 1e-4)
    overhead_scale: float = 1.0
    faults: tuple = ()
    real: bool = False
    watchdog: float | None = None

    def describe(self) -> str:
        nt = "all" if self.n_threads is None else str(self.n_threads)
        cost = ",".join(str(c) for c in self.cost)
        base = (
            f"seed={self.seed} schedule={self.schedule} "
            f"platform={self.platform} ni={self.n_iterations} nt={nt} "
            f"cost={cost} ovh={self.overhead_scale:g}"
        )
        if self.faults:
            base += f" faults={len(self.faults)}"
        if self.real:
            base += " real"
        if self.watchdog is not None:
            base += f" watchdog={self.watchdog:g}"
        return base

    def cost_model(self) -> CostModel:
        kind, *params = self.cost
        if kind == "uniform":
            return UniformCost(*params)
        if kind == "jittered":
            return JitteredCost(*params)
        if kind == "ramp":
            return RampCost(*params)
        if kind == "lognormal":
            return LognormalCost(*params)
        if kind == "bimodal":
            return BimodalCost(*params)
        raise ConfigError(f"unknown cost kind {kind!r}")

    def build_platform(self) -> Platform:
        return preset_platform(self.platform)

    def build_spec(self) -> ScheduleSpec:
        return parse_schedule(self.schedule)

    def overhead_model(self) -> OverheadModel:
        if self.overhead_scale == 0.0:
            return ZERO_OVERHEAD
        return OverheadModel().scaled(self.overhead_scale)


def case_costs(case: FuzzCase) -> np.ndarray:
    """The case's per-iteration cost vector (deterministic in its seed)."""
    rng = np.random.default_rng(stable_seed("check", case.seed, "costs"))
    return case.cost_model().generate(case.n_iterations, rng)


def case_rng(case: FuzzCase) -> np.random.Generator:
    """The wake-jitter stream for one case execution."""
    return np.random.default_rng(stable_seed("check", case.seed, "jitter"))


def _gen_cost(rng: np.random.Generator) -> tuple:
    kind = COST_KINDS[int(rng.integers(len(COST_KINDS)))]
    w = float(rng.choice([1e-5, 1e-4, 1e-3]))
    if kind == "uniform":
        return (kind, w)
    if kind == "jittered":
        return (kind, w, float(rng.uniform(0.0, 0.4)), float(rng.uniform(-0.5, 0.5)))
    if kind == "ramp":
        return (kind, w, w * float(rng.uniform(1.0, 8.0)))
    if kind == "lognormal":
        return (kind, w, float(rng.uniform(0.2, 1.2)))
    return (kind, w, w * float(rng.uniform(2.0, 16.0)), float(rng.uniform(0.05, 0.5)))


def _gen_schedule(rng: np.random.Generator, variants) -> str:
    base = variants[int(rng.integers(len(variants)))]
    kind = base.split(",")[0]
    # Re-roll the parameters so the pool covers the chunk space, not just
    # the default configurations.
    if kind == "aid_static":
        return f"aid_static,{int(rng.integers(1, 4))}"
    if kind == "aid_hybrid":
        return f"aid_hybrid,{int(rng.choice([50, 60, 80, 90, 95]))}"
    if kind in ("aid_dynamic", "aid_auto"):
        m = int(rng.integers(1, 3))
        big = m + int(rng.integers(0, 8))
        return f"{kind},{m},{big}"
    if kind == "aid_steal":
        return f"aid_steal,{int(rng.choice([1, 2, 4, 8, 16]))}"
    return base


def generate_case(
    seed: int,
    variants: tuple[str, ...] | None = None,
    platforms: tuple[str, ...] | None = None,
    faults: str | None = None,
) -> FuzzCase:
    """Derive one fuzz case from a seed (pure function of its inputs).

    ``variants`` restricts the schedule pool to the given base kinds
    (parameters are still randomized); ``platforms`` restricts the
    platform pool. ``faults`` selects a fault-injection mode: ``None``
    (no faults, byte-identical to the pre-fault generator), ``"sim"``
    (a seeded random fault plan riding on a simulator case; the extra
    randomness is drawn *after* every fault-free field so the underlying
    case matches its fault-free twin), or ``"stall"`` (a real-thread
    case stalling every worker's first chunk under an armed watchdog).
    """
    variants = tuple(variants) if variants else DEFAULT_VARIANTS
    if platforms:
        pool = tuple(platforms)
    else:
        pool = (
            "odroid_xu4",
            "xeon_emulated",
            "tri",
            "dual:2:2",
            "dual:1:3:4",
            "dual:3:1:1.5",
        )
    rng = np.random.default_rng(stable_seed("check.fuzz", seed))
    platform_name = pool[int(rng.integers(len(pool)))]
    platform = preset_platform(platform_name)
    # Skew small: shrinking is cheap but starting small finds boundary
    # bugs (NI < NT, NI == sampling takes) without any shrinking at all.
    magnitude = int(rng.integers(0, 3))
    ni = int(rng.integers(1, (8, 64, 512)[magnitude]))
    n_threads: int | None = None
    if platform.n_cores > 2 and rng.random() < 0.4:
        n_threads = int(rng.integers(2, platform.n_cores + 1))
    case = FuzzCase(
        seed=seed,
        schedule=_gen_schedule(rng, variants),
        platform=platform_name,
        n_iterations=ni,
        n_threads=n_threads,
        cost=_gen_cost(rng),
        overhead_scale=float(rng.choice([0.0, 0.5, 1.0, 3.0])),
    )
    if faults is None:
        return case
    if faults == "sim":
        from repro.faults.model import random_plan

        intensity = float(rng.choice([0.3, 0.6, 1.0]))
        plan = random_plan(
            int(rng.integers(2**31)), platform.n_cores, intensity=intensity
        )
        return replace(case, faults=plan.to_tuples())
    if faults == "stall":
        # Real-thread watchdog exercise: small loop, every worker's
        # first chunk stalls well past the timeout.
        real_platform = str(rng.choice(["dual:1:1", "dual:2:2"]))
        nt = preset_platform(real_platform).n_cores
        stall_events = tuple(
            ("stall", tid, 0.0, 0.25) for tid in range(nt)
        )
        return replace(
            case,
            platform=real_platform,
            n_threads=None,
            n_iterations=int(rng.integers(1, 25)),
            overhead_scale=0.0,
            faults=stall_events,
            real=True,
            watchdog=0.02,
        )
    raise ConfigError(f"unknown fault mode {faults!r}; valid: sim, stall")


def _simplified_schedule(schedule: str) -> str | None:
    """The minimal parameterization of a schedule's own kind, or ``None``
    if the schedule already is minimal.

    Matters for shrinking: AID-dynamic's endgame threshold ``M * NT``
    scales the iteration count a chunk bug needs, so a reproducer only
    gets small once ``m, M`` do.
    """
    kind = schedule.split(",")[0]
    minimal = {
        "aid_static": "aid_static",
        "aid_hybrid": "aid_hybrid,80",
        "aid_dynamic": "aid_dynamic,1,2",
        "aid_auto": "aid_auto,1,2",
        "aid_steal": "aid_steal,1",
    }.get(kind, schedule)
    return minimal if minimal != schedule else None


def simplified(case: FuzzCase) -> list[FuzzCase]:
    """Shrink candidates for a failing case, roughly most-aggressive
    first (the shrinker tries them in order and keeps any that still
    fails)."""
    out: list[FuzzCase] = []
    ni = case.n_iterations
    for smaller in {1, 2, ni // 4, ni // 2, ni - 4, ni - 1}:
        if 1 <= smaller < ni:
            out.append(replace(case, n_iterations=smaller))
    simpler_schedule = _simplified_schedule(case.schedule)
    if simpler_schedule is not None:
        out.append(replace(case, schedule=simpler_schedule))
    if case.platform != "dual:1:1":
        out.append(replace(case, platform="dual:1:1", n_threads=None))
    if case.n_threads is not None:
        out.append(replace(case, n_threads=None))
        if case.n_threads > 2:
            out.append(replace(case, n_threads=2))
    if case.cost[0] != "uniform":
        out.append(replace(case, cost=("uniform", 1e-4)))
    if case.overhead_scale != 0.0:
        out.append(replace(case, overhead_scale=0.0))
    # Drop fault events one at a time: the minimal reproducer keeps only
    # the faults the failure actually needs.
    for i in range(len(case.faults)):
        out.append(
            replace(case, faults=case.faults[:i] + case.faults[i + 1:])
        )
    return out
