"""Run the invariant catalog and render what it finds.

Three entry points:

* :func:`verify_loop` — the main oracle: a recorded
  :class:`~repro.check.recording.CheckContext` in, a
  :class:`ConformanceReport` out.
* :func:`verify_timeline` — trace-level checks (interval overlap,
  barrier completeness) for runs recorded with a
  :class:`~repro.tracing.trace.TraceRecorder`.
* :func:`verify_payload` — structural validation of the repo's two
  on-disk result formats (obs snapshots and experiment grid payloads),
  the ``repro.check verify <file>`` backend.

Reports render as text; when a trace is attached, a violation report
includes a minimal ASCII schedule excerpt
(:func:`repro.tracing.ascii_art.render_timeline`) so a failing fuzz case
is readable without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.invariants import Violation, run_invariants
from repro.check.recording import CheckContext
from repro.tracing.ascii_art import render_timeline
from repro.tracing.trace import ThreadState, Timeline, TraceRecorder

#: Width of the ASCII schedule excerpt embedded in violation reports.
_EXCERPT_WIDTH = 72


@dataclass
class ConformanceReport:
    """Outcome of one oracle run.

    Attributes:
        loop_name: the checked loop.
        scheduler: active scheduler label (from the check context).
        n_iterations: trip count, if the run got far enough to know it.
        violations: everything the catalog flagged, in catalog order.
        error: runtime self-check failure captured during execution
            (e.g. the executor's iteration-count assertion), if any.
        stats: event counts, for report headers and debugging.
    """

    loop_name: str = ""
    scheduler: str = ""
    n_iterations: int | None = None
    violations: list[Violation] = field(default_factory=list)
    error: str | None = None
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None

    def render(self, trace: TraceRecorder | Timeline | None = None) -> str:
        """Human-readable report; pass the run's trace for an excerpt."""
        head = (
            f"conformance: loop={self.loop_name or '?'} "
            f"scheduler={self.scheduler or '?'} "
            f"ni={self.n_iterations} "
            f"takes={self.stats.get('takes', 0)} "
            f"dispatches={self.stats.get('dispatches', 0)} "
            f"decisions={self.stats.get('decisions', 0)}"
        )
        if self.ok:
            return f"{head}\nOK: all invariants hold"
        lines = [head]
        if self.error is not None:
            lines.append(f"runtime abort: {self.error}")
        lines += [v.render() for v in self.violations]
        if trace is not None:
            excerpt = render_timeline(
                trace if isinstance(trace, TraceRecorder) else _as_recorder(trace),
                width=_EXCERPT_WIDTH,
            )
            lines.append("schedule excerpt:")
            lines.append(excerpt)
        return "\n".join(lines)


def _as_recorder(timeline: Timeline) -> TraceRecorder:
    rec = TraceRecorder()
    rec.intervals = list(timeline.intervals)
    return rec


def verify_loop(
    obs: CheckContext, trace: TraceRecorder | Timeline | None = None
) -> ConformanceReport:
    """Run the invariant catalog (plus timeline checks when a trace is
    given) over one recorded loop execution."""
    violations = run_invariants(obs)
    if trace is not None:
        violations.extend(verify_timeline(trace))
    return ConformanceReport(
        loop_name=obs.loop_name,
        scheduler=obs.scheduler,
        n_iterations=obs.n_iterations,
        violations=violations,
        error=obs.error,
        stats={
            "takes": len(obs.takes),
            "dispatches": len(obs.dispatches),
            "states": len(obs.states),
            "decisions": len(obs.decisions),
        },
    )


#: Tolerance for identical-time comparisons on DES floats.
_TIME_EPS = 1e-9


def verify_timeline(trace: TraceRecorder | Timeline) -> list[Violation]:
    """Trace-level invariants: per-thread interval consistency and
    barrier completeness.

    * a thread is in exactly one state at a time (no overlapping
      intervals) and its intervals are time-monotone;
    * barriers release whole teams: for each loop that has barrier
      intervals, every traced thread has one, and they all end at the
      same release time.
    """
    timeline = trace.timeline() if isinstance(trace, TraceRecorder) else trace
    out: list[Violation] = []
    tids = timeline.thread_ids()
    for tid in tids:
        ivs = timeline.for_thread(tid)
        for a, b in zip(ivs, ivs[1:]):
            if b.t0 < a.t1 - _TIME_EPS:
                out.append(
                    Violation(
                        "timeline-overlap",
                        f"intervals overlap: [{a.t0:g}, {a.t1:g}] "
                        f"{a.state.value} then [{b.t0:g}, {b.t1:g}] "
                        f"{b.state.value}",
                        tid=tid,
                    )
                )
    barriers: dict[str, dict[int, float]] = {}
    for iv in timeline.intervals:
        if iv.state == ThreadState.BARRIER:
            barriers.setdefault(iv.label, {})[iv.tid] = iv.t1
    for loop, ends in sorted(barriers.items()):
        missing = [t for t in tids if t not in ends]
        if missing:
            out.append(
                Violation(
                    "barrier-complete",
                    f"loop {loop!r}: threads {missing} have no barrier "
                    f"interval ({len(ends)} of {len(tids)} entered)",
                )
            )
        release = max(ends.values())
        stragglers = [
            t for t, e in sorted(ends.items()) if release - e > _TIME_EPS
        ]
        if stragglers:
            out.append(
                Violation(
                    "barrier-complete",
                    f"loop {loop!r}: threads {stragglers} left the barrier "
                    f"before the team release at t={release:g}",
                )
            )
    return out


# -- on-disk payload validation ----------------------------------------------


def verify_payload(payload: dict) -> ConformanceReport:
    """Structurally validate a result artifact.

    Accepts the two formats the repo writes:

    * obs snapshots (``schema == "repro.obs.snapshot/v1"``) — checks the
      metrics/decisions structure, counter non-negativity and decision
      seq ordering;
    * experiment grid payloads (``programs``/``schemes`` keys, as built
      by :func:`repro.obs.snapshot.grid_payload`) — checks row/scheme
      consistency, positive completion times and the normalized-
      performance definition.
    """
    report = ConformanceReport(loop_name="<payload>")
    v = report.violations
    if not isinstance(payload, dict):
        v.append(Violation("payload-schema", "payload is not a JSON object"))
        return report
    if payload.get("schema") == "repro.obs.snapshot/v1":
        report.scheduler = "snapshot"
        _verify_snapshot(payload, v)
    elif "programs" in payload and "schemes" in payload:
        report.scheduler = "grid"
        _verify_grid(payload, v)
    else:
        v.append(
            Violation(
                "payload-schema",
                "unrecognized payload: expected an obs snapshot "
                "(schema=repro.obs.snapshot/v1) or a grid payload "
                "(programs/schemes keys)",
            )
        )
    return report


def _verify_snapshot(payload: dict, v: list[Violation]) -> None:
    for key in ("metrics", "decisions"):
        if key not in payload:
            v.append(Violation("payload-schema", f"snapshot missing {key!r}"))
            return
    metrics = payload["metrics"]
    if not isinstance(metrics, dict):
        v.append(Violation("payload-schema", "metrics is not an object"))
        return
    for kind in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(kind), list):
            v.append(
                Violation("payload-schema", f"metrics.{kind} is not a list")
            )
            return
    for m in metrics["counters"]:
        if m.get("value", 0) < 0:
            v.append(
                Violation(
                    "payload-counters",
                    f"counter {m.get('name', '?')} is negative "
                    f"({m.get('value')})",
                )
            )
    decisions = payload["decisions"]
    if not isinstance(decisions, list):
        v.append(Violation("payload-schema", "decisions is not a list"))
        return
    for i, rec in enumerate(decisions):
        missing = [
            f
            for f in ("seq", "t", "loop", "scheduler", "tid", "event")
            if f not in rec
        ]
        if missing:
            v.append(
                Violation(
                    "payload-decisions",
                    f"decision record {i} missing fields {missing}",
                    seq=i,
                )
            )
        elif rec["seq"] != i:
            v.append(
                Violation(
                    "payload-decisions",
                    f"decision record {i} has out-of-order seq {rec['seq']}",
                    seq=i,
                )
            )


def _verify_grid(payload: dict, v: list[Violation]) -> None:
    schemes = payload.get("schemes") or []
    for program, rows in sorted(payload.get("programs", {}).items()):
        labels = [r.get("scheme") for r in rows]
        missing = [s for s in schemes if s not in labels]
        if missing:
            v.append(
                Violation(
                    "payload-grid",
                    f"program {program!r} missing schemes {missing}",
                )
            )
        base_row = next(
            (r for r in rows if r.get("scheme") == payload.get("baseline")),
            None,
        )
        for row in rows:
            t = row.get("completion_time")
            if not isinstance(t, (int, float)) or t <= 0:
                v.append(
                    Violation(
                        "payload-grid",
                        f"{program}/{row.get('scheme')}: non-positive "
                        f"completion time {t!r}",
                    )
                )
                continue
            norm = row.get("normalized_performance")
            if base_row is not None and isinstance(norm, (int, float)):
                expected = base_row["completion_time"] / t
                if abs(norm - expected) > 1e-9 * max(1.0, abs(expected)):
                    v.append(
                        Violation(
                            "payload-grid",
                            f"{program}/{row.get('scheme')}: "
                            f"normalized_performance {norm} != "
                            f"baseline/completion = {expected}",
                        )
                    )
