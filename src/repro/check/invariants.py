"""The invariant catalog the schedule-conformance oracle runs.

Each invariant is a pure function over a recorded
:class:`~repro.check.recording.CheckContext` returning
:class:`Violation` objects (empty list = holds). They fall into three
groups, mirroring what the paper's correctness argument rests on:

**Work-share semantics** (libgomp Sec. 4.2):

* ``workshare-replay`` — replaying the fetch-and-add log reproduces the
  pool pointer exactly: each ``take`` observes the pointer the previous
  one left, advances it by the requested size, and its granted range is
  the clamp of ``[before, before+requested)`` against ``end``.
* ``exact-once`` — the dispatched ranges partition ``[0, NI)``: every
  iteration executed by exactly one worker.
* ``dispatch-pool-consistency`` — every dispatched iteration was first
  removed from the shared pool (AID-steal's local serves live inside its
  one ``take_all`` range).

**Execution sanity**:

* ``clock-monotone`` — each worker's dispatch timestamps never go
  backwards.
* ``result-consistency`` — the reported per-thread iteration counts and
  range list agree with the ground-truth dispatch log.
* ``state-machine`` — per-thread scheduler states follow the legal
  transitions of the paper's Figs. 3/5 automata and end in ``DONE``.
* ``sampling-single`` — no thread samples more than one chunk per
  scheduler instance.

**Per-variant AID properties**:

* ``aid-targets`` — a published big/small split exactly matches the
  SF-derived partition ``aid_targets(frac*NI, SF, type_counts)``, and
  each AID allotment asks for ``target - delta``.
* ``one-shot-phase-order`` — drain/dynamic-tail steals only after the
  one-shot targets are published (AID-hybrid's dynamic phase cannot
  start before the static region is distributed).
* ``dynamic-endgame`` — AID-dynamic's switch to dynamic(m) happens at or
  below the ``M*NT`` threshold and no phase joins follow it.
* ``steal-partition`` — AID-steal's partition is contiguous and
  in-bounds, and every steal splits the victim's range exactly in two.

**Fault recovery** (active only when fault records are present):

* ``fault-requeue-conservation`` — iterations served from the
  work-share requeue deque were first returned by a fault preempt or a
  watchdog redistribution, at most as often as they were returned.
* ``offline-no-dispatch`` — a worker parked by a core-offline fault
  takes no new chunk inside its offline window.
* ``watchdog-redistributes`` — with the watchdog armed, a stall well
  past the timeout must be answered by a redistribution (this is the
  invariant that catches a disabled/broken watchdog).

Fault records also *relax* the base catalog exactly where recovery is
legal: requeued takes are excluded from the pool-pointer replay,
duplicate execution is allowed inside watchdog-redistributed ranges
(exact-once and the result count weaken to coverage), the state
machines admit the restart edges resampling introduces, and a parked
worker may end in a non-DONE state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sched import aid_common as ac
from repro.sched.aid_dynamic import ENDGAME
from repro.sched.aid_steal import SERVING
from repro.check.recording import CheckContext

#: Cap on violations reported per invariant (the rest are summarized).
_MAX_PER_INVARIANT = 5


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to an event where possible."""

    invariant: str
    message: str
    tid: int | None = None
    seq: int | None = None

    def render(self) -> str:
        where = ""
        if self.tid is not None:
            where += f" tid={self.tid}"
        if self.seq is not None:
            where += f" seq={self.seq}"
        return f"[{self.invariant}]{where}: {self.message}"


@dataclass(frozen=True)
class Invariant:
    """A named, documented entry of the catalog."""

    name: str
    description: str
    check: Callable[[CheckContext], list]


def _cap(name: str, violations: list[Violation]) -> list[Violation]:
    if len(violations) <= _MAX_PER_INVARIANT:
        return violations
    kept = violations[:_MAX_PER_INVARIANT]
    kept.append(
        Violation(name, f"... and {len(violations) - _MAX_PER_INVARIANT} more")
    )
    return kept


# -- work-share semantics -----------------------------------------------------


def check_workshare_replay(obs: CheckContext) -> list[Violation]:
    out: list[Violation] = []
    ni = obs.n_iterations
    if ni is None or not obs.takes:
        return out
    # Under real threads the append order can race; the fetch-and-add's
    # returned value IS the serialization order, so sort by it. Takes
    # served from the fault-requeue deque never touch the pool pointer;
    # they are validated by fault-requeue-conservation instead.
    takes = sorted(
        (e for e in obs.takes if not e.requeued), key=lambda e: e.before
    )
    if not takes:
        return out
    pointer = 0
    for ev in takes:
        if ev.before != pointer:
            out.append(
                Violation(
                    "workshare-replay",
                    f"pool pointer is {ev.before} but the preceding takes "
                    f"advanced it to {pointer} (requested={ev.requested})",
                    seq=ev.seq,
                )
            )
            pointer = ev.before  # resynchronize to keep later messages useful
        expected = None
        if ev.before < ni:
            expected = (ev.before, min(ev.before + ev.requested, ni))
        if ev.granted != expected:
            out.append(
                Violation(
                    "workshare-replay",
                    f"take(requested={ev.requested}) at pointer {ev.before} "
                    f"granted {ev.granted}, fetch-and-add semantics give "
                    f"{expected}",
                    seq=ev.seq,
                )
            )
        if ev.granted is not None:
            lo, hi = ev.granted
            if not (0 <= lo < hi <= ni):
                out.append(
                    Violation(
                        "workshare-replay",
                        f"granted range [{lo}, {hi}) outside loop bounds "
                        f"[0, {ni})",
                        seq=ev.seq,
                    )
                )
        pointer += ev.requested
    return _cap("workshare-replay", out)


def _intervals(indices: list[int]) -> str:
    """Compress sorted iteration indices into ``a-b`` interval text."""
    if not indices:
        return "(none)"
    parts: list[str] = []
    start = prev = indices[0]
    for i in indices[1:]:
        if i == prev + 1:
            prev = i
            continue
        parts.append(f"{start}-{prev}" if prev > start else f"{start}")
        start = prev = i
    parts.append(f"{start}-{prev}" if prev > start else f"{start}")
    return ", ".join(parts[:8]) + (" ..." if len(parts) > 8 else "")


def check_exact_once(obs: CheckContext) -> list[Violation]:
    ni = obs.n_iterations
    if ni is None or not obs.dispatches:
        return []
    out: list[Violation] = []
    counts = [0] * ni
    for ev in obs.dispatches:
        if ev.granted is None:
            continue
        lo, hi = ev.granted
        if not (0 <= lo < hi <= ni):
            out.append(
                Violation(
                    "exact-once",
                    f"dispatched range [{lo}, {hi}) outside [0, {ni})",
                    tid=ev.tid,
                    seq=ev.seq,
                )
            )
            continue
        for i in range(lo, hi):
            counts[i] += 1
    # Watchdog redistribution legitimately double-executes: the stalled
    # owner may finish a chunk whose range was already handed back to
    # the survivors. Duplicates are legal only inside those ranges.
    dup_ok = [False] * ni
    for rec in obs.fault_records("watchdog_redistribute"):
        lo, hi = rec["range"]
        for i in range(max(0, lo), min(ni, hi)):
            dup_ok[i] = True
    missed = [i for i, c in enumerate(counts) if c == 0]
    duped = [i for i, c in enumerate(counts) if c > 1 and not dup_ok[i]]
    if missed:
        out.append(
            Violation(
                "exact-once",
                f"{len(missed)} iterations never executed: {_intervals(missed)}",
            )
        )
    if duped:
        out.append(
            Violation(
                "exact-once",
                f"{len(duped)} iterations executed more than once: "
                f"{_intervals(duped)}",
            )
        )
    return _cap("exact-once", out)


def check_dispatch_pool_consistency(obs: CheckContext) -> list[Violation]:
    ni = obs.n_iterations
    if ni is None or not obs.dispatches or not obs.takes:
        return []
    removed = [False] * ni
    for ev in obs.takes:
        if ev.granted is None:
            continue
        lo, hi = ev.granted
        for i in range(max(0, lo), min(ni, hi)):
            removed[i] = True
    out: list[Violation] = []
    for ev in obs.dispatches:
        if ev.granted is None:
            continue
        lo, hi = ev.granted
        bad = [i for i in range(max(0, lo), min(ni, hi)) if not removed[i]]
        if bad:
            out.append(
                Violation(
                    "dispatch-pool-consistency",
                    f"dispatched range [{lo}, {hi}) contains iterations never "
                    f"removed from the pool: {_intervals(bad)}",
                    tid=ev.tid,
                    seq=ev.seq,
                )
            )
        elif lo < 0 or hi > ni:
            out.append(
                Violation(
                    "dispatch-pool-consistency",
                    f"dispatched range [{lo}, {hi}) outside loop bounds "
                    f"[0, {ni})",
                    tid=ev.tid,
                    seq=ev.seq,
                )
            )
    return _cap("dispatch-pool-consistency", out)


# -- execution sanity ---------------------------------------------------------


def check_clock_monotone(obs: CheckContext) -> list[Violation]:
    out: list[Violation] = []
    last: dict[int, float] = {}
    for ev in obs.dispatches:
        prev = last.get(ev.tid)
        if prev is not None and ev.t < prev:
            out.append(
                Violation(
                    "clock-monotone",
                    f"dispatch at t={ev.t} after one at t={prev}",
                    tid=ev.tid,
                    seq=ev.seq,
                )
            )
        last[ev.tid] = ev.t
    return _cap("clock-monotone", out)


def check_result_consistency(obs: CheckContext) -> list[Violation]:
    result = obs.result
    ni = obs.n_iterations
    if result is None or ni is None:
        return []
    out: list[Violation] = []
    # Simulator LoopResult vs real-thread RealLoopStats field names.
    per_tid = getattr(result, "iterations", None)
    if per_tid is None:
        per_tid = getattr(result, "iterations_per_thread", None)
    redistributed = bool(obs.fault_records("watchdog_redistribute"))
    if per_tid is not None:
        # Under watchdog redistribution iterations may legally run twice
        # (exact-once bounds where); the count check weakens to coverage.
        if (sum(per_tid) < ni) if redistributed else (sum(per_tid) != ni):
            out.append(
                Violation(
                    "result-consistency",
                    f"result reports {sum(per_tid)} iterations for a "
                    f"{ni}-iteration loop",
                )
            )
        observed = [0] * len(per_tid)
        for ev in obs.dispatches:
            if ev.granted is not None and 0 <= ev.tid < len(observed):
                observed[ev.tid] += ev.granted[1] - ev.granted[0]
        if obs.dispatches and list(per_tid) != observed:
            out.append(
                Violation(
                    "result-consistency",
                    f"per-thread counts {list(per_tid)} disagree with the "
                    f"dispatch log {observed}",
                )
            )
    ranges = getattr(result, "ranges", None)
    if ranges is not None and obs.dispatches:
        if sorted(ranges) != sorted(obs.executed_ranges()):
            out.append(
                Violation(
                    "result-consistency",
                    "result.ranges disagrees with the dispatch log",
                )
            )
    return _cap("result-consistency", out)


#: Legal state transitions per scheduler label. Keys are source states,
#: values the states one ``next_range`` call may move to. ``START``
#: itself is never recorded — it is the implicit initial state.
_ONE_SHOT_TRANSITIONS = {
    ac.START: {ac.SAMPLING, ac.AID, ac.DONE},
    ac.SAMPLING: {ac.SAMPLING_WAIT, ac.AID, ac.DONE},
    ac.SAMPLING_WAIT: {ac.SAMPLING_WAIT, ac.AID, ac.DONE},
    ac.AID: {ac.DRAIN, ac.DONE},
    ac.DRAIN: {ac.DRAIN, ac.DONE},
    ac.DONE: set(),
}

_DYNAMIC_DISPATCH = {ac.SAMPLING_WAIT, ac.AID, ac.AID_WAIT, ENDGAME, ac.DONE}

TRANSITIONS: dict[str, dict[str, set[str]]] = {
    "aid_static": _ONE_SHOT_TRANSITIONS,
    "aid_hybrid": _ONE_SHOT_TRANSITIONS,
    "aid_auto": _ONE_SHOT_TRANSITIONS,
    "aid_dynamic": {
        ac.START: {ac.SAMPLING, ac.DONE},
        ac.SAMPLING: _DYNAMIC_DISPATCH,
        ac.SAMPLING_WAIT: _DYNAMIC_DISPATCH,
        ac.AID: _DYNAMIC_DISPATCH,
        ac.AID_WAIT: _DYNAMIC_DISPATCH,
        ENDGAME: {ENDGAME, ac.DONE},
        ac.DONE: set(),
    },
    "aid_steal": {
        ac.START: {ac.SAMPLING, SERVING, ac.DONE},
        ac.SAMPLING: {SERVING, ac.SAMPLING_WAIT, ac.DONE},
        ac.SAMPLING_WAIT: {ac.SAMPLING_WAIT, SERVING, ac.DONE},
        SERVING: {SERVING, ac.DONE},
        ac.DONE: set(),
    },
}

#: Extra legal *initial* states when aid_auto seeds its inner phase
#: engine mid-loop (threads jump straight past sampling).
_SEEDED_INITIAL = {"aid_dynamic": {ac.SAMPLING_WAIT, ac.DONE}}


def check_state_machine(obs: CheckContext) -> list[Violation]:
    if not obs.states:
        return []
    out: list[Violation] = []
    # Fault recovery re-enters the automaton from places the fault-free
    # design never visits: aid_auto's resample rewinds non-DONE threads
    # to START, offline/online parks and revives workers mid-phase. With
    # fault records present, any restart-from-START transition (and the
    # SAMPLING re-entry it leads to) is additionally legal, and a parked
    # worker may legitimately end in a non-DONE state.
    faulted = obs.has_faults
    by_tid: dict[int, list] = {}
    for ev in obs.states:
        by_tid.setdefault(ev.tid, []).append(ev)
    for tid, events in sorted(by_tid.items()):
        label = None
        state = ac.START
        for ev in events:
            table = TRANSITIONS.get(ev.scheduler)
            if table is None:
                continue
            if ev.scheduler != label:
                # Entering a (possibly inner) scheduler: implicit START,
                # plus the seeded fast-forward states aid_auto uses.
                legal = table[ac.START] | _SEEDED_INITIAL.get(
                    ev.scheduler, set()
                )
            else:
                legal = table.get(state, set())
            if faulted:
                legal = legal | table[ac.START] | {ac.SAMPLING}
            if ev.state not in legal:
                out.append(
                    Violation(
                        "state-machine",
                        f"{ev.scheduler}: illegal transition "
                        f"{state} -> {ev.state}",
                        tid=tid,
                        seq=ev.seq,
                    )
                )
            label, state = ev.scheduler, ev.state
        if (
            obs.result is not None
            and obs.error is None
            and state != ac.DONE
            and not faulted
        ):
            out.append(
                Violation(
                    "state-machine",
                    f"loop completed but the thread's final state is {state}",
                    tid=tid,
                )
            )
    return _cap("state-machine", out)


def check_sampling_single(obs: CheckContext) -> list[Violation]:
    out: list[Violation] = []
    seen: dict[tuple[str, str, int, int], int] = {}
    for rec in obs.decisions.records:
        if rec["event"] not in ("sample_start", "sample_complete"):
            continue
        # aid_auto's fault-adaptive resample opens a fresh sampling epoch
        # (stamped on its records) and a sampler preempted by a fault
        # re-takes its chunk with a bumped ``retake`` marker; one sample
        # per thread *per epoch per retake*.
        key = (
            rec["scheduler"], rec["event"], rec["tid"],
            rec.get("epoch", 0), rec.get("retake", 0),
        )
        seen[key] = seen.get(key, 0) + 1
        if seen[key] == 2:
            out.append(
                Violation(
                    "sampling-single",
                    f"{rec['scheduler']}: thread emitted "
                    f"{rec['event']} more than once",
                    tid=rec["tid"],
                    seq=rec["seq"],
                )
            )
    return _cap("sampling-single", out)


# -- per-variant AID properties -----------------------------------------------


def _target_publications(obs: CheckContext) -> list[tuple[int, list[int]]]:
    """Every one-shot targets publication as ``(seq, targets)``, in
    order — publish_targets events plus aid_auto static-mode decide
    records. Fault-adaptive resampling may publish more than once; an
    allotment is validated against the latest publication preceding it.
    """
    out: list[tuple[int, list[int]]] = []
    for rec in obs.decisions.records:
        if rec["event"] == "publish_targets" or (
            rec["event"] == "decide" and rec.get("mode") == "static"
        ):
            out.append((rec["seq"], list(rec["targets"])))
    return out


def _published_targets(obs: CheckContext) -> tuple[list[int] | None, int | None]:
    """The first one-shot targets publication (phase-order anchor)."""
    pubs = _target_publications(obs)
    if not pubs:
        return None, None
    seq, targets = pubs[0]
    return targets, seq


def check_aid_targets(obs: CheckContext) -> list[Violation]:
    ni = obs.n_iterations
    info = obs.team_info
    if ni is None or info is None:
        return []
    out: list[Violation] = []
    type_counts = tuple(info["type_counts"])
    type_of_tid = list(info["type_of_tid"])
    for rec in obs.decisions.records:
        if rec["event"] != "publish_targets":
            continue
        sf = {int(k): float(v) for k, v in (rec.get("sf") or {}).items()}
        frac = float(rec.get("aid_fraction", 1.0))
        expected = ac.aid_targets(int(frac * ni), sf, type_counts)
        if list(rec["targets"]) != expected:
            out.append(
                Violation(
                    "aid-targets",
                    f"published targets {rec['targets']} != SF-derived "
                    f"partition {expected} "
                    f"(sf={sf}, fraction={frac}, counts={type_counts})",
                    tid=rec["tid"],
                    seq=rec["seq"],
                )
            )
    pubs = _target_publications(obs)
    if pubs:
        for rec in obs.decisions.records:
            if rec["event"] != "aid_allotment":
                continue
            tid = rec["tid"]
            if tid < 0 or tid >= len(type_of_tid):
                continue
            targets = None
            for seq, t in pubs:
                if seq < rec["seq"]:
                    targets = t
            if targets is None:
                continue
            want = targets[type_of_tid[tid]]
            if rec.get("target") != want:
                out.append(
                    Violation(
                        "aid-targets",
                        f"allotment used target {rec.get('target')} but the "
                        f"published per-type target is {want}",
                        tid=tid,
                        seq=rec["seq"],
                    )
                )
            lo, hi = rec["range"]
            if hi - lo > rec["chunk_target"]:
                out.append(
                    Violation(
                        "aid-targets",
                        f"allotment granted {hi - lo} iterations for a "
                        f"request of {rec['chunk_target']}",
                        tid=tid,
                        seq=rec["seq"],
                    )
                )
    return _cap("aid-targets", out)


def check_one_shot_phase_order(obs: CheckContext) -> list[Violation]:
    targets, publish_seq = _published_targets(obs)
    out: list[Violation] = []
    for rec in obs.decisions.records:
        if rec["event"] not in ("drain_steal", "aid_allotment"):
            continue
        if targets is None:
            out.append(
                Violation(
                    "one-shot-phase-order",
                    f"{rec['event']} emitted but no targets were ever "
                    f"published",
                    tid=rec["tid"],
                    seq=rec["seq"],
                )
            )
        elif rec["seq"] < publish_seq:
            out.append(
                Violation(
                    "one-shot-phase-order",
                    f"{rec['event']} at seq {rec['seq']} precedes the "
                    f"targets publication at seq {publish_seq} — the "
                    f"dynamic tail ran before the static region was "
                    f"distributed",
                    tid=rec["tid"],
                    seq=rec["seq"],
                )
            )
    return _cap("one-shot-phase-order", out)


def check_dynamic_endgame(obs: CheckContext) -> list[Violation]:
    out: list[Violation] = []
    endgame_seq: int | None = None
    for rec in obs.decisions.records:
        if rec["scheduler"] != "aid_dynamic":
            continue
        ev = rec["event"]
        if ev == "endgame":
            if rec["remaining"] > rec["threshold"]:
                out.append(
                    Violation(
                        "dynamic-endgame",
                        f"endgame switch with {rec['remaining']} iterations "
                        f"remaining, above the threshold {rec['threshold']}",
                        tid=rec["tid"],
                        seq=rec["seq"],
                    )
                )
            if endgame_seq is None:
                endgame_seq = rec["seq"]
        elif ev == "phase_join" and endgame_seq is not None:
            out.append(
                Violation(
                    "dynamic-endgame",
                    f"phase join at seq {rec['seq']} after the endgame "
                    f"switch at seq {endgame_seq}",
                    tid=rec["tid"],
                    seq=rec["seq"],
                )
            )
        elif ev == "endgame_steal" and endgame_seq is None:
            out.append(
                Violation(
                    "dynamic-endgame",
                    "endgame steal before any endgame switch was announced",
                    tid=rec["tid"],
                    seq=rec["seq"],
                )
            )
    return _cap("dynamic-endgame", out)


def check_steal_partition(obs: CheckContext) -> list[Violation]:
    ni = obs.n_iterations
    if ni is None:
        return []
    out: list[Violation] = []
    for rec in obs.decisions.records:
        if rec["event"] == "partition":
            ranges = [tuple(r) for r in rec["ranges"]]
            for (lo, hi) in ranges:
                if not (0 <= lo <= hi <= ni):
                    out.append(
                        Violation(
                            "steal-partition",
                            f"partition range [{lo}, {hi}) outside [0, {ni})",
                            seq=rec["seq"],
                        )
                    )
            for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
                if b_lo != a_hi:
                    out.append(
                        Violation(
                            "steal-partition",
                            f"partition not contiguous: [{a_lo}, {a_hi}) "
                            f"then [{b_lo}, {b_hi})",
                            seq=rec["seq"],
                        )
                    )
        elif rec["event"] == "steal":
            (s_lo, s_hi) = rec["range"]
            (v_lo, v_hi) = rec["victim_left"]
            if v_hi != s_lo or not (v_lo <= v_hi <= s_hi):
                out.append(
                    Violation(
                        "steal-partition",
                        f"steal split victim [{v_lo}, {v_hi}) / stolen "
                        f"[{s_lo}, {s_hi}) is not a contiguous two-way cut",
                        tid=rec["tid"],
                        seq=rec["seq"],
                    )
                )
            if not (0 <= s_lo <= s_hi <= ni):
                out.append(
                    Violation(
                        "steal-partition",
                        f"stolen range [{s_lo}, {s_hi}) outside [0, {ni})",
                        tid=rec["tid"],
                        seq=rec["seq"],
                    )
                )
    return _cap("steal-partition", out)


# -- fault-recovery properties ------------------------------------------------


def check_fault_requeue_conservation(obs: CheckContext) -> list[Violation]:
    ni = obs.n_iterations
    if ni is None or not obs.has_faults:
        return []
    out: list[Violation] = []
    requeued = [0] * ni
    for rec in obs.fault_records():
        if rec["event"] in ("requeue", "watchdog_redistribute"):
            lo, hi = rec["range"]
            for i in range(max(0, lo), min(ni, hi)):
                requeued[i] += 1
    served = [0] * ni
    for ev in obs.takes:
        if not ev.requeued or ev.granted is None:
            continue
        lo, hi = ev.granted
        if not (0 <= lo < hi <= ni):
            out.append(
                Violation(
                    "fault-requeue-conservation",
                    f"requeue-served range [{lo}, {hi}) outside [0, {ni})",
                    seq=ev.seq,
                )
            )
            continue
        for i in range(lo, hi):
            served[i] += 1
    over = [i for i in range(ni) if served[i] > requeued[i]]
    if over:
        out.append(
            Violation(
                "fault-requeue-conservation",
                f"{len(over)} iterations served from the requeue deque "
                f"more often than fault recovery returned them: "
                f"{_intervals(over)}",
            )
        )
    return _cap("fault-requeue-conservation", out)


def check_offline_no_dispatch(obs: CheckContext) -> list[Violation]:
    if not obs.has_faults or obs.n_iterations is None:
        return []
    # Build each worker's offline windows from the fault log. A window
    # that never closes extends to the end of the run. Workers whose
    # offlining was deferred (last live core) keep dispatching.
    windows: dict[int, list[tuple[float, float]]] = {}
    open_at: dict[int, float] = {}
    for rec in obs.fault_records():
        if rec["event"] == "offline":
            open_at.setdefault(rec["tid"], rec["t"])
        elif rec["event"] == "online":
            t0 = open_at.pop(rec["tid"], None)
            if t0 is not None:
                windows.setdefault(rec["tid"], []).append((t0, rec["t"]))
    for tid, t0 in open_at.items():
        windows.setdefault(tid, []).append((t0, float("inf")))
    out: list[Violation] = []
    for ev in obs.dispatches:
        if ev.granted is None:
            continue
        for a, b in windows.get(ev.tid, ()):
            if a < ev.t < b:
                out.append(
                    Violation(
                        "offline-no-dispatch",
                        f"dispatch at t={ev.t} inside the worker's "
                        f"offline window [{a}, {b})",
                        tid=ev.tid,
                        seq=ev.seq,
                    )
                )
                break
    return _cap("offline-no-dispatch", out)


def check_watchdog_redistributes(obs: CheckContext) -> list[Violation]:
    info = obs.team_info or {}
    timeout = info.get("watchdog_timeout")
    if timeout is None:
        return []
    long_stalls = [
        rec
        for rec in obs.fault_records("stall_injected")
        if rec.get("seconds", 0.0) >= 2.0 * timeout
    ]
    if not long_stalls or obs.fault_records("watchdog_redistribute"):
        return []
    rec = long_stalls[0]
    return [
        Violation(
            "watchdog-redistributes",
            f"a worker stalled {rec['seconds']:.3g}s with a "
            f"{timeout:.3g}s watchdog armed, yet no redistribution was "
            "logged",
            tid=rec["tid"],
            seq=rec["seq"],
        )
    ]


#: The catalog, in reporting order. docs/testing.md renders this table.
INVARIANTS: tuple[Invariant, ...] = (
    Invariant(
        "workshare-replay",
        "Replaying the fetch-and-add log reproduces the pool pointer; "
        "grants are exact clamps of [next, next+n) against end.",
        check_workshare_replay,
    ),
    Invariant(
        "exact-once",
        "Dispatched ranges partition [0, NI): every iteration executed "
        "exactly once by exactly one worker.",
        check_exact_once,
    ),
    Invariant(
        "dispatch-pool-consistency",
        "Every dispatched iteration was first removed from the shared "
        "pool.",
        check_dispatch_pool_consistency,
    ),
    Invariant(
        "clock-monotone",
        "Per-worker dispatch timestamps never decrease.",
        check_clock_monotone,
    ),
    Invariant(
        "result-consistency",
        "Reported per-thread counts and ranges agree with the dispatch "
        "log.",
        check_result_consistency,
    ),
    Invariant(
        "state-machine",
        "Per-thread scheduler states follow the Figs. 3/5 automata and "
        "end in DONE.",
        check_state_machine,
    ),
    Invariant(
        "sampling-single",
        "No thread samples more than one chunk per scheduler instance.",
        check_sampling_single,
    ),
    Invariant(
        "aid-targets",
        "Published one-shot splits match the SF-derived partition; "
        "allotments honour the per-type target.",
        check_aid_targets,
    ),
    Invariant(
        "one-shot-phase-order",
        "Drain/dynamic-tail steals happen only after targets are "
        "published.",
        check_one_shot_phase_order,
    ),
    Invariant(
        "dynamic-endgame",
        "AID-dynamic switches to dynamic(m) at or below M*NT remaining; "
        "no phase joins afterwards.",
        check_dynamic_endgame,
    ),
    Invariant(
        "steal-partition",
        "AID-steal partitions contiguously in-bounds; steals are exact "
        "two-way cuts of the victim's range.",
        check_steal_partition,
    ),
    Invariant(
        "fault-requeue-conservation",
        "Iterations served from the requeue deque were first returned "
        "by fault recovery, at most as often as they were returned.",
        check_fault_requeue_conservation,
    ),
    Invariant(
        "offline-no-dispatch",
        "A worker parked by a core-offline fault takes no new chunk "
        "until its core comes back online.",
        check_offline_no_dispatch,
    ),
    Invariant(
        "watchdog-redistributes",
        "With the watchdog armed, a stall well past the timeout must "
        "produce at least one redistribution.",
        check_watchdog_redistributes,
    ),
)


def run_invariants(obs: CheckContext) -> list[Violation]:
    """Run the whole catalog over one observation."""
    out: list[Violation] = []
    for inv in INVARIANTS:
        out.extend(inv.check(obs))
    return out
