"""Kernel profiles: the performance-relevant character of a loop body."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError


@dataclass(frozen=True)
class KernelProfile:
    """Architecture-independent description of a loop body's code.

    These four numbers are what decide the loop's big-to-small speedup
    factor on any given platform:

    Attributes:
        name: label for traces and reports.
        compute_weight: fraction of execution bound by instruction
            throughput (the rest is bound by data delivery). 1.0 = purely
            compute-bound (e.g. NAS EP), 0.0 = purely streaming.
        ilp: how well the code exploits a wide out-of-order pipeline, in
            [0, 1]. 0 = serial dependency chain (an in-order core is just
            as good per cycle), 1 = ILP-rich straight-line FP code.
        working_set_mb: per-thread working set in MiB, used against LLC
            capacity to decide whether data is served from cache or DRAM.
        cache_pressure: multiplier on the working set when deciding cache
            fit under co-running threads (captures conflict misses /
            shared-data effects); 1.0 for plain private working sets.
        mlp: memory-level parallelism of the access pattern, in [0, 1].
            1 = streaming/prefetchable (DRAM misses are bandwidth-bound,
            similar on every core); 0 = dependent pointer chases (DRAM
            misses are latency-bound, crippling for small in-order cores).
        coherence_penalty: additional data-access latency (inverse-speed
            units) caused by sharing writable cache lines with co-running
            threads — false sharing / coherence ping-pong. Charged only
            when co-runners exist, scaled by the platform's coherence
            cost (cross-cluster CCI traffic on big.LITTLE is far more
            expensive than a Xeon's on-die L3), and — being an *absolute*
            time cost — it flattens the big-to-small ratio: the paper's
            blackscholes story.
    """

    name: str
    compute_weight: float
    ilp: float
    working_set_mb: float
    cache_pressure: float = 1.0
    mlp: float = 0.7
    coherence_penalty: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.compute_weight <= 1.0:
            raise WorkloadError(
                f"kernel {self.name!r}: compute_weight must be in [0, 1]"
            )
        if not 0.0 <= self.ilp <= 1.0:
            raise WorkloadError(f"kernel {self.name!r}: ilp must be in [0, 1]")
        if self.working_set_mb < 0.0:
            raise WorkloadError(f"kernel {self.name!r}: working_set_mb must be >= 0")
        if self.cache_pressure <= 0.0:
            raise WorkloadError(f"kernel {self.name!r}: cache_pressure must be > 0")
        if not 0.0 <= self.mlp <= 1.0:
            raise WorkloadError(f"kernel {self.name!r}: mlp must be in [0, 1]")
        if self.coherence_penalty < 0.0:
            raise WorkloadError(
                f"kernel {self.name!r}: coherence_penalty must be >= 0"
            )

    @property
    def memory_weight(self) -> float:
        """Fraction of execution bound by data delivery."""
        return 1.0 - self.compute_weight

    def with_(self, **changes: object) -> "KernelProfile":
        """Return a copy with some fields replaced."""
        return replace(self, **changes)


#: Profile approximating the OpenMP runtime's own bookkeeping code:
#: scalar, branchy, tiny working set. Used to scale dispatch overheads.
RUNTIME_CODE = KernelProfile(
    name="runtime-bookkeeping",
    compute_weight=1.0,
    ilp=0.2,
    working_set_mb=0.0,
)

#: A perfectly compute-bound, ILP-rich kernel (upper end of SF range).
COMPUTE_BOUND = KernelProfile(
    name="compute-bound",
    compute_weight=1.0,
    ilp=1.0,
    working_set_mb=0.0,
)

#: A DRAM-streaming kernel (lower end of SF range).
STREAMING = KernelProfile(
    name="streaming",
    compute_weight=0.05,
    ilp=0.3,
    working_set_mb=64.0,
    mlp=1.0,
)

#: A pointer-chasing kernel that misses to DRAM: the access pattern that
#: punishes small in-order cores hardest (upper end of SF on big.LITTLE).
POINTER_CHASE = KernelProfile(
    name="pointer-chase",
    compute_weight=0.15,
    ilp=0.9,
    working_set_mb=16.0,
    mlp=0.0,
)

#: ILP-rich code over a working set that fits a big cluster's cache but
#: thrashes a small one — the loop class behind the paper's extreme
#: per-loop SFs (7.7x measured for CG, 8.9x max across all loops).
CACHE_CLIFF = KernelProfile(
    name="cache-cliff",
    compute_weight=0.35,
    ilp=1.0,
    working_set_mb=1.5,
    mlp=0.05,
)
