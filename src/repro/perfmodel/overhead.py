"""Runtime-system overhead model.

The paper's central tension: dynamic scheduling balances load on AMPs but
each shared-pool removal costs a runtime API call, and for fine-grained
loops (IS, CG, blackscholes) that overhead *negates* the asymmetry
benefit — slowdowns of up to 1.93x on Platform A and 2.86x on Platform B.
The AID methods win precisely by making fewer, larger removals.

We charge a fixed amount of "runtime work" per event and convert it to
seconds using the executing core's speed on runtime-style code (scalar,
branchy — big cores help, but much less than on FP loops).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amp.core import CoreType
from repro.errors import ConfigError


@dataclass(frozen=True)
class OverheadModel:
    """Costs of runtime-system operations, in seconds on the baseline core.

    Each cost is divided by the executing core type's
    ``runtime_call_speedup`` (big cores run the runtime's scalar code
    somewhat faster).

    Attributes:
        dispatch_cost: one ``GOMP_loop_*_next()`` call — the fetch-and-add
            pool removal plus function-call and cache-line-ping overhead.
            Default 1.5 microseconds, in line with published
            fine-grained-loop measurements of libgomp's dynamic schedule
            on small ARM cores.
        loop_start_cost: one ``GOMP_loop_*_start()`` call per thread.
        barrier_cost: per-thread cost of the implicit end-of-loop barrier.
        timestamp_cost: one clock_gettime via vsyscall; this is what the
            AID sampling phase adds on top of plain dynamic (the paper
            stresses it is cheap).
        atomic_contention: extra cost per dispatch per additional thread
            in the team, modeling fetch-and-add cache-line contention
            (0 disables).
        atomic_service: *serialized* portion of each pool removal — the
            fetch-and-add itself plus the cache-line transfer, which only
            one core can perform at a time. When the team's aggregate
            dispatch rate approaches ``1/atomic_service`` the work-share
            line saturates and threads queue on it; this is what turns
            dynamic(1) on a fine-grained loop from "some overhead" into
            the 2-3x collapses the paper measures, and what large AID
            removals avoid. Not scaled by core speed (the line transfer
            is an uncore/interconnect cost).
        wake_stagger: per-CPU-number delay with which the barrier release
            wakes threads into the next work-share (futex wake chains walk
            cores in index order, so low-numbered — i.e. *small* — cores
            reach the pool first). Irrelevant for static/dynamic/AID, but
            fatal for guided: the earliest arrivals receive the largest
            chunks, and a small core saddled with a huge early chunk is a
            straggler no other thread can relieve — the main reason guided
            never beats both static and dynamic on AMPs (paper Sec. 5).
        wake_jitter: maximum additional random wake delay per thread per
            loop (OS noise). Randomizes pool-arrival order between
            invocations, which is what makes dynamic/guided assignments
            non-repeatable run to run — and hence cold for the locality
            model — exactly as on real hardware.
    """

    dispatch_cost: float = 1.0e-6
    loop_start_cost: float = 1.0e-6
    barrier_cost: float = 2.0e-6
    timestamp_cost: float = 0.05e-6
    atomic_contention: float = 0.02e-6
    atomic_service: float = 0.95e-6
    wake_stagger: float = 0.5e-6
    wake_jitter: float = 2.0e-6

    def __post_init__(self) -> None:
        for name in (
            "dispatch_cost",
            "loop_start_cost",
            "barrier_cost",
            "timestamp_cost",
            "atomic_contention",
            "atomic_service",
            "wake_stagger",
            "wake_jitter",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"overhead {name} must be >= 0")

    def dispatch(self, core_type: CoreType, n_threads: int = 1) -> float:
        """Seconds charged for one pool removal on ``core_type``."""
        base = self.dispatch_cost + self.atomic_contention * max(0, n_threads - 1)
        return base / core_type.runtime_call_speedup

    def loop_start(self, core_type: CoreType) -> float:
        """Seconds charged for the per-thread loop-start call."""
        return self.loop_start_cost / core_type.runtime_call_speedup

    def barrier(self, core_type: CoreType, n_threads: int = 1) -> float:
        """Seconds charged for the implicit barrier at loop end."""
        return self.barrier_cost / core_type.runtime_call_speedup

    def timestamp(self, core_type: CoreType) -> float:
        """Seconds charged for one sampling-phase timestamp."""
        return self.timestamp_cost / core_type.runtime_call_speedup

    def scaled(self, factor: float) -> "OverheadModel":
        """A copy with every cost multiplied by ``factor`` (for ablations)."""
        if factor < 0.0:
            raise ConfigError("overhead scale factor must be >= 0")
        return OverheadModel(
            dispatch_cost=self.dispatch_cost * factor,
            loop_start_cost=self.loop_start_cost * factor,
            barrier_cost=self.barrier_cost * factor,
            timestamp_cost=self.timestamp_cost * factor,
            atomic_contention=self.atomic_contention * factor,
            atomic_service=self.atomic_service * factor,
            wake_stagger=self.wake_stagger * factor,
            wake_jitter=self.wake_jitter * factor,
        )


#: Overhead model with every cost zeroed (ideal runtime, for ablations).
ZERO_OVERHEAD = OverheadModel(
    dispatch_cost=0.0,
    loop_start_cost=0.0,
    barrier_cost=0.0,
    timestamp_cost=0.0,
    atomic_contention=0.0,
    atomic_service=0.0,
    wake_stagger=0.0,
    wake_jitter=0.0,
)
