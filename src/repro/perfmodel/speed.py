"""Execution-rate computation and speedup factors.

Rates follow a two-component roofline blend. For a core ``c`` and kernel
``K``:

* instruction throughput
  ``cpu = f_eff(c) * (1 + (uarch_speedup(c) - 1) * ilp(K))``
  — frequency helps everything; a wide out-of-order pipeline only helps
  code with ILP to exploit;
* data delivery
  ``mem = fit * cache_bw(c) + (1 - fit) * dram(c, K)`` where ``fit`` is
  the cache-fit fraction from the contention model and ``dram(c, K) =
  mlp(K) * dram_stream_bw(c) + (1 - mlp(K)) * dram_latency_bw(c)``
  distinguishes bandwidth-bound streaming misses (similar on every core)
  from latency-bound dependent misses (crippling on in-order cores);
* combined rate (harmonic blend, i.e. time components add)
  ``rate = 1 / (w/cpu + (1-w)/mem)``  with ``w = compute_weight(K)``.

One *work unit* of iteration cost takes ``1 / rate`` seconds. Rates are
relative — only ratios between cores matter — so the paper's speedup
factor of a loop on core type *j* is simply ``rate_j / rate_slowest``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.amp.core import Core, CoreType
from repro.amp.platform import Platform
from repro.errors import PlatformError
from repro.perfmodel.contention import ContentionModel
from repro.perfmodel.kernel import KernelProfile


def cpu_speed(core_type: CoreType, kernel: KernelProfile) -> float:
    """Instruction-throughput component of a core's speed for a kernel."""
    width_gain = 1.0 + (core_type.uarch_speedup - 1.0) * kernel.ilp
    return core_type.effective_freq_ghz * width_gain


def mem_speed(
    core_type: CoreType, kernel: KernelProfile, cache_fit_fraction: float
) -> float:
    """Data-delivery component, interpolating cache and DRAM tiers.

    The DRAM tier blends streaming and latency-bound delivery according
    to the kernel's memory-level parallelism.
    """
    f = cache_fit_fraction
    dram = (
        kernel.mlp * core_type.dram_stream_bw
        + (1.0 - kernel.mlp) * core_type.dram_latency_bw
    )
    return f * core_type.cache_bw + (1.0 - f) * dram


def blended_rate(
    core_type: CoreType,
    kernel: KernelProfile,
    cache_fit_fraction: float,
    coherence: float = 0.0,
) -> float:
    """Harmonic blend of compute and memory components.

    ``coherence`` is an additive inverse-speed term on the data path
    (ping-ponging shared lines costs the same absolute time on every
    core, so it compresses big-to-small ratios).
    """
    cpu = cpu_speed(core_type, kernel)
    w = kernel.compute_weight
    if w >= 1.0:
        return cpu
    mem = mem_speed(core_type, kernel, cache_fit_fraction)
    if coherence > 0.0:
        mem = 1.0 / (1.0 / mem + coherence)
    return 1.0 / (w / cpu + (1.0 - w) / mem)


@dataclass
class PerfModel:
    """Per-platform oracle for execution rates and speedup factors.

    Args:
        platform: the AMP being modeled.
        contention: cache-contention model (pass
            ``ContentionModel(enabled=False)`` for single-thread /
            offline-style rates).
    """

    platform: Platform
    contention: ContentionModel = field(default_factory=ContentionModel)

    def rate(
        self,
        cpu_id: int,
        kernel: KernelProfile,
        cpu_of_tid: Sequence[int] = (),
    ) -> float:
        """Work units per second for ``kernel`` on core ``cpu_id``.

        Args:
            cpu_id: the executing core.
            cpu_of_tid: CPU pinning of the whole team (used to count LLC
                co-runners). Empty means the thread runs alone.
        """
        core = self.platform.core(cpu_id)
        domain = self.platform.llc_domains[core.llc_domain]
        team = tuple(cpu_of_tid) or (cpu_id,)
        active = self.contention.active_threads_in_domain(
            self.platform, core.llc_domain, team
        )
        fit = self.contention.cache_fit_fraction(kernel, domain, max(1, active))
        coherence = 0.0
        if kernel.coherence_penalty > 0.0 and len(team) > 1:
            co_runners = (len(team) - 1) / max(1, self.platform.n_cores - 1)
            coherence = (
                kernel.coherence_penalty
                * self.platform.coherence_factor
                * co_runners
            )
        return blended_rate(core.core_type, kernel, fit, coherence)

    def solo_rate(self, cpu_id: int, kernel: KernelProfile) -> float:
        """Rate when the thread runs alone on the platform (offline mode)."""
        core = self.platform.core(cpu_id)
        domain = self.platform.llc_domains[core.llc_domain]
        solo = ContentionModel(enabled=False)
        fit = solo.cache_fit_fraction(kernel, domain, 1)
        return blended_rate(core.core_type, kernel, fit)

    def speedup_factor(
        self,
        kernel: KernelProfile,
        core_type: CoreType | str | None = None,
        cpu_of_tid: Sequence[int] = (),
    ) -> float:
        """Speedup of ``core_type`` over the slowest type for this kernel.

        With an empty ``cpu_of_tid`` this reproduces the paper's *offline*
        SF measurement (single-threaded big vs small run, Sec. 2);
        otherwise it is the *online* SF under the given team placement.
        """
        if core_type is None:
            core_type = self.platform.core_types[-1]
        fast_idx = self.platform.type_index(core_type)
        slow_cpu = self._representative_cpu(0)
        fast_cpu = self._representative_cpu(fast_idx)
        if cpu_of_tid:
            slow = self.rate(slow_cpu, kernel, cpu_of_tid)
            fast = self.rate(fast_cpu, kernel, cpu_of_tid)
        else:
            slow = self.solo_rate(slow_cpu, kernel)
            fast = self.solo_rate(fast_cpu, kernel)
        return fast / slow

    def _representative_cpu(self, type_index: int) -> int:
        ctype = self.platform.core_types[type_index]
        for core in self.platform.cores:
            if core.core_type == ctype:
                return core.cpu_id
        raise PlatformError(
            f"no core of type {ctype.name!r} on {self.platform.name}"
        )  # pragma: no cover - Platform validation prevents this

    def max_speedup_factor(self, kernels: Sequence[KernelProfile]) -> float:
        """Largest offline SF across a set of kernels (paper: 8.9x on A,
        2.3x on B)."""
        return max(self.speedup_factor(k) for k in kernels)
