"""Cross-invocation data-locality model.

The benchmark programs are iterative: the same parallel loop runs every
timestep over the same data. Under static scheduling thread *t* touches
the *same* iterations every invocation, so its slice of the data stays
resident in its cluster's cache; dynamic and guided hand out different
ranges every time ("the non-predictive behavior of this approach tends
to degrade data locality" — Ayguadé et al., quoted by the paper), so a
thread keeps faulting in data some other core touched last. AID-static
re-derives nearly identical per-thread blocks each invocation and so
retains most of static's locality — one of the reasons it beats dynamic
on uniform loops beyond mere dispatch-overhead savings.

We model it at segment granularity: each loop's iteration space is split
into segments; after every invocation each segment records which thread
executed it. During the next invocation, the portion of a range whose
segments the executing thread does *not* already own runs slower by
``penalty x memory_weight`` (compute-bound kernels do not care where
their data sits; streaming kernels re-fetch everything anyway, so the
penalty is also scaled down by how cacheable the working set is).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.perfmodel.kernel import KernelProfile


@dataclass
class LoopOwnership:
    """Which thread touched each iteration segment last, for one loop."""

    n_iterations: int
    segment_size: int
    owner: np.ndarray  # int16, -1 = never executed
    invocations_seen: int = 0

    @classmethod
    def fresh(cls, n_iterations: int, segments: int) -> "LoopOwnership":
        seg = max(1, n_iterations // max(1, segments))
        n_seg = (n_iterations + seg - 1) // seg
        return cls(
            n_iterations=n_iterations,
            segment_size=seg,
            owner=np.full(n_seg, -1, dtype=np.int16),
        )

    def warm_fraction(self, tid: int, lo: int, hi: int) -> float:
        """Fraction of [lo, hi) whose segments thread ``tid`` owns."""
        if hi <= lo:
            return 1.0
        s0 = lo // self.segment_size
        s1 = (hi - 1) // self.segment_size + 1
        segs = self.owner[s0:s1]
        if len(segs) == 0:
            return 1.0
        return float(np.count_nonzero(segs == tid)) / len(segs)

    def update(self, ranges: list[tuple[int, int, int]]) -> None:
        """Record one invocation's assignment: ``(tid, lo, hi)`` tuples."""
        if len(ranges) > 64:
            self._update_bulk(ranges)
        else:
            for tid, lo, hi in ranges:
                if hi <= lo:
                    continue
                s0 = lo // self.segment_size
                s1 = (hi - 1) // self.segment_size + 1
                self.owner[s0:s1] = tid
        self.invocations_seen += 1

    def _update_bulk(self, ranges: list[tuple[int, int, int]]) -> None:
        """Vectorized segment painting, identical to the scalar loop.

        Fine-grained dynamic schedules produce one range per chunk —
        hundreds of thousands per grid — and per-range numpy slice
        stores dominate. Instead, expand every range to its covered
        segment indices and fancy-assign once: numpy applies duplicate
        indices in order, so the last-written range wins exactly as in
        the sequential loop.
        """
        arr = np.asarray(ranges, dtype=np.int64)
        tids, los, his = arr[:, 0], arr[:, 1], arr[:, 2]
        live = his > los
        if not np.any(live):
            return
        tids, los, his = tids[live], los[live], his[live]
        seg = self.segment_size
        s0 = los // seg
        s1 = (his - 1) // seg + 1
        lens = s1 - s0
        total = int(lens.sum())
        # Concatenated aranges [s0_i, s1_i) built by cumsum: each block
        # starts at its s0 and then increments by one.
        steps = np.ones(total, dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
        steps[starts] = s0 - np.concatenate(([0], s0[:-1] + lens[:-1] - 1))
        seg_idx = np.cumsum(steps)
        self.owner[seg_idx] = np.repeat(
            tids.astype(self.owner.dtype), lens
        )


@dataclass(frozen=True)
class LocalityModel:
    """Converts cold (non-owned) iteration ranges into a slowdown.

    Attributes:
        penalty: maximum relative slowdown for a fully cold range of a
            fully memory-bound kernel (0.35 = 35% slower).
        segments: target segment count per loop (granularity of the
            ownership map).
        enabled: turn the model off entirely (ablation).
    """

    penalty: float = 0.35
    segments: int = 256
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.penalty < 0.0:
            raise ConfigError("locality penalty must be >= 0")
        if self.segments <= 0:
            raise ConfigError("segment count must be positive")

    def fresh_ownership(self, n_iterations: int) -> LoopOwnership:
        return LoopOwnership.fresh(n_iterations, self.segments)

    def slowdown(
        self,
        kernel: KernelProfile,
        ownership: LoopOwnership | None,
        tid: int,
        lo: int,
        hi: int,
    ) -> float:
        """Multiplier (>= 1) on the execution time of range [lo, hi).

        The first invocation of a loop is charged nothing (everyone
        starts cold; the paper likewise discards the first run of each
        program). Streaming kernels (mlp ~ 1, huge working sets) re-fetch
        from DRAM regardless of ownership, so the penalty scales with
        how much the kernel actually reuses cached data.
        """
        if (
            not self.enabled
            or ownership is None
            or ownership.invocations_seen == 0
        ):
            return 1.0
        cold = 1.0 - ownership.warm_fraction(tid, lo, hi)
        if cold <= 0.0:
            return 1.0
        reuse = kernel.memory_weight * (1.0 - 0.5 * kernel.mlp)
        return 1.0 + self.penalty * reuse * cold
