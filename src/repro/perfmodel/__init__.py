"""Performance model: platform + code characteristics -> execution speed.

This package answers the one question the paper's schedulers care about:
*how much faster does this loop run on a big core than on a small one?*
(the speedup factor, SF). Rather than hard-coding per-loop SF tables, we
derive the SF from a roofline-style blend of each loop body's
:class:`KernelProfile` (instruction-level parallelism, compute/memory
balance, working-set size) and the :class:`~repro.amp.core.CoreType`
attributes (frequency, duty cycle, micro-architecture width, cache and
DRAM delivery speeds). The same kernel profile therefore yields
*different* SFs on different platforms — exactly the effect behind the
paper's Fig. 2 — and SFs that degrade under LLC contention when several
threads co-run — the effect behind Fig. 9c.
"""

from repro.perfmodel.kernel import KernelProfile
from repro.perfmodel.speed import PerfModel, cpu_speed, mem_speed
from repro.perfmodel.contention import ContentionModel, llc_share
from repro.perfmodel.overhead import OverheadModel

__all__ = [
    "KernelProfile",
    "PerfModel",
    "cpu_speed",
    "mem_speed",
    "ContentionModel",
    "llc_share",
    "OverheadModel",
]
