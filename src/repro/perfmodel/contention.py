"""Shared-cache contention model.

The paper's Fig. 9c case study: blackscholes' offline-measured SF (from
single-threaded runs) is far higher than the SF the loop actually
achieves with 8 co-running threads, because the per-core-type shared LLC
on big.LITTLE is large enough for one thread's working set but not for
four. We model this with a fair-share capacity rule: a thread's data is
served at cache speed only while its (pressure-adjusted) working set fits
in its LLC domain's capacity divided by the number of co-running threads
in that domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.amp.cache import LLCDomain
from repro.amp.platform import Platform
from repro.perfmodel.kernel import KernelProfile


def llc_share(domain: LLCDomain, active_threads: int) -> float:
    """Per-thread LLC capacity (MiB) with ``active_threads`` co-runners."""
    return domain.share_for(active_threads)


@dataclass(frozen=True)
class ContentionModel:
    """Decides cache fit (and thus memory tier) per thread.

    Attributes:
        enabled: with ``False`` every working set is treated as if the
            thread ran alone (used to emulate the *offline* single-thread
            SF measurements of Sec. 2 / Fig. 9).
        smoothing: width of the transition between "fits" and "thrashes".
            0 gives a hard step; a small positive value interpolates the
            memory speed between cache and DRAM tiers across
            ``[share, share*(1+smoothing)]``, avoiding knife-edge
            behaviour in sweeps.
    """

    enabled: bool = True
    smoothing: float = 0.25

    def cache_fit_fraction(
        self,
        kernel: KernelProfile,
        domain: LLCDomain,
        active_threads: int,
    ) -> float:
        """Fraction of the kernel's data served at cache speed, in [0, 1].

        1.0 -> fully cache-resident, 0.0 -> fully DRAM-bound.
        """
        if kernel.working_set_mb == 0.0:
            return 1.0
        threads = active_threads if self.enabled else 1
        share = llc_share(domain, threads)
        demand = kernel.working_set_mb * (
            kernel.cache_pressure if (self.enabled and threads > 1) else 1.0
        )
        if demand <= share:
            return 1.0
        if self.smoothing <= 0.0:
            return 0.0
        upper = share * (1.0 + self.smoothing)
        if demand >= upper:
            return 0.0
        return (upper - demand) / (upper - share)

    def active_threads_in_domain(
        self,
        platform: Platform,
        domain_index: int,
        cpu_of_tid: Mapping[int, int] | tuple[int, ...],
    ) -> int:
        """Count the team's threads pinned inside LLC domain ``domain_index``.

        ``cpu_of_tid`` maps thread IDs to CPU numbers (any mapping or
        sequence indexable by TID works).
        """
        cpus = (
            cpu_of_tid.values()
            if isinstance(cpu_of_tid, Mapping)
            else tuple(cpu_of_tid)
        )
        dom_cpus = set(platform.llc_domains[domain_index].cpu_ids)
        return sum(1 for c in cpus if c in dom_cpus)
