"""``python -m repro.fleet`` — run registered experiment grids.

Usage::

    python -m repro.fleet list
    python -m repro.fleet smoke --jobs 2
    python -m repro.fleet fig6 fig7 --jobs 8 --timeout 120
    python -m repro.fleet fig8 --no-cache --summary-json fleet.json
    python -m repro.fleet fig6 --backend vectorized --trajectory perf.jsonl
    python -m repro.fleet --resume          # continue a killed sweep
    python -m repro.fleet scrub --json report.json
    python -m repro.fleet chaos --plans 50 --jobs 2 --json chaos.json

Every invocation prints the regenerated grid table(s) plus a fleet
summary line (submitted / cached / computed / retried / failed).
``--summary-json`` additionally writes the counters as JSON — the CI
smoke job asserts ``cache_hits >= 1`` on a warm rerun from exactly that
file — and ``--events-jsonl`` dumps the per-job event log.

``--obs-snapshot PATH`` writes the merged fleet-level observability
snapshot (fleet counters + every job's worker-side metrics + the
combined decision summary); CI diffs the warm rerun's snapshot against
the cold one with ``python -m repro.obs.report diff`` and fails on
regressions. ``--trajectory PATH`` appends one run-over-run trend
record (cache-hit rate, runtime-overhead seconds, wall clock) to the
perf observatory history.

**Resumable sweeps.** Whenever the cache is enabled, the run journals
its plan and every terminal job state to ``checkpoint.jsonl`` beside the
cache (``--checkpoint`` points it elsewhere; ``--no-cache`` disables it
unless ``--checkpoint`` is explicit). After a crash or SIGKILL,
``--resume`` reloads the journal, reconstructs the sweep (grids, seed,
backend) from its ``begin`` metadata, and reruns it — completed cells
replay instantly from the cache, so only unacknowledged work is
recomputed, and the resumed sweep's grid tables and merged obs snapshot
are byte-identical to an uninterrupted run (modulo cache-temperature
counters).

**Maintenance.** ``scrub`` fsck's the cache: verifies every entry's
name, shard placement, schema and digests, quarantines corruption,
repairs the layout manifest and rebuilds the LRU index
(``--prune-stale`` also garbage-collects entries from older code
versions; ``--json PATH`` writes the machine-readable report CI
archives). ``--max-cache-bytes`` bounds the store with deterministic
LRU eviction, and ``--dispatcher`` picks the execution seam (``inline``,
``process``, ``local``).

**Supervision.** Every run gets one
:class:`~repro.fleet.supervisor.Supervisor` shared across its grids:
EWMA-based hang detection, poison-job quarantine (quarantined cells are
journaled as ``poisoned`` with their reason and skipped by later
sweeps), and per-dispatcher circuit breakers that degrade
``process -> local -> inline`` when a tier's infrastructure keeps
failing. On ``--resume``, previously failed or poisoned cells print as
a "previously failed" table with their recorded reasons.

**Chaos.** ``chaos`` runs the deterministic infrastructure-chaos check
(:mod:`repro.fleet.chaos`): ``--plans N`` seeded ChaosPlans (worker
kills/stalls, cache I/O faults, pool-break storms) each swept over a
small standard grid and byte-compared against the fault-free run;
``--poison K`` adds K poison jobs per plan and asserts exactly those are
quarantined. ``--mode real`` uses genuine SIGKILLs in process workers
instead of simulated crashes. Exit 1 on any mismatch; ``--json``
writes the full report with every failing plan replayable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.errors import ReproError
from repro.fleet.cache import ResultCache
from repro.fleet.checkpoint import SweepCheckpoint
from repro.fleet.progress import FleetProgress


def _fig6_grid(seed: int):
    from repro.amp.presets import odroid_xu4
    from repro.experiments.harness import default_configs
    from repro.workloads.registry import all_programs

    return odroid_xu4(), all_programs(), default_configs()


def _fig7_grid(seed: int):
    from repro.amp.presets import xeon_emulated
    from repro.experiments.harness import default_configs
    from repro.workloads.registry import all_programs

    return xeon_emulated(), all_programs(), default_configs()


def _fig8_grid(seed: int):
    from repro.amp.presets import odroid_xu4
    from repro.experiments.fig8 import DYNAMIC_FRIENDLY, _configs
    from repro.workloads.registry import get_program

    return (
        odroid_xu4(),
        tuple(get_program(p) for p in DYNAMIC_FRIENDLY),
        _configs(),
    )


def _smoke_grid(seed: int):
    from repro.amp.presets import odroid_xu4
    from repro.experiments.harness import default_configs
    from repro.workloads.registry import get_program

    return (
        odroid_xu4(),
        (get_program("EP"), get_program("streamcluster")),
        default_configs()[:3] + default_configs()[4:5],
    )


#: name -> (grid builder, description). A builder returns the
#: (platform, programs, configs) triple run_grid consumes.
GRIDS = {
    "fig6": (_fig6_grid, "Fig. 6 grid: 21 programs x 7 configs, Platform A"),
    "fig7": (_fig7_grid, "Fig. 7 grid: 21 programs x 7 configs, Platform B"),
    "fig8": (_fig8_grid, "Fig. 8 chunk-sensitivity grid, Platform A"),
    "smoke": (_smoke_grid, "tiny 2-program x 4-config CI smoke grid"),
}


def _run_scrub(cache: ResultCache | None, args) -> int:
    """The ``scrub`` maintenance command: fsck the result cache."""
    if cache is None:
        print("error: scrub needs a cache (drop --no-cache)", file=sys.stderr)
        return 2
    report = cache.scrub(prune_stale=args.prune_stale)
    print(report.format_text())
    if args.json_report:
        Path(args.json_report).write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 0


def _run_chaos(args) -> int:
    """The ``chaos`` command: byte-equality-under-chaos check."""
    from repro.fleet.chaos import run_chaos_check

    code, report = run_chaos_check(
        plans=args.plans,
        seed=args.seed if args.seed is not None else 0,
        poison=args.poison,
        mode=args.chaos_mode,
        dispatcher=args.dispatcher or "local",
        jobs=max(args.jobs, 2),
    )
    if args.json_report:
        Path(args.json_report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Run registered experiment grids through the fleet.",
    )
    parser.add_argument(
        "names", nargs="*",
        help="grid names (see 'list'): " + ", ".join(GRIDS)
        + "; or the 'scrub' / 'chaos' maintenance commands; may be "
        "empty with --resume",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = serial in-process)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default $FLEET_CACHE_DIR or "
        ".fleet-cache)",
    )
    parser.add_argument(
        "--max-cache-bytes", type=int, default=None, metavar="N",
        help="bound the result cache to N bytes of live entries "
        "(deterministic LRU eviction; default $FLEET_CACHE_MAX_BYTES "
        "or unbounded)",
    )
    parser.add_argument(
        "--dispatcher", default=None, metavar="NAME",
        help="fleet dispatcher: inline, process or local (default: "
        "$REPRO_FLEET_DISPATCHER, then chosen from --jobs)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="sweep checkpoint journal (default: checkpoint.jsonl beside "
        "the cache when caching is on; with --no-cache, no journal "
        "unless this flag is given)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the sweep recorded in the checkpoint journal: grid "
        "names, seed and backend come from the journal unless given "
        "explicitly; completed cells replay from the cache",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-job wall-clock deadline in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="retry budget per job (default 2)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="workload seed (default 0, or the journal's on --resume)",
    )
    parser.add_argument(
        "--prune-stale", action="store_true",
        help="(scrub) also delete entries from older code versions",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_report",
        help="(scrub/chaos) write the machine-readable report here",
    )
    parser.add_argument(
        "--plans", type=int, default=1, metavar="N",
        help="(chaos) number of seeded chaos plans to sweep (default 1)",
    )
    parser.add_argument(
        "--poison", type=int, default=0, metavar="K",
        help="(chaos) poison jobs injected per plan (default 0); the "
        "check then asserts exactly those digests are quarantined",
    )
    parser.add_argument(
        "--mode", default="sim", choices=("sim", "real"), dest="chaos_mode",
        help="(chaos) worker-kill mechanism: 'sim' raises in-process "
        "(exact attribution), 'real' SIGKILLs worker processes",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="execution backend for every cell (reference, vectorized, "
        "real; default: $REPRO_BACKEND, then reference). Part of each "
        "job's digest, so different backends never share cache entries",
    )
    parser.add_argument(
        "--trace-spans", default=None, metavar="CONTEXT", nargs="?",
        const="fleet",
        help="record causal span traces in every cell under this trace "
        "context (default 'fleet' when the flag is given bare); the "
        "merged obs snapshot then carries one span tree per cell and "
        "'python -m repro.obs.report critpath' can explain the makespan",
    )
    parser.add_argument(
        "--summary-json", default=None, metavar="PATH",
        help="write the fleet counter summary as JSON",
    )
    parser.add_argument(
        "--events-jsonl", default=None, metavar="PATH",
        help="write the per-job event log as JSONL",
    )
    parser.add_argument(
        "--obs-snapshot", default=None, metavar="PATH",
        help="write the merged fleet-level observability snapshot",
    )
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="append a run record to this trajectory JSONL history",
    )
    args = parser.parse_args(argv)

    if args.names == ["list"]:
        for name, (_, desc) in GRIDS.items():
            print(f"{name:<8s} {desc}")
        return 0

    try:
        cache = None if args.no_cache else ResultCache(
            args.cache_dir, max_bytes=args.max_cache_bytes
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.names == ["scrub"]:
        return _run_scrub(cache, args)
    if args.names == ["chaos"]:
        return _run_chaos(args)

    # Resolve the checkpoint journal: beside the cache by default, an
    # explicit --checkpoint anywhere, no journal only when both are off.
    checkpoint_path = args.checkpoint
    if checkpoint_path is None and cache is not None:
        checkpoint_path = str(cache.root / "checkpoint.jsonl")

    backend_arg = args.backend
    seed = args.seed
    if args.resume:
        if checkpoint_path is None:
            print(
                "error: --resume needs a checkpoint journal "
                "(--checkpoint, or drop --no-cache)", file=sys.stderr,
            )
            return 2
        try:
            state = SweepCheckpoint.load(checkpoint_path)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        meta = state.meta
        if not args.names:
            args.names = [str(n) for n in meta.get("grids", [])]
        if not args.names:
            print(
                f"error: {checkpoint_path} has no resumable sweep "
                "metadata", file=sys.stderr,
            )
            return 2
        if seed is None and "seed" in meta:
            seed = int(meta["seed"])
        if backend_arg is None:
            backend_arg = meta.get("backend")
        summary = state.summary()
        print(
            f"resuming from {checkpoint_path}: "
            f"{summary['done']} done, {summary['failed']} failed, "
            f"{summary['poisoned']} poisoned, "
            f"{summary['pending']} pending of {summary['planned']} planned"
            + (" (sweep had already completed)" if state.ended else "")
        )
        failure_table = state.failure_table()
        if failure_table:
            print("previously failed:")
            print(failure_table)
    seed = 0 if seed is None else seed

    if not args.names:
        print("error: no grid names given (see 'list')", file=sys.stderr)
        return 2
    unknown = [n for n in args.names if n not in GRIDS]
    if unknown:
        print(f"unknown grids: {unknown}", file=sys.stderr)
        print(f"available: {', '.join(GRIDS)}", file=sys.stderr)
        return 2

    # Imported here so `list` and argparse errors never pay for the
    # experiment stack.
    from repro.backends import resolve_backend_name
    from repro.experiments.harness import run_grid

    try:
        # Pin the selection now: an invalid --backend (or a typo'd
        # REPRO_BACKEND) fails before any grid starts, and the resolved
        # name lands in the snapshot/trajectory metadata below.
        backend = resolve_backend_name(backend_arg)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(checkpoint_path)
        checkpoint.begin(
            {
                "tool": "fleet",
                "grids": list(args.names),
                "seed": seed,
                "backend": backend,
                "jobs": args.jobs,
            }
        )
    progress = FleetProgress()
    # One supervisor for the whole invocation: breaker and poison state
    # span grids, so a tier broken in the first grid stays avoided.
    from repro.fleet.supervisor import Supervisor

    supervisor = Supervisor()
    status = 0
    t_start = time.perf_counter()
    for name in args.names:
        builder, desc = GRIDS[name]
        platform, programs, configs = builder(seed)
        t0 = time.perf_counter()
        try:
            grid = run_grid(
                platform,
                programs=programs,
                configs=configs,
                root_seed=seed,
                jobs=args.jobs,
                cache=cache,
                timeout=args.timeout,
                retries=args.retries,
                progress=progress,
                backend=backend,
                trace_context=args.trace_spans,
                checkpoint=checkpoint,
                dispatcher=args.dispatcher,
                supervisor=supervisor,
            )
        except ReproError as exc:
            print(f"{name}: FAILED: {exc}", file=sys.stderr)
            status = 1
            continue
        elapsed = time.perf_counter() - t0
        print(f"{'=' * 72}\n{name}: {desc}  [{elapsed:.1f}s]\n{'=' * 72}")
        print(grid.to_table())
        print()
    print(progress.format_summary())
    if args.summary_json:
        Path(args.summary_json).write_text(
            json.dumps(progress.summary(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.events_jsonl:
        progress.write_events_jsonl(args.events_jsonl)
    if args.obs_snapshot or args.trajectory:
        from repro.obs.snapshot import to_json
        from repro.obs.trajectory import TrajectoryStore, snapshot_metrics

        # "jobs" is volatile meta: comparable_snapshot strips it, so
        # --jobs 1 and --jobs N runs stay byte-identical where required.
        doc = progress.obs_snapshot(
            meta={
                "grids": "+".join(args.names),
                "seed": seed,
                "jobs": args.jobs,
                "backend": backend,
            }
        )
        if args.obs_snapshot:
            Path(args.obs_snapshot).write_text(
                to_json(doc), encoding="utf-8"
            )
        if args.trajectory:
            metrics = snapshot_metrics(doc)
            metrics["wall_clock_seconds"] = time.perf_counter() - t_start
            TrajectoryStore(args.trajectory).append(
                "fleet:" + "+".join(args.names),
                metrics,
                meta={
                    "seed": seed, "jobs": args.jobs,
                    "backend": backend,
                },
            )
    if checkpoint is not None:
        if status == 0:
            # Only a fully successful sweep gets the ``end`` record; a
            # failed one stays resumable.
            checkpoint.finish()
        else:
            checkpoint.close()
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
