"""``repro.fleet`` — parallel experiment orchestration with caching.

The paper's evaluation is a large grid (21 programs x 7 schedules x 2
platforms, plus sweeps), and every cell is an independent deterministic
simulation — embarrassingly parallel work with wildly heterogeneous cell
costs. This subsystem turns the serial
:func:`repro.experiments.harness.run_grid` loop into a fleet:

* :mod:`~repro.fleet.jobs` — frozen :class:`JobSpec` work units with a
  stable salted content digest;
* :mod:`~repro.fleet.cache` — a content-addressed on-disk
  :class:`ResultCache`: digest-prefix sharded with a versioned layout
  manifest (legacy flat caches migrate in place), size-bounded
  deterministic LRU eviction with pinning — so unchanged cells are
  instant hits across bench reruns and CI;
* :mod:`~repro.fleet.scrub` — :func:`scrub_cache`, the cache's fsck:
  verify every entry, quarantine corruption, repair the manifest,
  rebuild the index;
* :mod:`~repro.fleet.checkpoint` — :class:`SweepCheckpoint`, an
  append-only JSONL journal making sweeps resumable after a crash
  (``python -m repro.fleet --resume``);
* :mod:`~repro.fleet.pool` — :func:`run_jobs`: process-pool execution
  with LPT (longest-first) dispatch, per-job timeouts, bounded retry
  with backoff, broken-pool recovery, and graceful degradation to
  inline serial execution;
* :mod:`~repro.fleet.dispatch` — the :class:`Dispatcher` seam behind
  :func:`run_jobs` (``process`` pool, in-process ``local`` worker
  group, serial ``inline``), all feeding the same submission-order
  observability merge;
* :mod:`~repro.fleet.progress` — :class:`FleetProgress` counters and a
  per-job event log riding the standard observability registry, plus
  the merged per-job observability capture: every worker runs its job
  with a live ``Observability`` bundle, ships a compact snapshot home in
  the :class:`JobResult`, and the pool folds them (in submission order)
  into one fleet-level view — cached results replay their stored
  snapshot, so warm runs report identical metrics;
* :mod:`~repro.fleet.supervisor` — :class:`Supervisor`: worker
  heartbeats with EWMA-based hang detection, poison-job quarantine,
  per-dispatcher circuit breakers degrading ``process -> local ->
  inline``, and seeded digest-keyed retry jitter;
* :mod:`~repro.fleet.chaos` — the deterministic infrastructure-chaos
  harness: seeded, JSON-round-trippable :class:`ChaosPlan`\\ s inject
  worker kills/stalls, cache I/O errors and pool-break storms, and
  ``python -m repro.fleet chaos`` asserts sweeps stay byte-identical to
  the fault-free run under them;
* ``python -m repro.fleet`` — CLI running any registered grid
  (see :mod:`~repro.fleet.cli`), with ``--obs-snapshot`` /
  ``--trajectory`` feeding the perf-regression observatory.

The simulator is deterministic, so fleet results are cell-for-cell
identical to the serial harness — parallelism and caching change wall
time, never numbers (and never metrics: the merged snapshot is
byte-identical across ``jobs=1``/``jobs=N``/warm reruns, modulo
wall-clock fields).
"""

from __future__ import annotations

from repro.fleet.cache import ResultCache
from repro.fleet.chaos import ChaosCache, ChaosEngine, ChaosPlan
from repro.fleet.chaos import random_plan as random_chaos_plan
from repro.fleet.checkpoint import CheckpointState, SweepCheckpoint
from repro.fleet.dispatch import DISPATCHERS, Dispatcher
from repro.fleet.jobs import CODE_SALT, JobResult, JobSpec
from repro.fleet.pool import (
    FleetConfig,
    FleetOutcome,
    require_ok,
    run_jobs,
)
from repro.fleet.progress import FleetProgress, NullFleetProgress
from repro.fleet.scrub import ScrubReport, scrub_cache
from repro.fleet.supervisor import (
    DEGRADATION,
    BreakerOpen,
    Supervisor,
    SupervisorConfig,
)

__all__ = [
    "NullFleetProgress",
    "CODE_SALT",
    "JobSpec",
    "JobResult",
    "ResultCache",
    "CheckpointState",
    "SweepCheckpoint",
    "Dispatcher",
    "DISPATCHERS",
    "DEGRADATION",
    "BreakerOpen",
    "Supervisor",
    "SupervisorConfig",
    "ChaosPlan",
    "ChaosEngine",
    "ChaosCache",
    "random_chaos_plan",
    "ScrubReport",
    "scrub_cache",
    "FleetConfig",
    "FleetOutcome",
    "FleetProgress",
    "run_jobs",
    "require_ok",
]
