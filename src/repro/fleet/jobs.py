"""The fleet's unit of work: one grid cell as a frozen, digestable job.

A :class:`JobSpec` captures everything that determines a simulated run's
outcome — program, platform, OMP environment, root seed, the
performance-model knobs and the execution backend — as picklable frozen
dataclasses, so the same
spec can execute in-process, in a worker process, or be skipped entirely
when the content-addressed cache already holds its result.

The digest is computed over a *canonical payload*: every constituent
dataclass is walked field-by-field into plain JSON types, serialized
with sorted keys and hashed with SHA-256. Two specs that would produce
the same simulation are therefore the same cache entry, regardless of
object identity, process, or construction order. A code-version salt
(:data:`CODE_SALT`) is mixed in so that bumping the package version or
the result schema invalidates every stale entry at once — the simulator
is deterministic *per code version*, not across refactors.

Display-only attributes (``label``) are deliberately excluded from the
digest: renaming a column must not recompute the grid.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass
from functools import cached_property
from typing import Mapping

import numpy as np

from repro._version import __version__
from repro.amp.platform import Platform
from repro.errors import FleetError
from repro.perfmodel.contention import ContentionModel
from repro.perfmodel.overhead import OverheadModel
from repro.runtime.env import OmpEnv
from repro.workloads.program import Program

#: Result document format identifier (bump to invalidate cached results
#: whose *shape* changed even if the simulation did not).
#: v2: results carry the per-job observability snapshot (``obs_json``).
#: v3: the snapshot gained time-resolved instruments (timeseries and
#: quantile digests), so cached v2 entries lack the new data.
#: v4: span-tracing jobs attach the causal span trace to the per-job
#: snapshot (``JOB_SCHEMA`` v3), so cached v3 entries lack span trees.
RESULT_SCHEMA = "repro.fleet.result/v4"

#: Code-version salt mixed into every digest. Any release that changes
#: simulated numbers bumps ``__version__`` and thereby every digest.
CODE_SALT = f"{__version__}/{RESULT_SCHEMA}"


def canonical(obj: object) -> object:
    """Reduce an object tree to canonical JSON-serializable form.

    Dataclasses become ``{"__type__": ClassName, field: ...}`` dicts
    (private fields skipped), mappings get stringified sorted keys, and
    numpy scalars collapse to their Python values. Anything else must
    already be a JSON scalar — unknown types raise
    :class:`~repro.errors.FleetError` rather than hashing an unstable
    ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, object] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            if f.name.startswith("_"):
                continue
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, Mapping):
        return {
            str(k): canonical(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, np.generic):
        return obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise FleetError(
        f"cannot canonicalize {type(obj).__name__!r} for a job digest"
    )


@dataclass(frozen=True)
class JobSpec:
    """One (program, platform, environment) cell, ready to run anywhere.

    Attributes:
        program: the benchmark program model.
        platform: the AMP to simulate.
        env: OMP environment (schedule, team size, affinity).
        root_seed: workload RNG seed.
        overhead: runtime-call cost model override (None = defaults).
        contention: LLC contention model override (None = defaults).
        use_offline_sf: run the AID-static(offline-SF) variant of Fig. 9
            — skip sampling, distribute by offline per-loop SF tables.
            Only valid with an ``aid_static`` schedule.
        capture_sf_loop: loop name whose per-invocation estimated-SF
            series the result should carry (Fig. 9c needs this for
            ``bs.price``); None captures nothing.
        backend: execution-backend name (``"reference"``,
            ``"vectorized"``, ``"real"``). ``None`` is resolved at
            construction — environment override, then the default — so
            the frozen spec always carries a concrete name: the job
            executes identically wherever it lands (worker processes do
            not consult ``REPRO_BACKEND``), and the digest incorporates
            the backend identity, so results computed under different
            backends never collide in the cache.
        trace_context: when set, the job runs with a causal span
            recorder (:class:`repro.obs.spans.SpanRecorder`) under this
            context label and the canonical span trace rides home inside
            the result's observability snapshot. Part of the digest —
            span-bearing results have a different shape than span-free
            ones, so they must not collide in the cache — but the spans
            themselves are deterministic, so jobs=1 / jobs=N / warm
            cache replays carry byte-identical traces. ``None`` (the
            default) records no spans and leaves results byte-unchanged.
        label: display label for reports and event logs. Excluded from
            the digest: renaming a grid column must stay a cache hit.
    """

    program: Program
    platform: Platform
    env: OmpEnv
    root_seed: int = 0
    overhead: OverheadModel | None = None
    contention: ContentionModel | None = None
    use_offline_sf: bool = False
    capture_sf_loop: str | None = None
    backend: str | None = None
    trace_context: str | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.use_offline_sf and not self.env.schedule.startswith(
            "aid_static"
        ):
            raise FleetError(
                "use_offline_sf reproduces the AID-static(offline-SF) "
                f"variant and needs an aid_static schedule, got "
                f"{self.env.schedule!r}"
            )
        # Pin the backend to a concrete registered name (frozen
        # dataclass, hence the setattr). Raises BackendError for unknown
        # names, including an invalid environment override.
        from repro.backends import resolve_backend_name

        object.__setattr__(
            self, "backend", resolve_backend_name(self.backend)
        )

    def payload(self, salt: str | None = None) -> dict:
        """The canonical identity payload the digest hashes."""
        return {
            "salt": CODE_SALT if salt is None else salt,
            "program": canonical(self.program),
            "platform": canonical(self.platform),
            "env": canonical(self.env),
            "root_seed": self.root_seed,
            "overhead": canonical(self.overhead),
            "contention": canonical(self.contention),
            "use_offline_sf": self.use_offline_sf,
            "capture_sf_loop": self.capture_sf_loop,
            "backend": self.backend,
            "trace_context": self.trace_context,
        }

    def digest(self, salt: str | None = None) -> str:
        """Stable SHA-256 content digest of this job."""
        text = json.dumps(
            self.payload(salt), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @cached_property
    def key(self) -> str:
        """The digest under the current :data:`CODE_SALT`, memoized."""
        return self.digest()

    @property
    def profile_key(self) -> str:
        """Coarse key for duration estimates (LPT ordering): the same
        (program, schedule, platform) tends to cost the same wall time
        even across seeds and code versions."""
        return "|".join(
            (self.program.name, self.env.schedule, self.env.affinity,
             self.platform.name, self.backend or "")
        )

    def describe(self) -> str:
        label = self.label or f"{self.env.schedule}({self.env.affinity})"
        return f"{self.program.name} / {label} @ {self.platform.name}"

    def execute(self) -> "JobResult":
        """Run the cell in this process and package the outcome.

        Mirrors :func:`repro.experiments.harness.run_one` (plus the
        Fig. 9 offline-SF variant), so fleet results are cell-for-cell
        identical to the serial harness.
        """
        # Imported lazily: experiments.harness routes its grids through
        # the fleet, so a top-level import would be a cycle.
        from repro.experiments.harness import offline_sf_tables
        from repro.obs import Observability, SpanRecorder
        from repro.obs.merge import job_snapshot_json
        from repro.runtime.program_runner import ProgramRunner

        schedule_override = None
        needs_offline = self.env.schedule_spec().needs_offline_sf
        if self.use_offline_sf:
            from repro.sched.aid_static import AidStaticSpec

            schedule_override = AidStaticSpec(use_offline_sf=True)
            needs_offline = True
        # Every fleet job runs with a live observability bundle: the
        # instrumentation never perturbs simulated numbers, and the
        # compact snapshot rides home in the result (so cached replays
        # report the very same metrics as the run that produced them).
        obs = Observability(
            spans=(
                SpanRecorder(context=self.trace_context)
                if self.trace_context is not None
                else None
            )
        )
        runner = ProgramRunner(
            self.platform,
            self.env,
            overhead=self.overhead,
            contention=self.contention,
            root_seed=self.root_seed,
            obs=obs,
            offline_sf_tables=(
                offline_sf_tables(self.platform, self.program)
                if needs_offline
                else None
            ),
            schedule_override=schedule_override,
            backend=self.backend,
        )
        t0 = time.perf_counter()
        result = runner.run(self.program)
        duration = time.perf_counter() - t0
        sf_series: tuple[tuple[tuple[int, float], ...], ...] | None = None
        if self.capture_sf_loop is not None:
            sf_series = tuple(
                tuple(sorted(sf.items()))
                for sf in result.estimated_sf_series(self.capture_sf_loop)
            )
        return JobResult(
            digest=self.key,
            program=self.program.name,
            schedule=result.schedule_name,
            completion_time=result.completion_time,
            serial_time=result.serial_time,
            total_dispatches=result.total_dispatches,
            duration=duration,
            sf_series=sf_series,
            obs_json=job_snapshot_json(obs),
        )


@dataclass(frozen=True)
class JobResult:
    """The JSON-round-trippable outcome of one job.

    Deliberately lean: the grid harnesses need completion times (plus
    the Fig. 9c SF series), not full :class:`ProgramResult` objects, and
    lean results keep cache entries small and rehydration exact.

    Attributes:
        digest: content digest of the producing spec.
        program: program name.
        schedule: schedule label as reported by the runner.
        completion_time: simulated wall time of the run (seconds).
        serial_time: simulated time in serial phases.
        total_dispatches: scheduler dispatch count across all loops.
        duration: real wall-clock seconds the simulation took (feeds
            the LPT duration estimates; telemetry, so excluded from
            equality — two runs of the same job are the *same result*
            however long the host took).
        sf_series: captured estimated-SF series, as sorted (core-type
            index, SF) pairs per invocation, or None.
        obs_json: the per-job observability snapshot
            (:func:`repro.obs.merge.job_snapshot_json`) as a canonical
            JSON string — a string so results stay hashable, canonical
            so snapshot equality is string equality. Everything in it is
            simulated-time, so it *is* compared: a replayed cache entry
            must report the same metrics as the run that produced it.
    """

    digest: str
    program: str
    schedule: str
    completion_time: float
    serial_time: float
    total_dispatches: int
    duration: float = dataclasses.field(compare=False)
    sf_series: tuple[tuple[tuple[int, float], ...], ...] | None = None
    obs_json: str | None = None

    def obs_snapshot(self) -> dict | None:
        """The per-job observability snapshot as a document, if any."""
        return None if self.obs_json is None else json.loads(self.obs_json)

    def sf_series_dicts(self) -> list[dict[int, float]]:
        """The captured SF series in the runner's dict-per-invocation
        form (what :meth:`ProgramResult.estimated_sf_series` returns)."""
        if self.sf_series is None:
            return []
        return [dict(inv) for inv in self.sf_series]

    def to_payload(self) -> dict:
        doc = dataclasses.asdict(self)
        if self.sf_series is not None:
            doc["sf_series"] = [
                [[j, sf] for j, sf in inv] for inv in self.sf_series
            ]
        # Embed the obs snapshot as a document, not a nested JSON string:
        # cache entries stay greppable and diffable.
        doc.pop("obs_json", None)
        if self.obs_json is not None:
            doc["obs"] = json.loads(self.obs_json)
        return doc

    @classmethod
    def from_payload(cls, payload: Mapping) -> "JobResult":
        try:
            sf_series = payload.get("sf_series")
            obs = payload.get("obs")
            return cls(
                digest=str(payload["digest"]),
                program=str(payload["program"]),
                schedule=str(payload["schedule"]),
                completion_time=float(payload["completion_time"]),
                serial_time=float(payload["serial_time"]),
                total_dispatches=int(payload["total_dispatches"]),
                duration=float(payload["duration"]),
                sf_series=(
                    None
                    if sf_series is None
                    else tuple(
                        tuple((int(j), float(sf)) for j, sf in inv)
                        for inv in sf_series
                    )
                ),
                obs_json=(
                    None
                    if obs is None
                    else json.dumps(
                        obs, sort_keys=True, separators=(",", ":")
                    )
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed job-result payload: {exc}") from exc
