"""Content-addressed on-disk result store for fleet jobs.

Layout (under ``.fleet-cache/`` or ``$FLEET_CACHE_DIR``)::

    <root>/
      aa/<64-hex-digest>.json     one JSON document per cached result
      durations.json              coarse per-(program, schedule, platform)
                                  wall-time estimates feeding LPT ordering

Entries are keyed purely by the :class:`~repro.fleet.jobs.JobSpec`
content digest, which already mixes in the code-version salt — a version
bump changes every digest, so stale entries are simply never hit again
(and take no correctness-critical invalidation logic). Unreadable
entries degrade to cache misses; corrupt or schema-mismatched entries
are additionally *quarantined* — renamed to ``<entry>.corrupt`` and
counted on ``fleet_cache_corrupt_total`` — so the bad bytes are kept
for inspection, the recompute's fresh write cannot race a re-read of
garbage, and repeated hits of the same broken file cannot re-count. A
cache can always be deleted wholesale without losing anything but time.

Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written entry behind, and all cache I/O happens in the
coordinating parent process — worker processes only compute.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.fleet.jobs import CODE_SALT, RESULT_SCHEMA, JobResult, JobSpec
from repro.obs import NULL_OBS

#: Cache entry document identifier.
ENTRY_SCHEMA = "repro.fleet.cache-entry/v1"

#: Default cache directory when neither an explicit root nor
#: ``$FLEET_CACHE_DIR`` is given.
DEFAULT_DIR = ".fleet-cache"


class ResultCache:
    """Digest-keyed store of :class:`~repro.fleet.jobs.JobResult`\\ s."""

    def __init__(self, root: str | Path | None = None, obs=None) -> None:
        if root is None:
            root = os.environ.get("FLEET_CACHE_DIR") or DEFAULT_DIR
        self.root = Path(root)
        self.obs = obs if obs is not None else NULL_OBS
        self._durations: dict[str, float] | None = None

    # -- result entries ----------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """Where one digest's entry lives (two-level fan-out dir)."""
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> JobResult | None:
        """The cached result for a digest, or None on any kind of miss.

        An unreadable file or a salt mismatch (a stale entry from
        another code version) is a plain miss. A file that *reads* but
        does not parse back into a valid entry for this digest is
        corruption: it is quarantined (renamed to ``.corrupt``) and the
        miss makes the caller recompute and write a fresh entry.
        """
        path = self.path_for(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            return self._quarantine(path, "json")
        if not isinstance(doc, dict) or doc.get("schema") != ENTRY_SCHEMA:
            return self._quarantine(path, "entry-schema")
        if doc.get("salt") != CODE_SALT:
            return None
        if doc.get("digest") != digest:
            return self._quarantine(path, "digest")
        try:
            result = JobResult.from_payload(doc.get("result", {}))
        except Exception:
            return self._quarantine(path, "payload")
        if result.digest != digest:
            return self._quarantine(path, "digest")
        return result

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside and count it; always a miss."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass  # someone else quarantined it first; still a miss
        if self.obs.enabled:
            self.obs.registry.counter(
                "fleet_cache_corrupt_total", reason=reason
            ).inc()
        return None

    def put(self, result: JobResult) -> Path:
        """Store one result atomically; returns the entry path."""
        doc = {
            "schema": ENTRY_SCHEMA,
            "result_schema": RESULT_SCHEMA,
            "salt": CODE_SALT,
            "digest": result.digest,
            "result": result.to_payload(),
        }
        path = self.path_for(result.digest)
        self._write_atomic(path, json.dumps(doc, sort_keys=True, indent=2))
        return path

    # -- duration estimates (LPT ordering) ---------------------------------

    @property
    def durations_path(self) -> Path:
        return self.root / "durations.json"

    def _load_durations(self) -> dict[str, float]:
        if self._durations is None:
            try:
                doc = json.loads(
                    self.durations_path.read_text(encoding="utf-8")
                )
                self._durations = {
                    str(k): float(v) for k, v in doc.items()
                } if isinstance(doc, dict) else {}
            except (OSError, json.JSONDecodeError, TypeError, ValueError):
                self._durations = {}
        return self._durations

    def duration_estimate(self, spec: JobSpec) -> float | None:
        """Last known wall time for jobs shaped like ``spec``, if any."""
        return self._load_durations().get(spec.profile_key)

    def profile_estimates(self) -> dict[str, float]:
        """The whole EWMA duration table, sorted by profile key — the
        fleet publishes it as gauges so LPT dispatch is auditable."""
        return dict(sorted(self._load_durations().items()))

    def note_duration(self, spec: JobSpec, duration: float) -> None:
        """Update the duration estimate for a job shape (EWMA so one
        noisy run does not dominate the LPT order)."""
        durations = self._load_durations()
        prev = durations.get(spec.profile_key)
        durations[spec.profile_key] = (
            duration if prev is None else 0.5 * prev + 0.5 * duration
        )
        self._write_atomic(
            self.durations_path,
            json.dumps(durations, sort_keys=True, indent=2),
        )

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (plus quarantined files and the duration
        table); returns the number of result entries removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("??/*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
            for entry in self.root.glob("??/*.corrupt"):
                entry.unlink(missing_ok=True)
            self.durations_path.unlink(missing_ok=True)
        self._durations = None
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)
