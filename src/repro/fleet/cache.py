"""Content-addressed on-disk result store for fleet jobs.

Layout (under ``.fleet-cache/`` or ``$FLEET_CACHE_DIR``)::

    <root>/
      aa/<64-hex-digest>.json     one JSON document per cached result
      durations.json              coarse per-(program, schedule, platform)
                                  wall-time estimates feeding LPT ordering

Entries are keyed purely by the :class:`~repro.fleet.jobs.JobSpec`
content digest, which already mixes in the code-version salt — a version
bump changes every digest, so stale entries are simply never hit again
(and take no correctness-critical invalidation logic). Unreadable,
corrupt or schema-mismatched entries degrade to cache misses; a cache
can always be deleted wholesale without losing anything but time.

Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written entry behind, and all cache I/O happens in the
coordinating parent process — worker processes only compute.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.fleet.jobs import CODE_SALT, RESULT_SCHEMA, JobResult, JobSpec

#: Cache entry document identifier.
ENTRY_SCHEMA = "repro.fleet.cache-entry/v1"

#: Default cache directory when neither an explicit root nor
#: ``$FLEET_CACHE_DIR`` is given.
DEFAULT_DIR = ".fleet-cache"


class ResultCache:
    """Digest-keyed store of :class:`~repro.fleet.jobs.JobResult`\\ s."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("FLEET_CACHE_DIR") or DEFAULT_DIR
        self.root = Path(root)
        self._durations: dict[str, float] | None = None

    # -- result entries ----------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """Where one digest's entry lives (two-level fan-out dir)."""
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> JobResult | None:
        """The cached result for a digest, or None on any kind of miss.

        Corruption, schema drift and salt mismatch all read as misses:
        the caller recomputes and overwrites.
        """
        path = self.path_for(digest)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != ENTRY_SCHEMA:
            return None
        if doc.get("salt") != CODE_SALT or doc.get("digest") != digest:
            return None
        try:
            result = JobResult.from_payload(doc.get("result", {}))
        except Exception:
            return None
        if result.digest != digest:
            return None
        return result

    def put(self, result: JobResult) -> Path:
        """Store one result atomically; returns the entry path."""
        doc = {
            "schema": ENTRY_SCHEMA,
            "result_schema": RESULT_SCHEMA,
            "salt": CODE_SALT,
            "digest": result.digest,
            "result": result.to_payload(),
        }
        path = self.path_for(result.digest)
        self._write_atomic(path, json.dumps(doc, sort_keys=True, indent=2))
        return path

    # -- duration estimates (LPT ordering) ---------------------------------

    @property
    def durations_path(self) -> Path:
        return self.root / "durations.json"

    def _load_durations(self) -> dict[str, float]:
        if self._durations is None:
            try:
                doc = json.loads(
                    self.durations_path.read_text(encoding="utf-8")
                )
                self._durations = {
                    str(k): float(v) for k, v in doc.items()
                } if isinstance(doc, dict) else {}
            except (OSError, json.JSONDecodeError, TypeError, ValueError):
                self._durations = {}
        return self._durations

    def duration_estimate(self, spec: JobSpec) -> float | None:
        """Last known wall time for jobs shaped like ``spec``, if any."""
        return self._load_durations().get(spec.profile_key)

    def profile_estimates(self) -> dict[str, float]:
        """The whole EWMA duration table, sorted by profile key — the
        fleet publishes it as gauges so LPT dispatch is auditable."""
        return dict(sorted(self._load_durations().items()))

    def note_duration(self, spec: JobSpec, duration: float) -> None:
        """Update the duration estimate for a job shape (EWMA so one
        noisy run does not dominate the LPT order)."""
        durations = self._load_durations()
        prev = durations.get(spec.profile_key)
        durations[spec.profile_key] = (
            duration if prev is None else 0.5 * prev + 0.5 * duration
        )
        self._write_atomic(
            self.durations_path,
            json.dumps(durations, sort_keys=True, indent=2),
        )

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (and the duration table); returns the
        number of result entries removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("??/*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
            self.durations_path.unlink(missing_ok=True)
        self._durations = None
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)
