"""Content-addressed on-disk result store for fleet jobs.

Layout (under ``.fleet-cache/`` or ``$FLEET_CACHE_DIR``)::

    <root>/
      manifest.json               versioned layout manifest
      index.json                  LRU/pin/size index (logical clock)
      durations.json              coarse per-(program, schedule, platform)
                                  wall-time estimates feeding LPT ordering
      ab/abcdef...json            one JSON document per cached result,
                                  sharded by the first two digest hexits
      ab/abcdef...json.corrupt    quarantined bad bytes, kept aside
      ab/abcdef...json.poison     poison-job quarantine marker (a sweep
                                  found this digest repeatedly breaks
                                  worker pools; later sweeps skip it)

Entries are keyed purely by the :class:`~repro.fleet.jobs.JobSpec`
content digest, which already mixes in the code-version salt — a version
bump changes every digest, so stale entries are simply never hit again
(and take no correctness-critical invalidation logic). Unreadable
entries degrade to cache misses; corrupt or schema-mismatched entries
are additionally *quarantined* — renamed to ``<entry>.corrupt`` and
counted on ``fleet_cache_corrupt_total`` — so the bad bytes are kept
for inspection, the recompute's fresh write cannot race a re-read of
garbage, and repeated hits of the same broken file cannot re-count. A
cache can always be deleted wholesale without losing anything but time.

Three production-shaped mechanisms ride on top of the plain store:

* **A versioned layout manifest** (``manifest.json``). The original
  fleet cache kept entries flat in the root directory; on first access
  a cache without a valid sharded-layout manifest is migrated in place:
  every flat ``<digest>.json`` entry moves into its shard, and every
  flat ``<digest>.json.corrupt`` quarantine file is carried forward *as
  a quarantine file* — the ``.corrupt`` suffix is never stripped, so a
  quarantined blob can never be resurrected into a live entry, even
  when it sits next to a valid entry for the same digest.
* **Size-bounded LRU eviction with pinning.** ``max_bytes`` (or
  ``$FLEET_CACHE_MAX_BYTES``) caps the total size of live entries.
  Recency is a *logical* access clock persisted in ``index.json`` — no
  wall-clock reads — so the eviction order under a fixed access
  sequence is fully deterministic (ties break by digest). Pinned
  entries are never evicted, even when the pinned set alone exceeds
  the budget.
* **An integrity scrub** (:mod:`repro.fleet.scrub`) that verifies every
  entry's name, shard placement, schema and digests, quarantines
  anything corrupt, repairs the manifest and rebuilds the index.

Writes are crash-atomic (fsynced ``tmp-<pid>`` sibling + ``os.replace``)
so even a SIGKILLed coordinator never leaves a half-written entry under
a live name — at worst a stale tmp file the scrub prunes — and all
cache I/O happens in the coordinating parent process — worker processes
only compute.

"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from repro.errors import FleetError
from repro.fleet.jobs import CODE_SALT, RESULT_SCHEMA, JobResult, JobSpec
from repro.obs import NULL_OBS

#: Cache entry document identifier.
ENTRY_SCHEMA = "repro.fleet.cache-entry/v1"

#: Layout manifest document identifier.
LAYOUT_SCHEMA = "repro.fleet.cache-layout/v1"

#: The layout this code reads and writes.
LAYOUT = "sharded/v1"

#: Index document identifier (LRU clock, sizes, pins).
INDEX_SCHEMA = "repro.fleet.cache-index/v1"

#: Poison-quarantine marker document identifier.
POISON_SCHEMA = "repro.fleet.poison/v1"

#: Digest-prefix width of the shard directories (``ab/abcdef...json``).
SHARD_WIDTH = 2

#: Default cache directory when neither an explicit root nor
#: ``$FLEET_CACHE_DIR`` is given.
DEFAULT_DIR = ".fleet-cache"

#: Environment variable bounding the cache size in bytes.
MAX_BYTES_ENV = "FLEET_CACHE_MAX_BYTES"

#: Root-level bookkeeping files that are never cache entries.
RESERVED_FILES = frozenset(
    {"manifest.json", "index.json", "durations.json", "checkpoint.jsonl"}
)

#: ``<64-hex-digest>.json`` — the only legal entry file name.
ENTRY_NAME_RE = re.compile(r"^[0-9a-f]{64}\.json$")


def _is_entry_name(name: str) -> bool:
    return ENTRY_NAME_RE.fullmatch(name) is not None


class ResultCache:
    """Digest-keyed store of :class:`~repro.fleet.jobs.JobResult`\\ s."""

    def __init__(
        self,
        root: str | Path | None = None,
        obs=None,
        max_bytes: int | None = None,
    ) -> None:
        if root is None:
            root = os.environ.get("FLEET_CACHE_DIR") or DEFAULT_DIR
        self.root = Path(root)
        self.obs = obs if obs is not None else NULL_OBS
        if max_bytes is None:
            raw = os.environ.get(MAX_BYTES_ENV)
            if raw:
                try:
                    max_bytes = int(raw)
                except ValueError:
                    raise FleetError(
                        f"${MAX_BYTES_ENV} must be an integer, got {raw!r}"
                    ) from None
        if max_bytes is not None and max_bytes <= 0:
            raise FleetError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._durations: dict[str, float] | None = None
        self._index: dict | None = None
        self._index_dirty = False
        self._layout_checked = False

    # -- layout manifest and migration -------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def read_manifest(self) -> dict | None:
        """The layout manifest document, or None when missing/garbage."""
        try:
            doc = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    def manifest_ok(self) -> bool:
        doc = self.read_manifest()
        return (
            doc is not None
            and doc.get("schema") == LAYOUT_SCHEMA
            and doc.get("layout") == LAYOUT
            and doc.get("shard_width") == SHARD_WIDTH
        )

    def write_manifest(self) -> None:
        self._write_atomic(
            self.manifest_path,
            json.dumps(
                {
                    "schema": LAYOUT_SCHEMA,
                    "layout": LAYOUT,
                    "shard_width": SHARD_WIDTH,
                },
                sort_keys=True,
                indent=2,
            ),
        )

    def _ensure_layout(self, create: bool = False) -> None:
        """Check (once) that the on-disk layout is current, migrating a
        legacy flat cache in place when it is not.

        A missing root directory stays unchecked until ``create`` forces
        it into existence — a read-only probe of a cache that was never
        written must not create directories.
        """
        if self._layout_checked:
            return
        if not self.root.is_dir():
            if not create:
                return
            self.root.mkdir(parents=True, exist_ok=True)
        self._layout_checked = True
        if self.manifest_ok():
            return
        self.migrate_flat_layout()
        self.write_manifest()

    def migrate_flat_layout(self) -> int:
        """Move legacy flat-layout files into their shards; returns the
        number of files moved.

        Both live entries (``<digest>.json``) and quarantine files
        (``<digest>.json.corrupt``) are carried forward, *independently*
        and suffix-preserving: a quarantine file sitting next to a valid
        entry for the same digest stays a quarantine file in the shard —
        migration never resurrects quarantined bytes into a live entry.
        When a sharded copy already exists (an interrupted earlier
        migration), the sharded copy wins and the flat leftover is
        dropped.
        """
        moved = 0
        if not self.root.is_dir():
            return moved
        for path in sorted(self.root.iterdir()):
            if not path.is_file() or path.name in RESERVED_FILES:
                continue
            name = path.name
            quarantined = name.endswith(".corrupt")
            stem = name[: -len(".corrupt")] if quarantined else name
            if not _is_entry_name(stem):
                continue
            digest = stem[: -len(".json")]
            target = self.path_for(digest)
            if quarantined:
                target = target.with_name(target.name + ".corrupt")
            target.parent.mkdir(parents=True, exist_ok=True)
            if target.exists():
                path.unlink(missing_ok=True)
            else:
                os.replace(path, target)
            moved += 1
        if moved and self.obs.enabled:
            self.obs.registry.counter("fleet_cache_migrated_total").inc(moved)
        return moved

    # -- result entries ----------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """Where one digest's entry lives (digest-prefix shard dir)."""
        return self.root / digest[:SHARD_WIDTH] / f"{digest}.json"

    def get(self, digest: str) -> JobResult | None:
        """The cached result for a digest, or None on any kind of miss.

        An unreadable file or a salt mismatch (a stale entry from
        another code version) is a plain miss. A file that *reads* but
        does not parse back into a valid entry for this digest is
        corruption: it is quarantined (renamed to ``.corrupt``) and the
        miss makes the caller recompute and write a fresh entry.
        """
        self._ensure_layout()
        path = self.path_for(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            return self._quarantine(path, "json")
        if not isinstance(doc, dict) or doc.get("schema") != ENTRY_SCHEMA:
            return self._quarantine(path, "entry-schema")
        if doc.get("salt") != CODE_SALT:
            return None
        if doc.get("digest") != digest:
            return self._quarantine(path, "digest")
        try:
            result = JobResult.from_payload(doc.get("result", {}))
        except Exception:
            return self._quarantine(path, "payload")
        if result.digest != digest:
            return self._quarantine(path, "digest")
        self._touch(digest, size=len(text.encode("utf-8")))
        return result

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside and count it; always a miss."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass  # someone else quarantined it first; still a miss
        if self.obs.enabled:
            self.obs.registry.counter(
                "fleet_cache_corrupt_total", reason=reason
            ).inc()
        return None

    def put(self, result: JobResult) -> Path:
        """Store one result atomically; returns the entry path.

        The write bumps the entry's logical access time and, when a
        byte budget is set, evicts least-recently-used unpinned entries
        until the cache fits again.
        """
        self._ensure_layout(create=True)
        doc = {
            "schema": ENTRY_SCHEMA,
            "result_schema": RESULT_SCHEMA,
            "salt": CODE_SALT,
            "digest": result.digest,
            "result": result.to_payload(),
        }
        path = self.path_for(result.digest)
        text = json.dumps(doc, sort_keys=True, indent=2)
        self._write_atomic(path, text)
        self._touch(result.digest, size=len(text.encode("utf-8")) + 1)
        self.evict_to_budget()
        self.flush()
        return path

    # -- poison quarantine markers -----------------------------------------

    def poison_path(self, digest: str) -> Path:
        """Where one digest's poison marker lives (beside its entry
        slot: ``ab/<digest>.json.poison``)."""
        path = self.path_for(digest)
        return path.with_name(path.name + ".poison")

    def mark_poisoned(self, digest: str, reason: str) -> Path:
        """Record that a sweep quarantined ``digest`` as a poison job
        (its failures broke the worker pool repeatedly). Later sweeps
        skip the digest up front instead of breaking their pools too."""
        self._ensure_layout(create=True)
        path = self.poison_path(digest)
        self._write_atomic(
            path,
            json.dumps(
                {
                    "schema": POISON_SCHEMA,
                    "digest": digest,
                    "salt": CODE_SALT,
                    "reason": reason,
                },
                sort_keys=True,
                indent=2,
            ),
        )
        if self.obs.enabled:
            self.obs.registry.counter("fleet_cache_poison_marks_total").inc()
        return path

    def poison_reason(self, digest: str) -> str | None:
        """The recorded quarantine reason, or None when the digest is
        not poisoned (including markers from other code versions — a
        version bump gets a fresh chance, same as cache entries)."""
        try:
            doc = json.loads(
                self.poison_path(digest).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != POISON_SCHEMA:
            return None
        if doc.get("salt") != CODE_SALT or doc.get("digest") != digest:
            return None
        return str(doc.get("reason", "poisoned"))

    def clear_poison(self, digest: str) -> bool:
        """Lift one digest's quarantine; True when a marker existed."""
        path = self.poison_path(digest)
        existed = path.is_file()
        path.unlink(missing_ok=True)
        return existed

    def poisoned(self) -> tuple[str, ...]:
        """All currently-poisoned digests (this code version), sorted."""
        if not self.root.is_dir():
            return ()
        out = []
        for path in self.root.glob("??/*.json.poison"):
            digest = path.name[: -len(".json.poison")]
            if self.poison_reason(digest) is not None:
                out.append(digest)
        return tuple(sorted(out))

    # -- LRU index, pinning and eviction -----------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> dict:
        if self._index is None:
            entries: dict[str, dict] = {}
            seq = 0
            try:
                doc = json.loads(self.index_path.read_text(encoding="utf-8"))
                if (
                    isinstance(doc, dict)
                    and doc.get("schema") == INDEX_SCHEMA
                ):
                    seq = int(doc.get("seq", 0))
                    for digest, rec in dict(doc.get("entries", {})).items():
                        entries[str(digest)] = {
                            "seq": int(rec["seq"]),
                            "size": int(rec["size"]),
                            "pinned": bool(rec.get("pinned", False)),
                        }
            except (OSError, json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                entries, seq = {}, 0
            self._index = {"seq": seq, "entries": entries}
        return self._index

    def _touch(self, digest: str, size: int | None = None) -> None:
        """Record one logical access (and optionally the entry size)."""
        index = self._load_index()
        index["seq"] += 1
        entry = index["entries"].setdefault(
            digest, {"seq": 0, "size": 0, "pinned": False}
        )
        entry["seq"] = index["seq"]
        if size is not None:
            entry["size"] = size
        self._index_dirty = True

    def flush(self) -> None:
        """Persist the LRU index if it changed since the last flush.

        Reads batch their recency bumps in memory (a warm 10k-job sweep
        must not rewrite a 10k-entry index 10k times); ``put`` and the
        pool's end-of-run hook flush. Losing unflushed bumps to a crash
        costs recency accuracy, never correctness.
        """
        if not self._index_dirty or self._index is None:
            return
        self._ensure_layout(create=True)
        doc = {
            "schema": INDEX_SCHEMA,
            "seq": self._index["seq"],
            "entries": {
                digest: self._index["entries"][digest]
                for digest in sorted(self._index["entries"])
            },
        }
        self._write_atomic(
            self.index_path, json.dumps(doc, sort_keys=True, indent=2)
        )
        self._index_dirty = False

    def rebuild_index(self, entry_sizes: dict[str, int]) -> None:
        """Replace the index with exactly ``entry_sizes`` (the scrub's
        surviving-entry census), preserving known recency and pins."""
        old = self._load_index()["entries"]
        entries = {
            digest: {
                "seq": old.get(digest, {}).get("seq", 0),
                "size": size,
                "pinned": old.get(digest, {}).get("pinned", False),
            }
            for digest, size in entry_sizes.items()
        }
        self._index = {
            "seq": max(
                [self._load_index()["seq"]]
                + [e["seq"] for e in entries.values()]
            ),
            "entries": entries,
        }
        self._index_dirty = True
        self.flush()

    def pin(self, digest: str) -> None:
        """Exempt a digest from eviction (a stub is recorded even if the
        entry does not exist yet, so pin-then-put keeps the pin)."""
        index = self._load_index()
        entry = index["entries"].setdefault(
            digest, {"seq": 0, "size": 0, "pinned": False}
        )
        entry["pinned"] = True
        self._index_dirty = True
        self.flush()

    def unpin(self, digest: str) -> None:
        index = self._load_index()
        entry = index["entries"].get(digest)
        if entry is not None:
            entry["pinned"] = False
            self._index_dirty = True
            self.flush()

    def pinned(self) -> tuple[str, ...]:
        """Pinned digests, sorted."""
        entries = self._load_index()["entries"]
        return tuple(
            sorted(d for d, e in entries.items() if e["pinned"])
        )

    def total_bytes(self) -> int:
        """Total size of live entries, per the index."""
        return sum(
            e["size"] for e in self._load_index()["entries"].values()
        )

    def evict_to_budget(self) -> list[str]:
        """Delete least-recently-used unpinned entries until the cache
        fits ``max_bytes``; returns the evicted digests in order.

        Fully deterministic: the logical access clock orders victims
        (ties break by digest), and pinned entries are never candidates
        — if the pinned set alone exceeds the budget, nothing more can
        be evicted and the cache stays oversized by exactly that much.
        """
        if self.max_bytes is None:
            return []
        index = self._load_index()
        entries = index["entries"]
        total = sum(e["size"] for e in entries.values())
        evicted: list[str] = []
        victims = sorted(
            (d for d, e in entries.items() if not e["pinned"]),
            key=lambda d: (entries[d]["seq"], d),
        )
        for digest in victims:
            if total <= self.max_bytes:
                break
            total -= entries.pop(digest)["size"]
            self.path_for(digest).unlink(missing_ok=True)
            evicted.append(digest)
            self._index_dirty = True
        if evicted and self.obs.enabled:
            self.obs.registry.counter("fleet_cache_evictions_total").inc(
                len(evicted)
            )
        if self.obs.enabled:
            self.obs.registry.gauge("fleet_cache_bytes").set(float(total))
        return evicted

    def stats(self) -> dict:
        """A JSON-ready summary of the store's shape and occupancy."""
        entries = self._load_index()["entries"]
        return {
            "layout": LAYOUT,
            "entries": len(self),
            "indexed": len(entries),
            "bytes": self.total_bytes(),
            "pinned": sum(1 for e in entries.values() if e["pinned"]),
            "max_bytes": self.max_bytes,
        }

    # -- duration estimates (LPT ordering) ---------------------------------

    @property
    def durations_path(self) -> Path:
        return self.root / "durations.json"

    def _load_durations(self) -> dict[str, float]:
        if self._durations is None:
            try:
                doc = json.loads(
                    self.durations_path.read_text(encoding="utf-8")
                )
                self._durations = {
                    str(k): float(v) for k, v in doc.items()
                } if isinstance(doc, dict) else {}
            except (OSError, json.JSONDecodeError, TypeError, ValueError):
                self._durations = {}
        return self._durations

    def duration_estimate(self, spec: JobSpec) -> float | None:
        """Last known wall time for jobs shaped like ``spec``, if any."""
        return self._load_durations().get(spec.profile_key)

    def profile_estimates(self) -> dict[str, float]:
        """The whole EWMA duration table, sorted by profile key — the
        fleet publishes it as gauges so LPT dispatch is auditable."""
        return dict(sorted(self._load_durations().items()))

    def note_duration(self, spec: JobSpec, duration: float) -> None:
        """Update the duration estimate for a job shape (EWMA so one
        noisy run does not dominate the LPT order)."""
        durations = self._load_durations()
        prev = durations.get(spec.profile_key)
        durations[spec.profile_key] = (
            duration if prev is None else 0.5 * prev + 0.5 * duration
        )
        self._write_atomic(
            self.durations_path,
            json.dumps(durations, sort_keys=True, indent=2),
        )

    # -- maintenance -------------------------------------------------------

    def scrub(self, prune_stale: bool = False):
        """Run the integrity scrub over this cache; see
        :func:`repro.fleet.scrub.scrub_cache`."""
        from repro.fleet.scrub import scrub_cache

        return scrub_cache(self, prune_stale=prune_stale)

    def clear(self) -> int:
        """Delete every entry (plus quarantined files, the index and the
        duration table); returns the number of result entries removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("??/*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
            for entry in self.root.glob("??/*.corrupt"):
                entry.unlink(missing_ok=True)
            for entry in self.root.glob("??/*.poison"):
                entry.unlink(missing_ok=True)
            for entry in self.root.glob("??/*.tmp-*"):
                entry.unlink(missing_ok=True)
            self.durations_path.unlink(missing_ok=True)
            self.index_path.unlink(missing_ok=True)
        self._durations = None
        self._index = None
        self._index_dirty = False
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        """Crash-atomic write: a ``tmp-<pid>`` *sibling* (never a suffix
        swap that could collide across writers or shadow an entry name),
        fsynced before the rename — a coordinator SIGKILLed mid-put can
        leave a stale tmp file behind (the scrub prunes those) but never
        truncated JSON under the final name."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(text + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
