"""Resumable sweeps: an append-only JSONL checkpoint journal.

A paper-scale sweep is thousands of independent jobs; a killed process
must not cost the completed ones. The content-addressed cache already
preserves every finished *result* — what it cannot answer is "which
sweep was running, over which jobs, and how far did it get?". The
:class:`SweepCheckpoint` journal records exactly that:

* ``begin`` — sweep metadata (grid names, seed, backend, worker count),
  written once per CLI invocation so ``python -m repro.fleet --resume``
  can reconstruct the command;
* ``plan`` — the digest universe of one ``run_jobs`` batch;
* ``job`` — one digest transitioning to ``done`` (computed or replayed
  from cache), ``failed`` (retries exhausted) or ``poisoned``
  (quarantined by the supervisor: its failures repeatedly broke the
  worker pool); failure records carry the last error reason, so a
  resume can print *why* each cell failed, not just that it did;
* ``end`` — the sweep completed.

The journal is **append-only JSONL, flushed and fsynced per record**: a
SIGKILL can tear at most the final line, and :meth:`SweepCheckpoint.load`
tolerates a torn tail. On resume the journal simply grows — a second
``begin`` with the same metadata, fresh ``job`` records for the cells
the resumed sweep resolves (the already-done ones as instant cache
hits) — so the file is a complete, replayable history of the sweep.

Determinism contract: a checkpoint changes *what is recomputed*, never
what is computed. A killed-and-resumed sweep produces byte-identical
grid payloads and merged observability snapshots to an uninterrupted
run (modulo cache-temperature counters), because done cells replay from
the cache with their stored per-job snapshots and the merge is in
submission order either way.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.errors import FleetError

#: Checkpoint journal format identifier.
CHECKPOINT_SCHEMA = "repro.fleet.checkpoint/v1"

#: Default journal file name, beside the cache's manifest.
DEFAULT_NAME = "checkpoint.jsonl"


@dataclass
class CheckpointState:
    """The journal folded into one queryable snapshot."""

    path: str
    meta: dict = field(default_factory=dict)  #: last ``begin``'s metadata
    planned: tuple[str, ...] = ()  #: digest universe (union of plans)
    statuses: dict[str, str] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)  #: digest -> last
    #: recorded failure/quarantine reason
    ended: bool = False  #: an ``end`` record follows the last ``begin``
    torn_lines: int = 0  #: unparseable (crash-torn) lines skipped

    @property
    def done(self) -> tuple[str, ...]:
        return tuple(
            d for d in self.planned if self.statuses.get(d) == "done"
        )

    @property
    def failed(self) -> tuple[str, ...]:
        return tuple(
            d for d in self.planned if self.statuses.get(d) == "failed"
        )

    @property
    def poisoned(self) -> tuple[str, ...]:
        return tuple(
            d for d in self.planned if self.statuses.get(d) == "poisoned"
        )

    @property
    def pending(self) -> tuple[str, ...]:
        # Failed cells stay pending (a resume retries them); poisoned
        # cells do not — quarantine means "stop feeding this job pools".
        return tuple(
            d for d in self.planned
            if self.statuses.get(d) not in ("done", "poisoned")
        )

    def summary(self) -> dict:
        return {
            "planned": len(self.planned),
            "done": len(self.done),
            "failed": len(self.failed),
            "poisoned": len(self.poisoned),
            "pending": len(self.pending),
            "ended": self.ended,
        }

    def failure_table(self) -> str:
        """A "previously failed: reason" table for the resume banner —
        one line per failed/poisoned digest with its recorded reason."""
        rows = []
        for digest in self.planned:
            status = self.statuses.get(digest)
            if status not in ("failed", "poisoned"):
                continue
            reason = self.errors.get(digest, "(no reason recorded)")
            rows.append(f"  {digest[:12]}  {status:<9s} {reason}")
        return "\n".join(rows)


class SweepCheckpoint:
    """Append-only journal of one (possibly resumed) sweep."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None

    # -- writing -----------------------------------------------------------

    def begin(self, meta: Mapping) -> None:
        """Open a sweep: record its reconstructable metadata."""
        self._append(
            {
                "schema": CHECKPOINT_SCHEMA,
                "event": "begin",
                "meta": dict(meta),
            }
        )

    def plan(self, digests) -> None:
        """Declare one batch's digest universe."""
        self._append({"event": "plan", "digests": list(digests)})

    def record(
        self,
        digest: str,
        status: str,
        *,
        cached: bool = False,
        error: str | None = None,
    ) -> None:
        """Journal one job's terminal state for this sweep."""
        if status not in ("done", "failed", "poisoned"):
            raise FleetError(
                "checkpoint status must be done, failed or poisoned, "
                f"got {status!r}"
            )
        rec: dict = {"event": "job", "digest": digest, "status": status}
        if cached:
            rec["cached"] = True
        if error is not None:
            rec["error"] = error
        self._append(rec)

    def finish(self) -> None:
        """Mark the sweep complete and release the journal handle."""
        self._append({"event": "end"})
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def _append(self, rec: Mapping) -> None:
        """One record, durably: flush + fsync so a SIGKILL immediately
        after a ``job`` record cannot lose it."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- reading -----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> CheckpointState:
        """Fold the journal into a :class:`CheckpointState`.

        Tolerant by design: a torn final line (the record a crash
        interrupted mid-write) is skipped and counted, never fatal.
        Raises :class:`~repro.errors.FleetError` only when the journal
        does not exist at all.
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise FleetError(f"no checkpoint journal at {path}: {exc}") from exc
        state = CheckpointState(path=str(path))
        planned: list[str] = []
        seen: set[str] = set()
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                state.torn_lines += 1
                continue
            if not isinstance(rec, dict):
                state.torn_lines += 1
                continue
            event = rec.get("event")
            if event == "begin":
                meta = rec.get("meta")
                state.meta = dict(meta) if isinstance(meta, Mapping) else {}
                state.ended = False
            elif event == "plan":
                for digest in rec.get("digests", []):
                    digest = str(digest)
                    if digest not in seen:
                        seen.add(digest)
                        planned.append(digest)
            elif event == "job":
                digest = str(rec.get("digest", ""))
                status = str(rec.get("status", ""))
                if digest and status in ("done", "failed", "poisoned"):
                    if digest not in seen:
                        seen.add(digest)
                        planned.append(digest)
                    # done is sticky: a later failed retry of an
                    # already-done digest cannot un-finish it.
                    if state.statuses.get(digest) != "done":
                        state.statuses[digest] = status
                    if status != "done" and "error" in rec:
                        state.errors[digest] = str(rec["error"])
            elif event == "end":
                state.ended = True
        state.planned = tuple(planned)
        return state
