"""The fleet's async dispatch seam: pluggable job dispatchers.

:func:`repro.fleet.pool.run_jobs` resolves cache hits, then hands the
remaining work to a **dispatcher** — the one moving part that decides
*where* jobs execute. Three implementations ship:

* ``inline`` — serial execution in the coordinating process, the exact
  legacy path (``jobs <= 1``, ``use_processes=False``, or degraded
  operation when no pool can be built);
* ``process`` — the fault-tolerant ``ProcessPoolExecutor`` pool with
  LPT dispatch, per-job timeouts, bounded retry and broken-pool
  rebuild (the default for ``jobs > 1``);
* ``local`` — an in-process *local worker group*: a thread group
  driving the same LPT queue with the same retry/backoff policy. The
  simulator is pure Python, so threads buy no wall-clock speedup — the
  point of this dispatcher is the **seam**: it proves the protocol is
  implementation-agnostic (remote/multi-host worker groups slot in
  behind the same three calls) and it gives tests a second, independent
  dispatcher to pin the byte-equality acceptance property against.

Every dispatcher writes into the same outcome table, journals to the
same checkpoint, and leaves the submission-order observability merge to
``run_jobs`` — so merged snapshots are byte-identical across
dispatchers by construction, and the tests assert exactly that.

Selection: ``FleetConfig(dispatcher=...)``, else
``$REPRO_FLEET_DISPATCHER``, else ``process``/``inline`` chosen from
``jobs`` and ``use_processes`` exactly as the pool always has.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import FleetError
from repro.fleet.jobs import JobSpec

#: Environment variable overriding the dispatcher choice.
DISPATCHER_ENV = "REPRO_FLEET_DISPATCHER"


@runtime_checkable
class Dispatcher(Protocol):
    """Executes pending jobs, filling ``outcomes`` index-by-index.

    Implementations must resolve *every* index in ``pending`` to a
    :class:`~repro.fleet.pool.FleetOutcome` (successful or failed) and
    honour ``config``'s retry/backoff/timeout policy. They must not
    touch the observability merge: ``run_jobs`` folds per-job captures
    in submission order after every dispatcher returns, which is what
    makes merged snapshots dispatcher-independent.
    """

    name: str

    def run(
        self,
        specs: Sequence[JobSpec],
        pending: Sequence[int],
        outcomes: dict,
        config,
        cache,
        progress,
        checkpoint=None,
    ) -> None: ...


class InlineDispatcher:
    """Serial in-process execution (the legacy ``jobs=1`` path)."""

    name = "inline"

    def run(
        self, specs, pending, outcomes, config, cache, progress,
        checkpoint=None,
    ) -> None:
        from repro.fleet import pool

        pool._run_inline(
            specs, pending, outcomes, config, cache, progress, checkpoint
        )


class ProcessPoolDispatcher:
    """The fault-tolerant ``ProcessPoolExecutor`` pool (the default)."""

    name = "process"

    def run(
        self, specs, pending, outcomes, config, cache, progress,
        checkpoint=None,
    ) -> None:
        from repro.fleet import pool

        pool._run_processes(
            specs, pending, outcomes, config, cache, progress, checkpoint
        )


class LocalWorkerGroupDispatcher:
    """An in-process worker group: threads over the same LPT queue.

    Same dispatch order, retry budget and backoff as the process pool.
    Timeouts are best-effort: a stuck thread cannot be killed, so an
    expired job is charged and retried on a fresh future while the
    stuck thread's slot stays burned until the group winds down —
    acceptable for a seam whose job is protocol fidelity, not worker
    isolation.
    """

    name = "local"

    def run(
        self, specs, pending, outcomes, config, cache, progress,
        checkpoint=None,
    ) -> None:
        from repro.fleet import pool

        queue: deque[int] = deque(pool._lpt_order(specs, pending, cache))
        attempts: dict[int, int] = {i: 0 for i in pending}
        max_workers = min(config.jobs, len(pending)) or 1
        executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fleet-local"
        )
        running: dict = {}

        def fail_or_requeue(idx: int, reason: str) -> None:
            attempts[idx] += 1
            spec = specs[idx]
            if attempts[idx] > config.retries:
                progress.job_failed(spec, reason)
                if checkpoint is not None:
                    checkpoint.record(spec.key, "failed", error=reason)
                outcomes[idx] = pool.FleetOutcome(
                    spec, None, attempts=attempts[idx], mode=self.name,
                    error=reason,
                )
                return
            progress.job_retried(spec, attempt=attempts[idx], reason=reason)
            time.sleep(config.backoff * (2 ** (attempts[idx] - 1)))
            queue.append(idx)

        try:
            while queue or running:
                while queue and len(running) < max_workers:
                    idx = queue.popleft()
                    progress.job_started(
                        specs[idx], mode=self.name, attempt=attempts[idx] + 1
                    )
                    running[executor.submit(specs[idx].execute)] = (
                        idx, time.monotonic(),
                    )
                deadline_slack = None
                if config.timeout is not None and running:
                    now = time.monotonic()
                    deadline_slack = max(
                        0.0,
                        min(
                            t0 + config.timeout - now
                            for (_, t0) in running.values()
                        ),
                    )
                done, _ = wait(
                    running, timeout=deadline_slack,
                    return_when=FIRST_COMPLETED,
                )
                for fut in sorted(done, key=lambda f: running[f][0]):
                    idx, _t0 = running.pop(fut)
                    try:
                        result = fut.result()
                    except Exception as exc:
                        fail_or_requeue(idx, f"{type(exc).__name__}: {exc}")
                    else:
                        pool._record_success(
                            idx, specs[idx], result, attempts[idx] + 1,
                            self.name, outcomes, cache, progress, checkpoint,
                        )
                if config.timeout is not None:
                    now = time.monotonic()
                    expired = [
                        (fut, idx)
                        for fut, (idx, t0) in running.items()
                        if now - t0 > config.timeout
                    ]
                    for fut, idx in expired:
                        running.pop(fut)
                        progress.job_timeout(specs[idx], config.timeout)
                        fail_or_requeue(
                            idx, f"timed out after {config.timeout:g}s"
                        )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)


#: name -> dispatcher class. Remote/multi-host worker groups register
#: here once they exist; the JobSpec digest protocol is already
#: location-independent.
DISPATCHERS: dict[str, type] = {
    "inline": InlineDispatcher,
    "process": ProcessPoolDispatcher,
    "local": LocalWorkerGroupDispatcher,
}


def resolve_dispatcher_name(
    name: str | None = None,
    *,
    jobs: int = 1,
    use_processes: bool | None = None,
) -> str:
    """The dispatcher a fleet run will use.

    An explicit ``name`` (or ``$REPRO_FLEET_DISPATCHER``) wins, except
    that ``use_processes=False`` still downgrades ``process`` to
    ``inline`` — that flag is the historical hard "never spawn" switch
    and keeps meaning it. With no selection, the historical policy:
    ``process`` when ``jobs > 1`` and processes are not forbidden,
    ``inline`` otherwise.
    """
    name = name or os.environ.get(DISPATCHER_ENV) or None
    if name is not None:
        if name not in DISPATCHERS:
            raise FleetError(
                f"unknown dispatcher {name!r}; "
                f"available: {', '.join(sorted(DISPATCHERS))}"
            )
        if name == "process" and use_processes is False:
            return "inline"
        return name
    if jobs > 1 and use_processes is not False:
        return "process"
    return "inline"


def get_dispatcher(name: str) -> Dispatcher:
    try:
        return DISPATCHERS[name]()
    except KeyError:
        raise FleetError(
            f"unknown dispatcher {name!r}; "
            f"available: {', '.join(sorted(DISPATCHERS))}"
        ) from None
