"""The fleet's async dispatch seam: pluggable job dispatchers.

:func:`repro.fleet.pool.run_jobs` resolves cache hits, then hands the
remaining work to a **dispatcher** — the one moving part that decides
*where* jobs execute. Three implementations ship:

* ``inline`` — serial execution in the coordinating process, the exact
  legacy path (``jobs <= 1``, ``use_processes=False``, or degraded
  operation when no pool can be built);
* ``process`` — the fault-tolerant ``ProcessPoolExecutor`` pool with
  LPT dispatch, per-job deadlines, bounded retry and broken-pool
  rebuild (the default for ``jobs > 1``);
* ``local`` — an in-process *local worker group*: a thread group
  driving the **same supervised loop** as the process pool (one LPT
  queue, one retry/backoff/deadline policy, one broken-pool protocol —
  see :func:`repro.fleet.pool._run_supervised_pool`). The simulator is
  pure Python, so threads buy no wall-clock speedup — the point of this
  dispatcher is the **seam**: it proves the protocol is
  implementation-agnostic (remote/multi-host worker groups slot in
  behind the same three calls), it gives tests a second, independent
  dispatcher to pin the byte-equality acceptance property against, and
  it is the middle rung of the supervision ladder (``process -> local
  -> inline``) a tripped circuit breaker degrades along.

Every dispatcher writes into the same outcome table, journals to the
same checkpoint, and leaves the submission-order observability merge to
``run_jobs`` — so merged snapshots are byte-identical across
dispatchers by construction, and the tests assert exactly that.

Supervision: each ``run`` receives the batch's
:class:`~repro.fleet.supervisor.Supervisor`. Pooled dispatchers charge
its per-tier circuit breaker on infrastructure failures and raise
:class:`~repro.fleet.supervisor.BreakerOpen` when it trips —
``run_jobs`` then moves the unresolved jobs down the degradation
ladder. ``inline`` has no infrastructure to fail and never raises it.

Selection: ``FleetConfig(dispatcher=...)``, else
``$REPRO_FLEET_DISPATCHER``, else ``process``/``inline`` chosen from
``jobs`` and ``use_processes`` exactly as the pool always has.
"""

from __future__ import annotations

import os
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import FleetError
from repro.fleet.jobs import JobSpec

#: Environment variable overriding the dispatcher choice.
DISPATCHER_ENV = "REPRO_FLEET_DISPATCHER"


@runtime_checkable
class Dispatcher(Protocol):
    """Executes pending jobs, filling ``outcomes`` index-by-index.

    Implementations must resolve *every* index in ``pending`` to a
    :class:`~repro.fleet.pool.FleetOutcome` (successful, failed, or
    quarantined) and honour ``config``'s retry/backoff/timeout policy —
    unless their tier's circuit breaker trips, in which case they
    requeue nothing and raise
    :class:`~repro.fleet.supervisor.BreakerOpen` with the unresolved
    indices simply absent from ``outcomes``. They must not touch the
    observability merge: ``run_jobs`` folds per-job captures in
    submission order after the ladder settles, which is what makes
    merged snapshots dispatcher-independent.
    """

    name: str

    def run(
        self,
        specs: Sequence[JobSpec],
        pending: Sequence[int],
        outcomes: dict,
        config,
        cache,
        progress,
        checkpoint=None,
        supervisor=None,
    ) -> None: ...


class InlineDispatcher:
    """Serial in-process execution (the legacy ``jobs=1`` path)."""

    name = "inline"

    def run(
        self, specs, pending, outcomes, config, cache, progress,
        checkpoint=None, supervisor=None,
    ) -> None:
        from repro.fleet import pool

        pool._run_inline(
            specs, pending, outcomes, config, cache, progress, checkpoint,
            supervisor,
        )


class ProcessPoolDispatcher:
    """The fault-tolerant ``ProcessPoolExecutor`` pool (the default)."""

    name = "process"

    def run(
        self, specs, pending, outcomes, config, cache, progress,
        checkpoint=None, supervisor=None,
    ) -> None:
        from repro.fleet import pool

        pool._run_processes(
            specs, pending, outcomes, config, cache, progress, checkpoint,
            supervisor,
        )


class LocalWorkerGroupDispatcher:
    """An in-process worker group: threads over the supervised loop.

    Same dispatch order, retry budget, backoff, deadlines and breaker
    accounting as the process pool — literally the same loop, with a
    ``ThreadPoolExecutor`` in the executor seat. Deadlines are
    best-effort: a stuck thread cannot be killed, so an expired job is
    charged and retried on a fresh future while the stuck thread's slot
    stays burned until the group winds down — acceptable for a seam
    whose job is protocol fidelity, not worker isolation.
    """

    name = "local"

    def run(
        self, specs, pending, outcomes, config, cache, progress,
        checkpoint=None, supervisor=None,
    ) -> None:
        from repro.fleet import pool

        pool._run_local(
            specs, pending, outcomes, config, cache, progress, checkpoint,
            supervisor,
        )


#: name -> dispatcher class. Remote/multi-host worker groups register
#: here once they exist; the JobSpec digest protocol is already
#: location-independent.
DISPATCHERS: dict[str, type] = {
    "inline": InlineDispatcher,
    "process": ProcessPoolDispatcher,
    "local": LocalWorkerGroupDispatcher,
}


def resolve_dispatcher_name(
    name: str | None = None,
    *,
    jobs: int = 1,
    use_processes: bool | None = None,
) -> str:
    """The dispatcher a fleet run will use.

    An explicit ``name`` (or ``$REPRO_FLEET_DISPATCHER``) wins, except
    that ``use_processes=False`` still downgrades ``process`` to
    ``inline`` — that flag is the historical hard "never spawn" switch
    and keeps meaning it. With no selection, the historical policy:
    ``process`` when ``jobs > 1`` and processes are not forbidden,
    ``inline`` otherwise.
    """
    name = name or os.environ.get(DISPATCHER_ENV) or None
    if name is not None:
        if name not in DISPATCHERS:
            raise FleetError(
                f"unknown dispatcher {name!r}; "
                f"available: {', '.join(sorted(DISPATCHERS))}"
            )
        if name == "process" and use_processes is False:
            return "inline"
        return name
    if jobs > 1 and use_processes is not False:
        return "process"
    return "inline"


def get_dispatcher(name: str) -> Dispatcher:
    try:
        return DISPATCHERS[name]()
    except KeyError:
        raise FleetError(
            f"unknown dispatcher {name!r}; "
            f"available: {', '.join(sorted(DISPATCHERS))}"
        ) from None
