"""``fsck`` for the fleet cache: verify, quarantine, repair.

:func:`scrub_cache` walks every shard of a
:class:`~repro.fleet.cache.ResultCache` and checks each entry against
the full integrity contract:

* the file name is a well-formed ``<64-hex-digest>.json``;
* the entry sits in the shard its digest prefix names;
* the bytes parse as JSON into a cache-entry document
  (:data:`~repro.fleet.cache.ENTRY_SCHEMA`);
* the document's digest field, and the digest recorded inside the
  result payload, both match the file name;
* the payload rehydrates into a valid
  :class:`~repro.fleet.jobs.JobResult`.

Anything that fails is **quarantined** — renamed to ``<entry>.corrupt``
in place, exactly like the read path's lazy quarantine — so the next
sweep misses, recomputes, and writes a fresh entry; the bad bytes stay
on disk for inspection and can never be read back as a result. Entries
whose code-version salt is stale are *not* corruption: they are counted
(and deleted only when ``prune_stale`` asks for garbage collection).

The scrub also repairs the store's metadata: a missing, unreadable or
out-of-date layout manifest is rewritten, and the LRU index is rebuilt
from the surviving entries (preserving known recency and pins), so a
cache recovered from a crash or a partial copy budget-accounts
correctly again.

Every quarantine increments ``fleet_cache_corrupt_total`` (labelled by
reason) on the cache's observability registry, same as lazy read-path
quarantines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.fleet.cache import (
    ENTRY_SCHEMA,
    SHARD_WIDTH,
    ResultCache,
    _is_entry_name,
)
from repro.fleet.jobs import CODE_SALT, JobResult

#: Scrub report document identifier.
SCRUB_SCHEMA = "repro.fleet.scrub-report/v1"


@dataclass
class ScrubFinding:
    """One file the scrub acted on."""

    path: str  #: path relative to the cache root
    reason: str  #: name | misplaced | json | entry-schema | digest |
    #: payload | unreadable | stale-salt | tmp-leftover
    action: str  #: quarantined | pruned

    def to_payload(self) -> dict:
        return {"path": self.path, "reason": self.reason,
                "action": self.action}


@dataclass
class ScrubReport:
    """What one scrub pass saw and did."""

    root: str
    scanned: int = 0
    ok: int = 0
    stale: int = 0
    bytes_total: int = 0
    manifest_repaired: bool = False
    index_rebuilt: bool = False
    findings: list[ScrubFinding] = field(default_factory=list)

    @property
    def quarantined(self) -> int:
        return sum(1 for f in self.findings if f.action == "quarantined")

    @property
    def pruned(self) -> int:
        return sum(1 for f in self.findings if f.action == "pruned")

    @property
    def clean(self) -> bool:
        return not self.findings and not self.manifest_repaired

    def to_payload(self) -> dict:
        return {
            "schema": SCRUB_SCHEMA,
            "root": self.root,
            "scanned": self.scanned,
            "ok": self.ok,
            "stale": self.stale,
            "quarantined": self.quarantined,
            "pruned": self.pruned,
            "bytes_total": self.bytes_total,
            "manifest_repaired": self.manifest_repaired,
            "index_rebuilt": self.index_rebuilt,
            "findings": [f.to_payload() for f in self.findings],
        }

    def format_text(self) -> str:
        lines = [
            f"scrub {self.root}: {self.scanned} scanned, {self.ok} ok, "
            f"{self.stale} stale, {self.quarantined} quarantined, "
            f"{self.pruned} pruned ({self.bytes_total} live bytes)"
        ]
        if self.manifest_repaired:
            lines.append("  manifest: repaired")
        for f in self.findings:
            lines.append(f"  {f.action}: {f.path} [{f.reason}]")
        return "\n".join(lines)


def _shard_dirs(root: Path) -> list[Path]:
    return sorted(
        p for p in root.iterdir()
        if p.is_dir() and len(p.name) == SHARD_WIDTH
        and all(c in "0123456789abcdef" for c in p.name)
    )


def scrub_cache(
    cache: ResultCache, prune_stale: bool = False
) -> ScrubReport:
    """Verify every entry of ``cache``; quarantine corruption, repair
    the manifest, rebuild the index. Returns the :class:`ScrubReport`.

    ``prune_stale`` additionally garbage-collects entries carrying a
    stale code-version salt — they can never be hits again, so deleting
    them only frees space.
    """
    root = cache.root
    report = ScrubReport(root=str(root))
    if not root.is_dir():
        return report

    # Judge the manifest from its raw bytes *before* the cache's lazy
    # layout check rewrites it — a stale manifest must be reported.
    manifest_was_ok = cache.manifest_ok()
    cache._ensure_layout(create=True)
    if not cache.manifest_ok():
        cache.write_manifest()
    report.manifest_repaired = not manifest_was_ok

    def quarantine(path: Path, reason: str) -> None:
        cache._quarantine(path, reason)
        report.findings.append(
            ScrubFinding(
                path=str(path.relative_to(root)),
                reason=reason,
                action="quarantined",
            )
        )

    survivors: dict[str, int] = {}
    for shard in _shard_dirs(root):
        for path in sorted(shard.iterdir()):
            if not path.is_file() or path.name.endswith(
                (".corrupt", ".poison")
            ):
                # Quarantine files and poison markers are bookkeeping,
                # not entries — never scanned, never re-quarantined.
                continue
            if ".tmp-" in path.name:
                # An interrupted atomic write's leftover: the final
                # rename never happened, so the bytes are garbage by
                # construction. Prune, don't quarantine.
                path.unlink(missing_ok=True)
                report.findings.append(
                    ScrubFinding(
                        path=str(path.relative_to(root)),
                        reason="tmp-leftover",
                        action="pruned",
                    )
                )
                continue
            report.scanned += 1
            if not _is_entry_name(path.name):
                quarantine(path, "name")
                continue
            digest = path.name[: -len(".json")]
            if digest[:SHARD_WIDTH] != shard.name:
                quarantine(path, "misplaced")
                continue
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                quarantine(path, "unreadable")
                continue
            try:
                doc = json.loads(text)
            except json.JSONDecodeError:
                quarantine(path, "json")
                continue
            if not isinstance(doc, dict) or doc.get("schema") != ENTRY_SCHEMA:
                quarantine(path, "entry-schema")
                continue
            if doc.get("digest") != digest:
                quarantine(path, "digest")
                continue
            try:
                result = JobResult.from_payload(doc.get("result", {}))
            except Exception:
                quarantine(path, "payload")
                continue
            if result.digest != digest:
                quarantine(path, "digest")
                continue
            stale = doc.get("salt") != CODE_SALT
            if stale:
                # Staleness, not corruption: never a hit, optionally GC'd.
                report.stale += 1
                if prune_stale:
                    path.unlink(missing_ok=True)
                    report.findings.append(
                        ScrubFinding(
                            path=str(path.relative_to(root)),
                            reason="stale-salt",
                            action="pruned",
                        )
                    )
                    continue
            size = len(text.encode("utf-8"))
            survivors[digest] = size
            report.bytes_total += size
            if not stale:
                report.ok += 1

    cache.rebuild_index(survivors)
    report.index_rebuilt = True
    return report
