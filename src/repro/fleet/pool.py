"""Fault-tolerant parallel execution of fleet jobs.

The runner maps :class:`~repro.fleet.jobs.JobSpec`\\ s to
:class:`~repro.fleet.jobs.JobResult`\\ s with, in order of preference:

1. **cache hits** — resolved in the parent before anything is spawned;
2. **a process pool** — ``ProcessPoolExecutor`` with at most
   ``config.jobs`` workers, jobs dispatched longest-first (LPT, from the
   cache's duration estimates — the same longest-job-first idea the
   paper's AID schedulers apply to loop iterations, applied here to
   whole simulations);
3. **inline serial execution** — when ``jobs <= 1``, when processes are
   disabled, or when the host cannot spawn processes at all.

Failure semantics: a job attempt can fail by raising (any exception
travels back through its future), by crashing its worker
(``BrokenProcessPool`` — the pool is rebuilt), or by exceeding the
per-job ``timeout`` (the pool is rebuilt, since a stuck worker cannot be
cancelled). Each failed attempt is retried with exponential backoff up
to ``config.retries`` times; jobs that exhaust their budget produce a
``FleetOutcome`` with ``result=None`` and an error string rather than
aborting the whole fleet — the caller decides whether missing cells are
fatal. A worker crash breaks the whole pool, so one crash resolves
*every* in-flight future with ``BrokenProcessPool``; exactly one retry
unit is charged per crash (to the lowest submission index among the
broken futures) and the innocent siblings are requeued uncharged — one
crash never burns two budget units of any single job.

Because the simulator is deterministic, a parallel fleet's results are
cell-for-cell identical to serial execution; the test suite asserts
exact equality, not tolerances.

Where jobs execute is a pluggable seam: :mod:`repro.fleet.dispatch`
defines the ``Dispatcher`` protocol, with the process pool as the
default implementation, an in-process ``local`` worker group as the
second, and ``inline`` as the degenerate serial case. All dispatchers
share this module's retry accounting and success recording, so the
determinism contract (submission-order obs merge, cache writes before
checkpoint records) holds whichever one runs the jobs.

Fault injection (used by tests and the CI smoke job): setting
``REPRO_FLEET_CRASH_ONCE=<digest-prefix>@<marker-file>`` makes the
*first* worker that picks up a matching job hard-exit after touching the
marker file; subsequent attempts find the marker and run normally.
``REPRO_FLEET_KILL_AFTER=<n>`` SIGKILLs the *coordinating* process the
moment the n-th computed (non-cached) job has been recorded — after its
cache write and checkpoint record, the exact crash window the
resume harness needs to be deterministic about.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import FleetError
from repro.fleet.cache import ResultCache
from repro.fleet.dispatch import get_dispatcher, resolve_dispatcher_name
from repro.fleet.jobs import JobResult, JobSpec
from repro.fleet.progress import NULL_PROGRESS, FleetProgress

#: Environment variable enabling crash-once fault injection.
CRASH_ONCE_ENV = "REPRO_FLEET_CRASH_ONCE"

#: Environment variable enabling the kill-the-coordinator injection.
KILL_AFTER_ENV = "REPRO_FLEET_KILL_AFTER"

#: Computed-job count for the kill-after injection (process-global: one
#: sweep per process is the injection's use case).
_computed_jobs = 0


@dataclass(frozen=True)
class FleetConfig:
    """Execution policy for one fleet run.

    Attributes:
        jobs: maximum concurrent worker processes; <= 1 runs inline.
        timeout: per-job wall-clock deadline in seconds (None = none).
        retries: extra attempts after a failed first one.
        backoff: base seconds slept before a retry, doubled per attempt.
        use_processes: force (True) or forbid (False) worker processes;
            None decides from ``jobs``.
        dispatcher: explicit dispatcher name (``inline`` / ``process`` /
            ``local``); None selects from ``jobs``/``use_processes`` (or
            ``$REPRO_FLEET_DISPATCHER``) as always.
    """

    jobs: int = 1
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.05
    use_processes: bool | None = None
    dispatcher: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise FleetError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise FleetError("timeout must be positive (or None)")
        if self.retries < 0:
            raise FleetError("retries must be >= 0")
        if self.dispatcher is not None:
            from repro.fleet.dispatch import DISPATCHERS

            if self.dispatcher not in DISPATCHERS:
                raise FleetError(
                    f"unknown dispatcher {self.dispatcher!r}; "
                    f"available: {', '.join(sorted(DISPATCHERS))}"
                )


@dataclass
class FleetOutcome:
    """What happened to one submitted job, in submission order.

    ``result`` is None only when every attempt failed; ``error`` then
    holds the last failure reason.
    """

    spec: JobSpec
    result: JobResult | None
    cached: bool = False
    attempts: int = 0
    mode: str = "inline"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


def _maybe_inject_crash(spec: JobSpec) -> None:
    """Honour ``REPRO_FLEET_CRASH_ONCE`` (worker processes only)."""
    inject = os.environ.get(CRASH_ONCE_ENV)
    if not inject:
        return
    prefix, _, marker = inject.partition("@")
    if not marker or not prefix or not spec.key.startswith(prefix):
        return
    marker_path = Path(marker)
    if marker_path.exists():
        return
    try:
        marker_path.touch(exist_ok=False)
    except OSError:
        return
    os._exit(23)  # simulate a hard worker crash (no cleanup, no excepthook)


def _worker(spec: JobSpec) -> JobResult:
    """Top-level worker entry point (must be picklable by name)."""
    _maybe_inject_crash(spec)
    return spec.execute()


def _maybe_kill_coordinator() -> None:
    """Honour ``REPRO_FLEET_KILL_AFTER`` (crash-resume test harness).

    Called after a computed job's cache write and checkpoint record —
    the crash therefore never loses acknowledged work, which is exactly
    the durability property the resume tests pin.
    """
    raw = os.environ.get(KILL_AFTER_ENV)
    if not raw:
        return
    try:
        n = int(raw)
    except ValueError:
        return
    global _computed_jobs
    _computed_jobs += 1
    if _computed_jobs >= n:
        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))


def run_jobs(
    specs: Sequence[JobSpec],
    config: FleetConfig | None = None,
    cache: ResultCache | None = None,
    progress: FleetProgress | None = None,
    checkpoint=None,
) -> list[FleetOutcome]:
    """Execute jobs through cache/dispatcher; outcomes in input order.

    ``checkpoint`` (a :class:`~repro.fleet.checkpoint.SweepCheckpoint`)
    journals the batch plan and every terminal job state — cache hits
    and computed successes as ``done``, exhausted retries as ``failed``
    — durably enough that a SIGKILLed sweep resumes from exactly the
    work it acknowledged.
    """
    config = config if config is not None else FleetConfig()
    progress = progress if progress is not None else NULL_PROGRESS
    specs = list(specs)
    if checkpoint is not None:
        checkpoint.plan([spec.key for spec in specs])
    outcomes: dict[int, FleetOutcome] = {}
    pending: list[int] = []
    for spec in specs:
        progress.job_submitted(spec)
    for i, spec in enumerate(specs):
        hit = cache.get(spec.key) if cache is not None else None
        if hit is not None:
            progress.cache_hit(spec)
            if checkpoint is not None:
                checkpoint.record(spec.key, "done", cached=True)
            outcomes[i] = FleetOutcome(
                spec, hit, cached=True, attempts=0, mode="cache"
            )
            continue
        if cache is not None:
            progress.cache_miss(spec)
        pending.append(i)
    if pending:
        name = resolve_dispatcher_name(
            config.dispatcher,
            jobs=config.jobs,
            use_processes=config.use_processes,
        )
        get_dispatcher(name).run(
            specs, pending, outcomes, config, cache, progress, checkpoint
        )
    ordered = [outcomes[i] for i in range(len(specs))]
    # Merge worker-side obs captures in submission order — never in
    # completion order — so gauge last-wins resolution (and therefore the
    # merged snapshot) is identical for jobs=1, jobs=N and cache replays.
    for outcome in ordered:
        if outcome.result is not None:
            progress.job_obs(outcome.spec, outcome.result)
    if cache is not None:
        progress.record_duration_estimates(cache, specs)
        cache.flush()  # persist batched LRU recency bumps
    return ordered


def require_ok(outcomes: Sequence[FleetOutcome]) -> list[FleetOutcome]:
    """Raise :class:`FleetError` if any outcome failed; else pass through."""
    failed = [o for o in outcomes if not o.ok]
    if failed:
        details = "; ".join(
            f"{o.spec.describe()}: {o.error}" for o in failed[:5]
        )
        more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
        raise FleetError(
            f"{len(failed)} fleet job(s) failed after retries: {details}{more}"
        )
    return list(outcomes)


# -- inline (serial) path --------------------------------------------------


def _run_inline(
    specs, pending, outcomes, config, cache, progress, checkpoint=None
) -> None:
    for idx in pending:
        spec = specs[idx]
        attempts = 0
        while True:
            attempts += 1
            progress.job_started(spec, mode="inline", attempt=attempts)
            try:
                result = spec.execute()
            except Exception as exc:  # deterministic errors still get
                reason = f"{type(exc).__name__}: {exc}"  # their retry budget
                if attempts > config.retries:
                    progress.job_failed(spec, reason)
                    if checkpoint is not None:
                        checkpoint.record(spec.key, "failed", error=reason)
                    outcomes[idx] = FleetOutcome(
                        spec, None, attempts=attempts, mode="inline",
                        error=reason,
                    )
                    break
                progress.job_retried(spec, attempt=attempts, reason=reason)
                time.sleep(config.backoff * (2 ** (attempts - 1)))
                continue
            _record_success(
                idx, spec, result, attempts, "inline", outcomes, cache,
                progress, checkpoint,
            )
            break


# -- process-pool path -----------------------------------------------------


def _lpt_order(specs, pending, cache) -> list[int]:
    """Longest-processing-time-first dispatch order.

    Jobs with no duration estimate sort first (assume long until
    measured): starting an unknown job late is the classic LPT failure
    mode. Ties keep submission order for determinism.
    """

    def key(idx: int):
        est = cache.duration_estimate(specs[idx]) if cache is not None else None
        return (0 if est is None else 1, -(est or 0.0), idx)

    return sorted(pending, key=key)


def _make_pool(max_workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=max_workers)


def _run_processes(
    specs, pending, outcomes, config, cache, progress, checkpoint=None
) -> None:
    queue: deque[int] = deque(_lpt_order(specs, pending, cache))
    attempts: dict[int, int] = {i: 0 for i in pending}
    max_workers = min(config.jobs, len(pending))
    try:
        executor = _make_pool(max_workers)
    except (OSError, ValueError, ImportError) as exc:
        progress.degraded(specs[pending[0]], f"no process pool: {exc}")
        _run_inline(
            specs, pending, outcomes, config, cache, progress, checkpoint
        )
        return

    running: dict[Future, tuple[int, float]] = {}

    def submit_ready() -> None:
        while queue and len(running) < max_workers:
            idx = queue.popleft()
            spec = specs[idx]
            progress.job_started(
                spec, mode="process", attempt=attempts[idx] + 1
            )
            running[executor.submit(_worker, spec)] = (idx, time.monotonic())

    def fail_or_requeue(idx: int, reason: str, *, requeue_front: bool) -> None:
        """Charge one failed attempt and either requeue or give up."""
        attempts[idx] += 1
        spec = specs[idx]
        if attempts[idx] > config.retries:
            progress.job_failed(spec, reason)
            if checkpoint is not None:
                checkpoint.record(spec.key, "failed", error=reason)
            outcomes[idx] = FleetOutcome(
                spec, None, attempts=attempts[idx], mode="process",
                error=reason,
            )
            return
        progress.job_retried(spec, attempt=attempts[idx], reason=reason)
        time.sleep(config.backoff * (2 ** (attempts[idx] - 1)))
        if requeue_front:
            queue.appendleft(idx)
        else:
            queue.append(idx)

    def rebuild_pool() -> bool:
        """Replace a broken/poisoned pool; False = fall back to inline."""
        nonlocal executor
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        try:
            executor = _make_pool(max_workers)
            return True
        except (OSError, ValueError) as exc:
            remaining = list(queue)
            queue.clear()
            if remaining:
                progress.degraded(
                    specs[remaining[0]], f"pool rebuild failed: {exc}"
                )
                _run_inline(
                    specs, remaining, outcomes, config, cache, progress,
                    checkpoint,
                )
            return False

    try:
        while queue or running:
            submit_ready()
            deadline_slack = None
            if config.timeout is not None and running:
                now = time.monotonic()
                deadline_slack = max(
                    0.0,
                    min(
                        t0 + config.timeout - now
                        for (_, t0) in running.values()
                    ),
                )
            done, _ = wait(
                running, timeout=deadline_slack, return_when=FIRST_COMPLETED
            )
            broken = False
            # A broken pool resolves *every* non-finished future with
            # BrokenProcessPool, so several may land in one done set.
            # Exactly one crash happened: charge one attempt (to the
            # lowest submission index, for determinism) and requeue the
            # rest uncharged — they died with the pool, they did not
            # crash it.
            for fut in sorted(done, key=lambda f: running[f][0]):
                idx, _t0 = running.pop(fut)
                try:
                    result = fut.result()
                except BrokenProcessPool:
                    if broken:
                        queue.appendleft(idx)
                    else:
                        broken = True
                        fail_or_requeue(
                            idx, "worker process crashed (pool broken)",
                            requeue_front=True,
                        )
                except Exception as exc:
                    fail_or_requeue(
                        idx, f"{type(exc).__name__}: {exc}",
                        requeue_front=False,
                    )
                else:
                    _record_success(
                        idx, specs[idx], result, attempts[idx] + 1,
                        "process", outcomes, cache, progress, checkpoint,
                    )
            if broken:
                # Every in-flight sibling died with the pool: requeue them
                # (their attempt is not charged — they did nothing wrong).
                for fut, (idx, _t0) in list(running.items()):
                    queue.appendleft(idx)
                running.clear()
                if not rebuild_pool():
                    return
                continue
            if config.timeout is not None:
                now = time.monotonic()
                expired = [
                    (fut, idx)
                    for fut, (idx, t0) in running.items()
                    if now - t0 > config.timeout
                ]
                if expired:
                    # A stuck worker cannot be cancelled; rebuild the pool
                    # and requeue the innocent bystanders.
                    for fut, idx in expired:
                        running.pop(fut)
                        progress.job_timeout(specs[idx], config.timeout)
                        fail_or_requeue(
                            idx,
                            f"timed out after {config.timeout:g}s",
                            requeue_front=False,
                        )
                    for fut, (idx, _t0) in list(running.items()):
                        queue.appendleft(idx)
                    running.clear()
                    if not rebuild_pool():
                        return
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _record_success(
    idx, spec, result, attempts, mode, outcomes, cache, progress,
    checkpoint=None,
) -> None:
    if cache is not None:
        cache.put(result)
        cache.note_duration(spec, result.duration)
    if checkpoint is not None:
        checkpoint.record(spec.key, "done")
    progress.job_completed(spec, duration=result.duration, attempts=attempts)
    outcomes[idx] = FleetOutcome(
        spec, result, cached=False, attempts=attempts, mode=mode
    )
    # Crash-window injection: the job's cache entry and checkpoint record
    # are durable by this point, so a SIGKILL here loses no acknowledged
    # work — the property the resume harness asserts.
    _maybe_kill_coordinator()
