"""Fault-tolerant parallel execution of fleet jobs.

The runner maps :class:`~repro.fleet.jobs.JobSpec`\\ s to
:class:`~repro.fleet.jobs.JobResult`\\ s with, in order of preference:

1. **cache hits** — resolved in the parent before anything is spawned;
2. **a process pool** — ``ProcessPoolExecutor`` with at most
   ``config.jobs`` workers, jobs dispatched longest-first (LPT, from the
   cache's duration estimates — the same longest-job-first idea the
   paper's AID schedulers apply to loop iterations, applied here to
   whole simulations);
3. **inline serial execution** — when ``jobs <= 1``, when processes are
   disabled, or when the host cannot spawn processes at all.

Failure semantics: a job attempt can fail by raising (any exception
travels back through its future), by crashing its worker
(``BrokenProcessPool`` — the pool is rebuilt), or by exceeding its
in-flight deadline — the per-job ``timeout``, or the supervisor's
earlier EWMA-based *hang* deadline when the cache knows how long jobs
of that shape usually take (the pool is rebuilt either way, since a
stuck worker cannot be cancelled). Each failed attempt is retried with
exponential backoff — seeded digest-keyed jitter, and a cumulative
budget capped at the per-job ``timeout`` so retrying never outlives the
job's own deadline — up to ``config.retries`` times; jobs that exhaust
their budget produce a ``FleetOutcome`` with ``result=None`` and an
error string rather than aborting the whole fleet — the caller decides
whether missing cells are fatal. A worker crash breaks the whole pool,
so one crash resolves *every* in-flight future with
``BrokenProcessPool``; exactly one retry unit is charged per crash (to
the lowest submission index among the broken futures) and the innocent
siblings are requeued uncharged — one crash never burns two budget
units of any single job.

Supervision (:mod:`repro.fleet.supervisor`) rides on the same loop:

* a job whose failures *broke the pool* ``poison_threshold`` times is
  **quarantined** instead of retried — a ``poisoned`` checkpoint
  record, a ``.poison`` cache-side marker (so later sweeps skip it up
  front), and the sweep continues;
* every pool-breaking failure also charges the running tier's
  **circuit breaker**; when it trips, the dispatcher raises
  :class:`~repro.fleet.supervisor.BreakerOpen` and :func:`run_jobs`
  degrades the unresolved jobs along ``process -> local -> inline``
  (the submission-order obs merge happens after whichever tier finishes,
  so degradation never perturbs merged snapshots);
* cache I/O errors (``OSError`` from ``get``/``put``/``flush``) degrade
  to misses or uncached successes and count on
  ``fleet_cache_errors_total`` — a failing cache directory costs
  recompute time, never the sweep.

Because the simulator is deterministic, a parallel fleet's results are
cell-for-cell identical to serial execution; the test suite asserts
exact equality, not tolerances — including under every injected fault
of the chaos harness (:mod:`repro.fleet.chaos`).

Where jobs execute is a pluggable seam: :mod:`repro.fleet.dispatch`
defines the ``Dispatcher`` protocol, with the process pool as the
default implementation, an in-process ``local`` worker group as the
second, and ``inline`` as the degenerate serial case. All dispatchers
share this module's retry accounting and success recording, so the
determinism contract (submission-order obs merge, cache writes before
checkpoint records) holds whichever one runs the jobs.

Fault injection (used by tests and the CI smoke job): setting
``REPRO_FLEET_CRASH_ONCE=<digest-prefix>@<marker-file>`` makes the
*first* worker that picks up a matching job hard-exit after touching the
marker file; subsequent attempts find the marker and run normally.
``REPRO_FLEET_KILL_AFTER=<n>`` SIGKILLs the *coordinating* process the
moment the n-th computed (non-cached) job has been recorded — after its
cache write and checkpoint record, the exact crash window the
resume harness needs to be deterministic about. Richer, seeded
infrastructure-fault schedules (worker kills and stalls, cache I/O
errors, pool-break storms) come from :mod:`repro.fleet.chaos` via
``$REPRO_FLEET_CHAOS`` or an in-process activation.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import NamedTuple, Sequence

from repro.errors import FleetError
from repro.fleet.cache import ResultCache
from repro.fleet.dispatch import get_dispatcher, resolve_dispatcher_name
from repro.fleet.jobs import JobResult, JobSpec
from repro.fleet.progress import NULL_PROGRESS, FleetProgress
from repro.fleet.supervisor import DEGRADATION, BreakerOpen, Supervisor

#: Environment variable enabling crash-once fault injection.
CRASH_ONCE_ENV = "REPRO_FLEET_CRASH_ONCE"

#: Environment variable enabling the kill-the-coordinator injection.
KILL_AFTER_ENV = "REPRO_FLEET_KILL_AFTER"

#: Computed-job count for the kill-after injection (process-global: one
#: sweep per process is the injection's use case).
_computed_jobs = 0


@dataclass(frozen=True)
class FleetConfig:
    """Execution policy for one fleet run.

    Attributes:
        jobs: maximum concurrent worker processes; <= 1 runs inline.
        timeout: per-job wall-clock deadline in seconds (None = none).
        retries: extra attempts after a failed first one.
        backoff: base seconds slept before a retry, doubled per attempt
            (jittered and budget-capped by the supervisor).
        use_processes: force (True) or forbid (False) worker processes;
            None decides from ``jobs``.
        dispatcher: explicit dispatcher name (``inline`` / ``process`` /
            ``local``); None selects from ``jobs``/``use_processes`` (or
            ``$REPRO_FLEET_DISPATCHER``) as always.
    """

    jobs: int = 1
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.05
    use_processes: bool | None = None
    dispatcher: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise FleetError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise FleetError("timeout must be positive (or None)")
        if self.retries < 0:
            raise FleetError("retries must be >= 0")
        if self.dispatcher is not None:
            from repro.fleet.dispatch import DISPATCHERS

            if self.dispatcher not in DISPATCHERS:
                raise FleetError(
                    f"unknown dispatcher {self.dispatcher!r}; "
                    f"available: {', '.join(sorted(DISPATCHERS))}"
                )


@dataclass
class FleetOutcome:
    """What happened to one submitted job, in submission order.

    ``result`` is None only when every attempt failed (or the job was
    quarantined as poison — ``poisoned`` then distinguishes the two);
    ``error`` holds the last failure reason.
    """

    spec: JobSpec
    result: JobResult | None
    cached: bool = False
    attempts: int = 0
    mode: str = "inline"
    error: str | None = None
    poisoned: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


def _maybe_inject_crash(spec: JobSpec) -> None:
    """Honour ``REPRO_FLEET_CRASH_ONCE`` (worker processes only)."""
    inject = os.environ.get(CRASH_ONCE_ENV)
    if not inject:
        return
    prefix, _, marker = inject.partition("@")
    if not marker or not prefix or not spec.key.startswith(prefix):
        return
    marker_path = Path(marker)
    if marker_path.exists():
        return
    try:
        marker_path.touch(exist_ok=False)
    except OSError:
        return
    os._exit(23)  # simulate a hard worker crash (no cleanup, no excepthook)


def _worker(spec: JobSpec) -> JobResult:
    """Top-level worker entry point (must be picklable by name)."""
    _maybe_inject_crash(spec)
    from repro.fleet import chaos

    chaos.inject_worker_chaos(spec.key, in_worker=True)
    return spec.execute()


def _execute_spec(spec: JobSpec) -> JobResult:
    """Coordinator-side execution (inline / local tiers): same chaos
    seam as :func:`_worker`, but kills are always raised, never signals
    — an injected worker death must not take the coordinator down."""
    from repro.fleet import chaos

    chaos.inject_worker_chaos(spec.key, in_worker=False)
    return spec.execute()


def _is_injected_crash(exc: BaseException) -> bool:
    from repro.fleet.chaos import ChaosWorkerCrash

    return isinstance(exc, ChaosWorkerCrash)


def _maybe_kill_coordinator() -> None:
    """Honour ``REPRO_FLEET_KILL_AFTER`` (crash-resume test harness).

    Called after a computed job's cache write and checkpoint record —
    the crash therefore never loses acknowledged work, which is exactly
    the durability property the resume tests pin.
    """
    raw = os.environ.get(KILL_AFTER_ENV)
    if not raw:
        return
    try:
        n = int(raw)
    except ValueError:
        return
    global _computed_jobs
    _computed_jobs += 1
    if _computed_jobs >= n:
        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))


class _BackoffBudget:
    """Cumulative backoff-sleep budget per job.

    The total time a job spends *sleeping between retries* never exceeds
    its own per-job ``timeout`` — a pathological retry sequence cannot
    outlive the deadline it is nominally bound by. With no timeout the
    budget is unbounded (as before).
    """

    def __init__(self, timeout: float | None) -> None:
        self.timeout = timeout
        self._spent: dict[int, float] = {}

    def sleep(self, idx: int, delay: float) -> float:
        if self.timeout is not None:
            remaining = self.timeout - self._spent.get(idx, 0.0)
            delay = max(0.0, min(delay, remaining))
        if delay > 0.0:
            time.sleep(delay)
            self._spent[idx] = self._spent.get(idx, 0.0) + delay
        return delay


def run_jobs(
    specs: Sequence[JobSpec],
    config: FleetConfig | None = None,
    cache: ResultCache | None = None,
    progress: FleetProgress | None = None,
    checkpoint=None,
    supervisor: Supervisor | None = None,
) -> list[FleetOutcome]:
    """Execute jobs through cache/dispatcher; outcomes in input order.

    ``checkpoint`` (a :class:`~repro.fleet.checkpoint.SweepCheckpoint`)
    journals the batch plan and every terminal job state — cache hits
    and computed successes as ``done``, exhausted retries as ``failed``,
    quarantined poison jobs as ``poisoned`` — durably enough that a
    SIGKILLed sweep resumes from exactly the work it acknowledged.

    ``supervisor`` (a :class:`~repro.fleet.supervisor.Supervisor`)
    carries hang detection, poison quarantine, circuit-breaker and
    retry-jitter state; pass one explicitly to share breaker/poison
    accounting across several batches (the CLI does, per invocation).
    """
    config = config if config is not None else FleetConfig()
    progress = progress if progress is not None else NULL_PROGRESS
    supervisor = supervisor if supervisor is not None else Supervisor()
    specs = list(specs)
    if checkpoint is not None:
        checkpoint.plan([spec.key for spec in specs])
    outcomes: dict[int, FleetOutcome] = {}
    pending: list[int] = []
    for spec in specs:
        progress.job_submitted(spec)
    for i, spec in enumerate(specs):
        hit = None
        if cache is not None:
            try:
                hit = cache.get(spec.key)
            except OSError as exc:
                progress.cache_error(spec, "get", f"{exc}")
        if hit is not None:
            progress.cache_hit(spec)
            if checkpoint is not None:
                checkpoint.record(spec.key, "done", cached=True)
            outcomes[i] = FleetOutcome(
                spec, hit, cached=True, attempts=0, mode="cache"
            )
            continue
        # A digest a previous sweep quarantined as poison is skipped up
        # front — running it again would just break this pool too. A
        # cache hit wins over the marker (a result proves it can run).
        poison = None
        if cache is not None:
            try:
                poison = cache.poison_reason(spec.key)
            except OSError:
                poison = None
        if poison is not None:
            _record_poisoned(
                i, spec, 0, "quarantine",
                f"quarantined by a previous sweep: {poison}",
                outcomes, None, progress, checkpoint, supervisor,
            )
            continue
        if cache is not None:
            progress.cache_miss(spec)
        pending.append(i)
    if pending:
        entry = resolve_dispatcher_name(
            config.dispatcher,
            jobs=config.jobs,
            use_processes=config.use_processes,
        )
        _run_ladder(
            entry, specs, pending, outcomes, config, cache, progress,
            checkpoint, supervisor,
        )
    ordered = [outcomes[i] for i in range(len(specs))]
    # Merge worker-side obs captures in submission order — never in
    # completion order — so gauge last-wins resolution (and therefore the
    # merged snapshot) is identical for jobs=1, jobs=N and cache replays.
    for outcome in ordered:
        if outcome.result is not None:
            progress.job_obs(outcome.spec, outcome.result)
    if cache is not None:
        try:
            progress.record_duration_estimates(cache, specs)
            cache.flush()  # persist batched LRU recency bumps
        except OSError as exc:
            progress.cache_error(specs[0], "flush", f"{exc}")
    return ordered


def _run_ladder(
    entry, specs, pending, outcomes, config, cache, progress, checkpoint,
    supervisor,
) -> None:
    """Run the degradation ladder starting at the ``entry`` dispatcher.

    Each tier's dispatcher resolves what it can; a tripped circuit
    breaker surfaces as :class:`BreakerOpen` and moves the unresolved
    jobs one tier right (``process -> local -> inline``). A tier whose
    breaker is already open (from an earlier batch under the same
    supervisor) is skipped up front — unless its cooldown elapsed, in
    which case the batch doubles as the half-open probe.
    """
    chain = DEGRADATION.get(entry, (entry,))
    pos = 0
    while True:
        remaining = [i for i in pending if i not in outcomes]
        if not remaining:
            return
        while pos < len(chain) - 1 and not supervisor.tier_allowed(chain[pos]):
            progress.breaker_skipped(specs[remaining[0]], chain[pos])
            pos += 1
        tier = chain[pos]
        try:
            get_dispatcher(tier).run(
                specs, remaining, outcomes, config, cache, progress,
                checkpoint, supervisor=supervisor,
            )
        except BreakerOpen as exc:
            if pos >= len(chain) - 1:
                raise FleetError(
                    f"breaker tripped on the last-resort tier {tier!r}: "
                    f"{exc.reason}"
                ) from exc
            progress.breaker_tripped(
                specs[remaining[0]], exc.tier, chain[pos + 1], exc.reason
            )
            pos += 1
            continue
        still = [i for i in pending if i not in outcomes]
        if still == remaining:
            raise FleetError(
                f"dispatcher {tier!r} made no progress on "
                f"{len(remaining)} pending job(s)"
            )


def require_ok(outcomes: Sequence[FleetOutcome]) -> list[FleetOutcome]:
    """Raise :class:`FleetError` if any outcome failed; else pass through."""
    failed = [o for o in outcomes if not o.ok]
    if failed:
        details = "; ".join(
            f"{o.spec.describe()}: {o.error}" for o in failed[:5]
        )
        more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
        raise FleetError(
            f"{len(failed)} fleet job(s) failed after retries: {details}{more}"
        )
    return list(outcomes)


# -- inline (serial) path --------------------------------------------------


def _run_inline(
    specs, pending, outcomes, config, cache, progress, checkpoint=None,
    supervisor=None,
) -> None:
    supervisor = supervisor if supervisor is not None else Supervisor()
    budget = _BackoffBudget(config.timeout)
    for idx in pending:
        if idx in outcomes:
            continue
        spec = specs[idx]
        attempts = 0
        while True:
            attempts += 1
            progress.job_started(spec, mode="inline", attempt=attempts)
            try:
                result = _execute_spec(spec)
            except Exception as exc:  # deterministic errors still get
                reason = f"{type(exc).__name__}: {exc}"  # their retry budget
                if _is_injected_crash(exc) and (
                    supervisor.note_break(spec.key)
                    >= supervisor.config.poison_threshold
                ):
                    _record_poisoned(
                        idx, spec, attempts, "inline", reason, outcomes,
                        cache, progress, checkpoint, supervisor,
                    )
                    break
                if attempts > config.retries:
                    progress.job_failed(spec, reason)
                    if checkpoint is not None:
                        checkpoint.record(spec.key, "failed", error=reason)
                    outcomes[idx] = FleetOutcome(
                        spec, None, attempts=attempts, mode="inline",
                        error=reason,
                    )
                    supervisor.tick()
                    break
                progress.job_retried(spec, attempt=attempts, reason=reason)
                budget.sleep(
                    idx,
                    supervisor.backoff_delay(spec.key, attempts, config.backoff),
                )
                continue
            _record_success(
                idx, spec, result, attempts, "inline", outcomes, cache,
                progress, checkpoint, supervisor,
            )
            break


# -- pooled paths (process workers / local worker group) -------------------


def _lpt_order(specs, pending, cache) -> list[int]:
    """Longest-processing-time-first dispatch order.

    Jobs with no duration estimate sort first (assume long until
    measured): starting an unknown job late is the classic LPT failure
    mode. Ties keep submission order for determinism.
    """

    def key(idx: int):
        est = None
        if cache is not None:
            try:
                est = cache.duration_estimate(specs[idx])
            except OSError:
                est = None
        return (0 if est is None else 1, -(est or 0.0), idx)

    return sorted(pending, key=key)


def _make_pool(max_workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=max_workers)


def _break_pool(executor) -> bool:
    """SIGKILL one resident worker process (chaos pool-break events)."""
    procs = getattr(executor, "_processes", None) or {}
    for pid in list(procs):
        try:
            os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
        except OSError:
            continue
        return True
    return False


class _InFlight(NamedTuple):
    idx: int
    t0: float
    deadline: float | None
    is_hang: bool  #: deadline came from the EWMA hang detector


def _run_supervised_pool(
    tier, specs, pending, outcomes, config, cache, progress, checkpoint,
    supervisor, *, process: bool,
) -> None:
    """The shared pooled execution loop (``process`` and ``local``).

    One LPT queue, one retry/backoff policy, one deadline watcher, one
    broken-pool protocol — the only difference between the tiers is the
    executor (worker processes vs. threads) and what a deadline expiry
    can do about a stuck worker (processes are rebuilt; a stuck thread's
    slot stays burned until the group winds down).
    """
    from repro.fleet import chaos as chaos_mod

    engine = chaos_mod.current_engine()
    queue: deque[int] = deque(_lpt_order(specs, pending, cache))
    attempts: dict[int, int] = {i: 0 for i in pending}
    budget = _BackoffBudget(config.timeout)
    max_workers = min(config.jobs, len(pending)) or 1
    if process:
        try:
            executor = _make_pool(max_workers)
        except (OSError, ValueError, ImportError) as exc:
            progress.degraded(specs[pending[0]], f"no process pool: {exc}")
            _run_inline(
                specs, pending, outcomes, config, cache, progress,
                checkpoint, supervisor,
            )
            return
    else:
        executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fleet-local"
        )

    running: dict[Future, _InFlight] = {}

    def infra_failure(reason: str) -> None:
        """Charge the tier's breaker; raise :class:`BreakerOpen` on a
        trip (unresolved jobs move to the next ladder tier)."""
        if supervisor.infra_failure(tier):
            raise BreakerOpen(tier, reason)

    def submit_ready() -> None:
        while queue and len(running) < max_workers:
            idx = queue.popleft()
            if idx in outcomes:
                continue
            spec = specs[idx]
            progress.job_started(spec, mode=tier, attempt=attempts[idx] + 1)
            deadline, is_hang = supervisor.job_deadline(
                spec, cache, config.timeout
            )
            try:
                if process:
                    fut = executor.submit(_worker, spec)
                else:
                    fut = executor.submit(_execute_spec, spec)
            except BrokenProcessPool:
                # The pool died between a crash and the wait loop seeing
                # it: requeue uncharged and let the main loop run the
                # standard broken-pool protocol (any in-flight futures
                # carry the same crash, and the charge, if they exist).
                queue.appendleft(idx)
                raise
            running[fut] = _InFlight(idx, time.monotonic(), deadline, is_hang)
            if engine is not None and engine.pool_break(spec.key):
                progress.pool_break_injected(spec)
                if not (process and _break_pool(executor)):
                    # No worker process to kill (thread tier, or none
                    # spawned yet): degrade the event to a pure breaker
                    # charge — infrastructure failed, no job did.
                    infra_failure("injected pool break")

    def fail_or_requeue(
        idx: int, reason: str, *, pool_break: bool, requeue_front: bool
    ) -> None:
        """Charge one failed attempt; quarantine, requeue or give up."""
        attempts[idx] += 1
        spec = specs[idx]
        if pool_break and (
            supervisor.note_break(spec.key)
            >= supervisor.config.poison_threshold
        ):
            _record_poisoned(
                idx, spec, attempts[idx], tier, reason, outcomes, cache,
                progress, checkpoint, supervisor,
            )
            return
        if attempts[idx] > config.retries:
            progress.job_failed(spec, reason)
            if checkpoint is not None:
                checkpoint.record(spec.key, "failed", error=reason)
            outcomes[idx] = FleetOutcome(
                spec, None, attempts=attempts[idx], mode=tier, error=reason,
            )
            supervisor.tick()
            return
        progress.job_retried(spec, attempt=attempts[idx], reason=reason)
        budget.sleep(
            idx,
            supervisor.backoff_delay(spec.key, attempts[idx], config.backoff),
        )
        if requeue_front:
            queue.appendleft(idx)
        else:
            queue.append(idx)

    def rebuild_pool() -> bool:
        """Replace a broken/poisoned pool; False = fall back to inline."""
        nonlocal executor
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        try:
            executor = _make_pool(max_workers)
            return True
        except (OSError, ValueError) as exc:
            remaining = [i for i in queue if i not in outcomes]
            queue.clear()
            if remaining:
                progress.degraded(
                    specs[remaining[0]], f"pool rebuild failed: {exc}"
                )
                _run_inline(
                    specs, remaining, outcomes, config, cache, progress,
                    checkpoint, supervisor,
                )
            return False

    try:
        while queue or running:
            try:
                submit_ready()
            except BrokenProcessPool:
                for fut, info in list(running.items()):
                    queue.appendleft(info.idx)
                running.clear()
                infra_failure("worker process crashed (pool broken)")
                if not rebuild_pool():
                    return
                continue
            deadline_slack = None
            bounded = [
                info.t0 + info.deadline
                for info in running.values()
                if info.deadline is not None
            ]
            if bounded:
                deadline_slack = max(0.0, min(bounded) - time.monotonic())
            done, _ = wait(
                running, timeout=deadline_slack, return_when=FIRST_COMPLETED
            )
            broken = False
            # A broken pool resolves *every* non-finished future with
            # BrokenProcessPool, so several may land in one done set.
            # Exactly one crash happened: charge one attempt (to the
            # lowest submission index, for determinism) and requeue the
            # rest uncharged — they died with the pool, they did not
            # crash it.
            for fut in sorted(done, key=lambda f: running[f].idx):
                info = running.pop(fut)
                idx = info.idx
                try:
                    result = fut.result()
                except BrokenProcessPool:
                    if broken:
                        queue.appendleft(idx)
                    else:
                        broken = True
                        fail_or_requeue(
                            idx, "worker process crashed (pool broken)",
                            pool_break=True, requeue_front=True,
                        )
                except Exception as exc:
                    crash = _is_injected_crash(exc)
                    fail_or_requeue(
                        idx, f"{type(exc).__name__}: {exc}",
                        pool_break=crash, requeue_front=False,
                    )
                    if crash:
                        # A simulated worker death is an infrastructure
                        # failure (unlike a deterministic job exception).
                        infra_failure("worker killed in job")
                else:
                    _record_success(
                        idx, specs[idx], result, attempts[idx] + 1, tier,
                        outcomes, cache, progress, checkpoint, supervisor,
                    )
            if broken:
                # Every in-flight sibling died with the pool: requeue them
                # (their attempt is not charged — they did nothing wrong).
                for fut, info in list(running.items()):
                    queue.appendleft(info.idx)
                running.clear()
                infra_failure("worker process crashed (pool broken)")
                if not rebuild_pool():
                    return
                continue
            now = time.monotonic()
            expired = [
                info
                for info in running.values()
                if info.deadline is not None and now - info.t0 > info.deadline
            ]
            if expired:
                for fut, info in list(running.items()):
                    if info in expired:
                        running.pop(fut)
                for info in expired:
                    spec = specs[info.idx]
                    if info.is_hang:
                        progress.job_hang(spec, info.deadline)
                        reason = (
                            f"hung: silent past {info.deadline:.3g}s "
                            f"(duration estimate x hang factor)"
                        )
                    else:
                        progress.job_timeout(spec, info.deadline)
                        reason = f"timed out after {info.deadline:g}s"
                    fail_or_requeue(
                        info.idx, reason, pool_break=True, requeue_front=False
                    )
                if process:
                    # A stuck worker cannot be cancelled; rebuild the pool
                    # and requeue the innocent bystanders.
                    for fut, info in list(running.items()):
                        queue.appendleft(info.idx)
                    running.clear()
                    infra_failure("worker deadline expired")
                    if not rebuild_pool():
                        return
                else:
                    infra_failure("worker deadline expired")
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _run_processes(
    specs, pending, outcomes, config, cache, progress, checkpoint=None,
    supervisor=None,
) -> None:
    _run_supervised_pool(
        "process", specs, pending, outcomes, config, cache, progress,
        checkpoint,
        supervisor if supervisor is not None else Supervisor(),
        process=True,
    )


def _run_local(
    specs, pending, outcomes, config, cache, progress, checkpoint=None,
    supervisor=None,
) -> None:
    _run_supervised_pool(
        "local", specs, pending, outcomes, config, cache, progress,
        checkpoint,
        supervisor if supervisor is not None else Supervisor(),
        process=False,
    )


def _record_success(
    idx, spec, result, attempts, mode, outcomes, cache, progress,
    checkpoint=None, supervisor=None,
) -> None:
    if cache is not None:
        try:
            cache.put(result)
            cache.note_duration(spec, result.duration)
        except OSError as exc:
            # A failing cache directory costs a future recompute, never
            # the sweep: the result is still recorded and merged.
            progress.cache_error(spec, "put", f"{exc}")
    if checkpoint is not None:
        checkpoint.record(spec.key, "done")
    progress.job_completed(spec, duration=result.duration, attempts=attempts)
    outcomes[idx] = FleetOutcome(
        spec, result, cached=False, attempts=attempts, mode=mode
    )
    if supervisor is not None:
        # Completion doubles as the worker heartbeat and closes the
        # tier's breaker (consecutive-failure streak broken).
        if mode in DEGRADATION:
            supervisor.infra_success(mode)
        supervisor.tick()
    # Crash-window injection: the job's cache entry and checkpoint record
    # are durable by this point, so a SIGKILL here loses no acknowledged
    # work — the property the resume harness asserts.
    _maybe_kill_coordinator()


def _record_poisoned(
    idx, spec, attempts, mode, reason, outcomes, cache, progress,
    checkpoint=None, supervisor=None,
) -> None:
    """Quarantine one poison job: journal it, mark it cache-side, move
    on — the sweep continues without it."""
    progress.job_poisoned(spec, reason)
    if checkpoint is not None:
        checkpoint.record(spec.key, "poisoned", error=reason)
    if cache is not None:
        try:
            cache.mark_poisoned(spec.key, reason)
        except OSError as exc:
            progress.cache_error(spec, "poison", f"{exc}")
    outcomes[idx] = FleetOutcome(
        spec, None, attempts=attempts, mode=mode, error=reason, poisoned=True,
    )
    if supervisor is not None:
        supervisor.tick()
