"""Deterministic infrastructure-chaos harness for the fleet.

:mod:`repro.faults` (PR 5) injects *simulated* asymmetry faults — the
DES's own cores throttle and die. This module injects faults into the
**orchestrator's environment**: workers are SIGKILLed or stall inside a
job, the result cache's directory starts failing (ENOSPC, EACCES, torn
writes), and the process pool is broken out from under in-flight
futures. The supervision layer (:mod:`repro.fleet.supervisor`) exists
to survive exactly this, and the harness makes that survivable-ness a
*property*:

    For any seeded :class:`ChaosPlan` without poison jobs, the sweep
    completes with result tables and infrastructure-stripped merged
    observability snapshots **byte-identical** to the fault-free run;
    with poison jobs, exactly those jobs are quarantined and every
    other job completes.

Plans are frozen, JSON-round-trippable and seeded
(:func:`random_plan`), like PR-5 ``FaultPlan``s. Event kinds:

* ``kill`` — the worker executing a matching job dies: a real
  ``SIGKILL`` in ``mode="real"`` process workers (breaking the pool),
  a raised :class:`ChaosWorkerCrash` everywhere else (attributed
  exactly, which is what makes the poison-quarantine property testable
  in ``mode="sim"``). ``times=None`` makes a job *poison*: it kills
  its worker on every attempt, forever.
* ``stall`` — the worker sleeps ``seconds`` inside the job before
  computing; long stalls trip the per-job deadline (timeout or the
  supervisor's EWMA hang detector).
* ``cache`` — the next ``times`` cache ``get``/``put`` calls for
  matching digests raise ``OSError(errno)``; ``torn=True`` puts
  additionally leave truncated garbage at the entry path (an
  externally-torn write the scrub/quarantine path must absorb).
* ``pool-break`` — a worker process is SIGKILLed right after a
  matching submission (a ``BrokenProcessPool`` storm); on thread/inline
  tiers it degrades to a pure circuit-breaker infrastructure failure
  that fails no job.

Cross-process determinism: the coordinating process activates a plan
(or points ``$REPRO_FLEET_CHAOS`` at its JSON file, which worker
processes inherit); bounded events (``times=N``) burn marker files in a
state directory with ``O_EXCL`` so one firing is one firing, whichever
process observes it and however often the pool is rebuilt.
"""

from __future__ import annotations

import errno as errno_mod
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import FleetError
from repro.sim.rng import stable_seed

#: Chaos-plan document identifier.
CHAOS_SCHEMA = "repro.fleet.chaos-plan/v1"

#: Environment variable carrying the plan JSON path into worker
#: processes (the coordinator sets it; workers load lazily).
CHAOS_ENV = "REPRO_FLEET_CHAOS"

#: Errno names a cache fault may raise.
CACHE_ERRNOS = ("ENOSPC", "EACCES", "EIO")


class ChaosWorkerCrash(RuntimeError):
    """An injected worker death (the simulated form of a SIGKILL).

    Deliberately *not* a :class:`~repro.errors.ReproError`: it models an
    infrastructure failure, not a library error, and the pool treats it
    exactly like a pool-breaking worker crash (it charges the job's
    poison-break count and the tier's circuit breaker).
    """


# -- plan model ------------------------------------------------------------


@dataclass(frozen=True)
class WorkerKill:
    """Kill the worker executing a matching job ``times`` times
    (``times=None`` = every attempt — a poison job)."""

    job: str  #: full digest, digest prefix, or ``"*"``
    times: int | None = 1

    kind = "kill"

    def validate(self) -> None:
        _check_job(self.job, self.kind)
        _check_times(self.times, self.kind, none_ok=True)


@dataclass(frozen=True)
class WorkerStall:
    """Sleep ``seconds`` inside a matching job before computing."""

    job: str
    seconds: float
    times: int | None = 1

    kind = "stall"

    def validate(self) -> None:
        _check_job(self.job, self.kind)
        _check_times(self.times, self.kind, none_ok=False)
        if not (self.seconds > 0.0):
            raise FleetError(
                f"stall seconds must be > 0, got {self.seconds}"
            )


@dataclass(frozen=True)
class CacheFault:
    """Fail the next ``times`` cache ``op`` calls for matching digests
    with ``OSError(errno_name)``; a huge ``times`` models a persistent
    failure (the directory stays broken for the whole sweep)."""

    op: str  #: "get" | "put"
    job: str
    errno_name: str = "ENOSPC"
    times: int | None = 1
    torn: bool = False  #: (put only) leave truncated bytes behind too

    kind = "cache"

    def validate(self) -> None:
        _check_job(self.job, self.kind)
        _check_times(self.times, self.kind, none_ok=True)
        if self.op not in ("get", "put"):
            raise FleetError(f"cache fault op must be get/put, got {self.op!r}")
        if self.errno_name not in CACHE_ERRNOS:
            raise FleetError(
                f"cache fault errno must be one of {CACHE_ERRNOS}, "
                f"got {self.errno_name!r}"
            )
        if self.torn and self.op != "put":
            raise FleetError("torn cache faults only apply to put")

    @property
    def errno(self) -> int:
        return getattr(errno_mod, self.errno_name)


@dataclass(frozen=True)
class PoolBreak:
    """Break the worker pool right after a matching submission."""

    job: str = "*"
    times: int | None = 1

    kind = "pool-break"

    def validate(self) -> None:
        _check_job(self.job, self.kind)
        _check_times(self.times, self.kind, none_ok=False)


def _check_job(job: str, kind: str) -> None:
    if not isinstance(job, str) or not job:
        raise FleetError(f"{kind} event needs a non-empty job selector")


def _check_times(times: int | None, kind: str, *, none_ok: bool) -> None:
    if times is None:
        if not none_ok:
            raise FleetError(f"{kind} event needs a bounded times")
        return
    if not isinstance(times, int) or times < 1:
        raise FleetError(f"{kind} times must be >= 1 (or None), got {times!r}")


_EVENT_KINDS = {
    "kill": WorkerKill,
    "stall": WorkerStall,
    "cache": CacheFault,
    "pool-break": PoolBreak,
}

ChaosEvent = WorkerKill | WorkerStall | CacheFault | PoolBreak


@dataclass(frozen=True)
class ChaosPlan:
    """A frozen, JSON-round-trippable infrastructure-fault schedule."""

    events: tuple[ChaosEvent, ...] = ()
    seed: int | None = None
    mode: str = "sim"  #: "sim" (raise) or "real" (SIGKILL workers)

    def validate(self) -> None:
        if self.mode not in ("sim", "real"):
            raise FleetError(f"chaos mode must be sim or real, got {self.mode!r}")
        for event in self.events:
            event.validate()

    def matching(self, kind: str, digest: str) -> list[tuple[int, ChaosEvent]]:
        """(plan index, event) pairs of ``kind`` whose selector matches."""
        return [
            (i, e)
            for i, e in enumerate(self.events)
            if e.kind == kind and (e.job == "*" or digest.startswith(e.job))
        ]

    def poison_digests(self, digests: Iterable[str]) -> frozenset[str]:
        """Digests this plan makes unrecoverable (kill on every attempt)."""
        unlimited = [
            e for e in self.events
            if e.kind == "kill" and e.times is None
        ]
        return frozenset(
            d for d in digests
            if any(e.job == "*" or d.startswith(e.job) for e in unlimited)
        )

    # -- JSON round trip ---------------------------------------------------

    def to_payload(self) -> dict:
        events = []
        for e in self.events:
            rec: dict = {"kind": e.kind, "job": e.job, "times": e.times}
            if e.kind == "stall":
                rec["seconds"] = e.seconds
            elif e.kind == "cache":
                rec["op"] = e.op
                rec["errno"] = e.errno_name
                rec["torn"] = e.torn
            events.append(rec)
        return {
            "schema": CHAOS_SCHEMA,
            "seed": self.seed,
            "mode": self.mode,
            "events": events,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ChaosPlan":
        if payload.get("schema") != CHAOS_SCHEMA:
            raise FleetError(
                f"not a chaos plan document: schema={payload.get('schema')!r}"
            )
        events: list[ChaosEvent] = []
        for rec in payload.get("events", []):
            kind = rec.get("kind")
            if kind not in _EVENT_KINDS:
                raise FleetError(f"unknown chaos event kind {kind!r}")
            times = rec.get("times")
            times = None if times is None else int(times)
            job = str(rec.get("job", ""))
            if kind == "kill":
                events.append(WorkerKill(job=job, times=times))
            elif kind == "stall":
                events.append(
                    WorkerStall(
                        job=job, seconds=float(rec["seconds"]), times=times
                    )
                )
            elif kind == "cache":
                events.append(
                    CacheFault(
                        op=str(rec.get("op", "get")),
                        job=job,
                        errno_name=str(rec.get("errno", "ENOSPC")),
                        times=times,
                        torn=bool(rec.get("torn", False)),
                    )
                )
            else:
                events.append(PoolBreak(job=job, times=times))
        seed = payload.get("seed")
        plan = cls(
            events=tuple(events),
            seed=None if seed is None else int(seed),
            mode=str(payload.get("mode", "sim")),
        )
        plan.validate()
        return plan

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True, indent=2)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ChaosPlan":
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetError(f"unreadable chaos plan at {path}: {exc}") from exc
        return cls.from_payload(doc)


def random_plan(
    seed: int,
    digests: Sequence[str],
    *,
    mode: str = "sim",
    poison: int = 0,
    kinds: Sequence[str] = ("kill", "stall", "cache", "pool-break"),
    max_events: int = 4,
    stall_choices: Sequence[float] = (0.06, 0.12, 0.5),
) -> ChaosPlan:
    """A seeded plan over the sweep's actual job digests.

    Recoverability by construction: each digest carries at most one
    pool-breaking event (kill or stall), which stays below the default
    poison threshold of 2, so a ``poison=0`` plan never quarantines
    anything — the byte-equality property's precondition. ``poison``
    additionally marks that many distinct digests as poison jobs
    (kill on every attempt).
    """
    if not digests:
        raise FleetError("random chaos plan needs at least one digest")
    if poison > len(digests):
        raise FleetError(
            f"cannot poison {poison} of {len(digests)} digests"
        )
    rng = np.random.default_rng(stable_seed("fleet-chaos-plan", seed))
    events: list[ChaosEvent] = []
    breakable: set[str] = set()  # digests already carrying a kill/stall
    n_events = 1 + int(rng.integers(0, max_events))
    for _ in range(n_events):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        digest = digests[int(rng.integers(0, len(digests)))]
        if kind in ("kill", "stall") and digest in breakable:
            continue  # cap break-causing events at one per digest
        if kind == "kill":
            breakable.add(digest)
            events.append(WorkerKill(job=digest, times=1))
        elif kind == "stall":
            breakable.add(digest)
            seconds = float(
                stall_choices[int(rng.integers(0, len(stall_choices)))]
            )
            events.append(WorkerStall(job=digest, seconds=seconds, times=1))
        elif kind == "cache":
            op = ("get", "put")[int(rng.integers(0, 2))]
            times: int | None = (1, 2, 1_000_000)[int(rng.integers(0, 3))]
            torn = op == "put" and rng.random() < 0.25
            events.append(
                CacheFault(
                    op=op,
                    job=("*", digest)[int(rng.integers(0, 2))],
                    errno_name=CACHE_ERRNOS[
                        int(rng.integers(0, len(CACHE_ERRNOS)))
                    ],
                    times=times,
                    torn=torn,
                )
            )
        else:
            events.append(PoolBreak(job="*", times=1 + int(rng.integers(0, 3))))
    if poison:
        candidates = [d for d in digests if d not in breakable]
        if len(candidates) < poison:
            candidates = list(digests)
        picks = rng.choice(len(candidates), size=poison, replace=False)
        for p in sorted(int(i) for i in picks):
            events.append(WorkerKill(job=candidates[p], times=None))
    plan = ChaosPlan(events=tuple(events), seed=seed, mode=mode)
    plan.validate()
    return plan


# -- runtime engine --------------------------------------------------------


class ChaosEngine:
    """Interprets a plan at the injection seams, with firing state.

    Bounded events (``times=N``) must fire exactly N times across every
    process that observes the plan, surviving pool rebuilds (each worker
    process re-loads the plan from the environment). With a
    ``state_dir`` the engine burns one ``O_EXCL`` marker file per
    firing; without one (in-process activation) it counts in memory
    under a lock.
    """

    def __init__(
        self, plan: ChaosPlan, state_dir: str | Path | None = None
    ) -> None:
        plan.validate()
        self.plan = plan
        self.state_dir = None if state_dir is None else Path(state_dir)
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        self._fired: dict[int, int] = {}
        self._lock = threading.Lock()

    def _fire(self, event_index: int, times: int | None) -> bool:
        """Consume one firing of an event; False when exhausted."""
        if times is None:
            return True
        if self.state_dir is not None:
            for k in range(times):
                marker = self.state_dir / f"evt-{event_index}-{k}"
                try:
                    fd = os.open(
                        marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                    )
                except FileExistsError:
                    continue
                except OSError:
                    return False
                os.close(fd)
                return True
            return False
        with self._lock:
            n = self._fired.get(event_index, 0)
            if n >= times:
                return False
            self._fired[event_index] = n + 1
            return True

    def worker_action(self, digest: str) -> tuple[str, float] | None:
        """The injected action for one execution of ``digest``:
        ``("kill", 0.0)``, ``("stall", seconds)``, or None."""
        for idx, event in self.plan.matching("kill", digest):
            if self._fire(idx, event.times):
                return ("kill", 0.0)
        for idx, event in self.plan.matching("stall", digest):
            if self._fire(idx, event.times):
                return ("stall", event.seconds)
        return None

    def cache_fault(self, op: str, digest: str) -> CacheFault | None:
        """The cache fault (if any) to raise for this ``op`` call."""
        for idx, event in self.plan.matching("cache", digest):
            if event.op == op and self._fire(idx, event.times):
                return event
        return None

    def pool_break(self, digest: str) -> bool:
        """Should this submission break the pool?"""
        for idx, event in self.plan.matching("pool-break", digest):
            if self._fire(idx, event.times):
                return True
        return False


#: The active engine: ``(source, engine)`` where source is the env value
#: it was loaded from, or ``"<explicit>"`` for in-process activation.
_ACTIVE: tuple[str, ChaosEngine] | None = None


def activate(
    plan: ChaosPlan, state_dir: str | Path | None = None
) -> ChaosEngine:
    """Install a plan in this process (wins over the environment)."""
    global _ACTIVE
    engine = ChaosEngine(plan, state_dir=state_dir)
    _ACTIVE = ("<explicit>", engine)
    return engine


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def active(plan: ChaosPlan, state_dir: str | Path | None = None):
    engine = activate(plan, state_dir=state_dir)
    try:
        yield engine
    finally:
        deactivate()


def current_engine() -> ChaosEngine | None:
    """The active engine: an explicit activation, else a plan loaded
    (and cached per env value) from ``$REPRO_FLEET_CHAOS``."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE[0] == "<explicit>":
        return _ACTIVE[1]
    source = os.environ.get(CHAOS_ENV)
    if not source:
        _ACTIVE = None
        return None
    if _ACTIVE is not None and _ACTIVE[0] == source:
        return _ACTIVE[1]
    plan = ChaosPlan.load(source)
    engine = ChaosEngine(plan, state_dir=Path(source).with_name(
        Path(source).name + ".state"
    ))
    _ACTIVE = (source, engine)
    return engine


def inject_worker_chaos(digest: str, *, in_worker: bool) -> None:
    """The worker-side injection seam, called before a job executes.

    ``in_worker`` is True only inside spawned worker processes — a
    ``mode="real"`` kill there is a genuine SIGKILL (breaking the
    pool); everywhere else (sim mode, or coordinator-side tiers after
    degradation) the kill is a raised :class:`ChaosWorkerCrash`, never
    a signal that would take the coordinator down with it.
    """
    engine = current_engine()
    if engine is None:
        return
    action = engine.worker_action(digest)
    if action is None:
        return
    kind, seconds = action
    if kind == "stall":
        time.sleep(seconds)
        return
    if in_worker and engine.plan.mode == "real":
        import signal

        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
    raise ChaosWorkerCrash(  # chaos: injected foreign failure
        f"worker killed by chaos plan (job {digest[:12]})"
    )


# -- fault-injecting cache wrapper -----------------------------------------


class ChaosCache:
    """A :class:`~repro.fleet.cache.ResultCache` proxy whose ``get`` /
    ``put`` raise the plan's injected I/O errors.

    A torn put additionally writes truncated garbage to the entry path
    before raising — the externally-torn write the read path's
    quarantine (and the scrub) must absorb. Everything else delegates
    to the wrapped cache unchanged.
    """

    def __init__(self, inner, engine: ChaosEngine) -> None:
        self._inner = inner
        self._engine = engine

    def get(self, digest: str):
        fault = self._engine.cache_fault("get", digest)
        if fault is not None:
            raise OSError(  # chaos: injected foreign failure
                fault.errno, f"injected cache get fault ({fault.errno_name})"
            )
        return self._inner.get(digest)

    def put(self, result):
        fault = self._engine.cache_fault("put", result.digest)
        if fault is not None:
            if fault.torn:
                path = self._inner.path_for(result.digest)
                try:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    path.write_text(
                        '{"schema": "torn-by-chaos", "digest": "'
                        + result.digest[:16],
                        encoding="utf-8",
                    )
                except OSError:
                    pass
            raise OSError(  # chaos: injected foreign failure
                fault.errno, f"injected cache put fault ({fault.errno_name})"
            )
        return self._inner.put(result)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


# -- byte-equality-under-chaos check ---------------------------------------


def infrastructure_comparable(snapshot: Mapping) -> dict:
    """The comparable snapshot minus every fleet-infrastructure
    instrument (``fleet_*`` counters/gauges/histograms).

    What remains is the merged per-job simulated-time observability —
    the part a chaos run must reproduce byte-for-byte. Retry counts,
    cache temperature, hang/poison/breaker tallies are infrastructure
    weather, not simulation output, and are stripped.
    """
    from repro.obs.merge import comparable_snapshot

    doc = comparable_snapshot(snapshot)
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for kind, items in list(metrics.items()):
            if isinstance(items, list):
                metrics[kind] = [
                    m
                    for m in items
                    if not str(m.get("name", "")).startswith("fleet_")
                ]
    return doc


def outcome_table(outcomes) -> str:
    """A canonical text table of successful outcomes (the chaos check's
    byte-comparison surface; ``repr`` floats, so equality is exact)."""
    lines = []
    for o in outcomes:
        if o.result is None:
            continue
        r = o.result
        lines.append(
            f"{r.program}\t{o.spec.label or o.spec.env.schedule}\t"
            f"{r.completion_time!r}\t{r.serial_time!r}\t{r.total_dispatches}"
        )
    return "\n".join(lines)


def chaos_specs(root_seed: int = 0):
    """The small standard grid the chaos check sweeps (4 jobs)."""
    from repro.amp.presets import odroid_xu4
    from repro.experiments.harness import default_configs, grid_specs
    from repro.workloads.registry import get_program

    return grid_specs(
        odroid_xu4(),
        [get_program("EP"), get_program("IS")],
        default_configs()[:2],
        root_seed,
    )


def run_chaos_case(
    specs,
    plan: ChaosPlan,
    baseline: dict,
    workdir: str | Path,
    *,
    dispatcher: str = "local",
    jobs: int = 2,
    timeout: float = 0.3,
    retries: int = 2,
    poison_threshold: int | None = None,
) -> dict:
    """Run one sweep under ``plan`` and compare it to ``baseline``.

    ``baseline`` comes from :func:`fault_free_baseline`. Returns a
    JSON-ready verdict payload (``ok``, mismatches, quarantine sets,
    fleet counters). Real-mode plans default to a disarmed poison
    threshold unless the plan carries poison jobs: pool-break
    attribution in a real pool is heuristic (lowest in-flight index),
    so innocent jobs may absorb break charges.
    """
    from repro.fleet.cache import ResultCache
    from repro.fleet.checkpoint import SweepCheckpoint
    from repro.fleet.pool import FleetConfig, run_jobs
    from repro.fleet.progress import FleetProgress
    from repro.fleet.supervisor import Supervisor, SupervisorConfig

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    keys = [s.key for s in specs]
    expected_poison = plan.poison_digests(keys)
    if poison_threshold is None:
        if plan.mode == "real" and not expected_poison:
            poison_threshold = 1_000_000
        else:
            poison_threshold = 2
    supervisor = Supervisor(
        SupervisorConfig(
            hang_floor=0.05,
            poison_threshold=poison_threshold,
            breaker_threshold=3,
            breaker_cooldown=8,
            seed=plan.seed or 0,
        )
    )
    progress = FleetProgress()
    saved_env = os.environ.get(CHAOS_ENV)
    try:
        if plan.mode == "real":
            plan_path = plan.save(workdir / "chaos-plan.json")
            os.environ[CHAOS_ENV] = str(plan_path)
            engine = activate(plan, state_dir=workdir / "chaos-state")
        else:
            engine = activate(plan)
        cache = ChaosCache(ResultCache(workdir / "cache"), engine)
        checkpoint = SweepCheckpoint(workdir / "checkpoint.jsonl")
        retries_eff = retries if plan.mode != "real" else max(retries, 6)
        outcomes = run_jobs(
            specs,
            FleetConfig(
                jobs=jobs,
                timeout=timeout,
                retries=retries_eff,
                backoff=0.001,
                dispatcher=dispatcher,
            ),
            cache=cache,
            progress=progress,
            checkpoint=checkpoint,
            supervisor=supervisor,
        )
    finally:
        deactivate()
        if saved_env is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = saved_env

    mismatches: list[str] = []
    actual_poison = {o.spec.key for o in outcomes if o.poisoned}
    if actual_poison != set(expected_poison):
        mismatches.append(
            f"quarantine set mismatch: expected "
            f"{sorted(d[:12] for d in expected_poison)}, got "
            f"{sorted(d[:12] for d in actual_poison)}"
        )
    for o, base in zip(outcomes, baseline["results"]):
        if o.spec.key in expected_poison:
            continue
        if not o.ok:
            mismatches.append(
                f"{o.spec.describe()}: failed under chaos: {o.error}"
            )
        elif o.result != base:
            mismatches.append(
                f"{o.spec.describe()}: result differs from fault-free run"
            )
    if not expected_poison:
        if outcome_table(outcomes) != baseline["table"]:
            mismatches.append("result table differs from fault-free run")
        snap = json.dumps(
            infrastructure_comparable(progress.obs_snapshot()),
            sort_keys=True,
        )
        if snap != baseline["snapshot"]:
            mismatches.append(
                "infrastructure-stripped obs snapshot differs from "
                "fault-free run"
            )
    return {
        "seed": plan.seed,
        "mode": plan.mode,
        "events": len(plan.events),
        "ok": not mismatches,
        "mismatches": mismatches,
        "expected_poison": sorted(expected_poison),
        "actual_poison": sorted(actual_poison),
        "plan": plan.to_payload(),
        "fleet": progress.summary(),
    }


def fault_free_baseline(specs) -> dict:
    """The fault-free reference run (inline, no cache, no chaos)."""
    from repro.fleet.pool import FleetConfig, require_ok, run_jobs
    from repro.fleet.progress import FleetProgress

    progress = FleetProgress()
    outcomes = require_ok(
        run_jobs(specs, FleetConfig(jobs=1), progress=progress)
    )
    return {
        "results": [o.result for o in outcomes],
        "table": outcome_table(outcomes),
        "snapshot": json.dumps(
            infrastructure_comparable(progress.obs_snapshot()),
            sort_keys=True,
        ),
    }


def run_chaos_check(
    *,
    plans: int = 1,
    seed: int = 0,
    poison: int = 0,
    mode: str = "sim",
    dispatcher: str = "local",
    jobs: int = 2,
    workdir: str | Path | None = None,
    emit=print,
) -> tuple[int, dict]:
    """The ``python -m repro.fleet chaos`` entry point.

    Sweeps ``plans`` seeded chaos plans (seeds ``seed .. seed+plans-1``)
    over the standard small grid and checks the byte-equality /
    quarantine property against one fault-free baseline. Returns
    ``(exit_code, report_payload)``; the report carries every failing
    plan verbatim so a CI failure is replayable.
    """
    import tempfile

    specs = chaos_specs()
    baseline = fault_free_baseline(specs)
    keys = [s.key for s in specs]
    cases = []
    failed = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        base_dir = Path(workdir) if workdir is not None else Path(tmp)
        for i in range(plans):
            plan = random_plan(seed + i, keys, mode=mode, poison=poison)
            verdict = run_chaos_case(
                specs,
                plan,
                baseline,
                base_dir / f"seed-{seed + i}",
                dispatcher=dispatcher,
                jobs=jobs,
            )
            cases.append(verdict)
            status = "ok" if verdict["ok"] else "MISMATCH"
            emit(
                f"chaos seed {seed + i}: {status} "
                f"({verdict['events']} events, "
                f"{verdict['fleet'].get('retries', 0)} retried, "
                f"{len(verdict['actual_poison'])} poisoned)"
            )
            if not verdict["ok"]:
                failed += 1
                for m in verdict["mismatches"]:
                    emit(f"  - {m}")
    report = {
        "schema": "repro.fleet.chaos-report/v1",
        "plans": plans,
        "seed": seed,
        "mode": mode,
        "dispatcher": dispatcher,
        "poison": poison,
        "failed": failed,
        "cases": cases,
    }
    emit(
        f"chaos: {plans - failed}/{plans} plans byte-identical to the "
        f"fault-free run" + (f", {failed} FAILED" if failed else "")
    )
    return (1 if failed else 0), report
