"""Fleet observability: counters, a per-job event log, merged metrics.

:class:`FleetProgress` is the fleet's sibling of the runtime's
:class:`~repro.obs.Observability` integration — in fact it *wraps* an
``Observability`` bundle, so fleet counters land in the same metrics
registry format, export through the same
:func:`~repro.obs.snapshot.build_snapshot`, and read back with the same
report tooling. On top of the counters it keeps an append-only per-job
event log (submitted / cache-hit / started / retried / failed /
completed), JSONL-writable like the scheduler decision log, and a
:class:`~repro.obs.merge.MergedSnapshot` folding every job's worker-side
observability capture into the same registry — so one
:meth:`FleetProgress.obs_snapshot` document carries both the fleet's own
counters and the merged runtime metrics of every cell it ran.

Counters (all label-free, so summaries are single reads):

* ``fleet_jobs_submitted`` — specs handed to the fleet;
* ``fleet_cache_hits`` / ``fleet_cache_misses`` — cache resolution;
* ``fleet_jobs_computed`` — jobs that actually ran a simulation;
* ``fleet_retries`` — re-submissions after a crash/timeout/error;
* ``fleet_timeouts`` — per-job deadline expiries;
* ``fleet_failures`` — jobs abandoned after exhausting retries;
* ``fleet_heartbeats_total`` — worker heartbeats (piggybacked on job
  completion; silence is what the hang detector measures);
* ``fleet_hangs_detected_total`` — workers aborted early by the
  EWMA-based hang deadline (before the full per-job timeout);
* ``fleet_jobs_poisoned_total`` — jobs quarantined after repeatedly
  breaking the worker pool;
* ``fleet_breaker_trips_total`` — circuit-breaker trips (each one
  degrades the sweep one dispatcher tier);
* ``fleet_cache_errors_total`` — cache I/O errors tolerated (degraded
  to misses / uncached successes);
* ``fleet_job_duration_seconds`` — histogram of compute wall times;
* ``fleet_duration_estimate_seconds`` — gauge per job profile: the
  cache's EWMA wall-time estimate feeding LPT dispatch, published so
  dispatch-order decisions are auditable from the report CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.fleet.jobs import JobResult, JobSpec
from repro.obs import Observability
from repro.obs.merge import MergedSnapshot

#: Event-log format identifier.
EVENTS_SCHEMA = "repro.fleet.events/v1"

#: Wall-time histogram buckets (seconds): sim cells run milliseconds to
#: minutes, so decades with a 3x midpoint resolve the useful range.
DURATION_BUCKETS = (0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 60.0, 600.0)

#: Counter names, in summary order.
COUNTERS = (
    "fleet_jobs_submitted",
    "fleet_cache_hits",
    "fleet_cache_misses",
    "fleet_jobs_computed",
    "fleet_retries",
    "fleet_timeouts",
    "fleet_failures",
    "fleet_heartbeats_total",
    "fleet_hangs_detected_total",
    "fleet_jobs_poisoned_total",
    "fleet_breaker_trips_total",
    "fleet_cache_errors_total",
)


class FleetProgress:
    """Counters + per-job event log for one fleet run (or several)."""

    def __init__(self, obs: Observability | None = None) -> None:
        self.obs = obs if obs is not None else Observability()
        self.events: list[dict] = []
        # Pre-create every counter so summaries read zeros, not errors.
        for name in COUNTERS:
            self.obs.registry.counter(name)
        self._duration_hist = self.obs.registry.histogram(
            "fleet_job_duration_seconds", buckets=DURATION_BUCKETS
        )
        # Per-job worker captures merge into the same registry, so one
        # snapshot carries fleet counters + merged runtime metrics.
        self.merged = MergedSnapshot(registry=self.obs.registry)

    # -- hooks called by the pool ------------------------------------------

    def job_submitted(self, spec: JobSpec) -> None:
        self._count("fleet_jobs_submitted")
        self._event("submitted", spec)

    def cache_hit(self, spec: JobSpec) -> None:
        self._count("fleet_cache_hits")
        self._event("cache_hit", spec)

    def cache_miss(self, spec: JobSpec) -> None:
        self._count("fleet_cache_misses")
        self._event("cache_miss", spec)

    def job_started(self, spec: JobSpec, mode: str, attempt: int) -> None:
        self._event("started", spec, mode=mode, attempt=attempt)

    def job_retried(self, spec: JobSpec, attempt: int, reason: str) -> None:
        self._count("fleet_retries")
        self._event("retried", spec, attempt=attempt, reason=reason)

    def job_timeout(self, spec: JobSpec, timeout: float) -> None:
        self._count("fleet_timeouts")
        self._event("timeout", spec, timeout=timeout)

    def job_failed(self, spec: JobSpec, error: str) -> None:
        self._count("fleet_failures")
        self._event("failed", spec, error=error)

    def job_completed(
        self, spec: JobSpec, duration: float, attempts: int
    ) -> None:
        self._count("fleet_jobs_computed")
        # Completion is the worker heartbeat: hang detection measures
        # silence between these.
        self._count("fleet_heartbeats_total")
        self._duration_hist.observe(duration)
        self._event("completed", spec, duration=duration, attempts=attempts)

    def job_hang(self, spec: JobSpec, deadline: float) -> None:
        """A worker went silent past its EWMA-based hang deadline."""
        self._count("fleet_hangs_detected_total")
        self._event("hang", spec, deadline=deadline)

    def job_poisoned(self, spec: JobSpec, reason: str) -> None:
        """A job was quarantined after repeatedly breaking the pool."""
        self._count("fleet_jobs_poisoned_total")
        self._event("poisoned", spec, reason=reason)

    def breaker_tripped(
        self, spec: JobSpec, tier: str, next_tier: str, reason: str
    ) -> None:
        """A tier's circuit breaker opened; the sweep degrades."""
        self._count("fleet_breaker_trips_total")
        self._event(
            "breaker_tripped", spec, tier=tier, next_tier=next_tier,
            reason=reason,
        )

    def breaker_skipped(self, spec: JobSpec, tier: str) -> None:
        """A batch skipped a tier whose breaker was already open."""
        self._event("breaker_skipped", spec, tier=tier)

    def pool_break_injected(self, spec: JobSpec) -> None:
        """The chaos harness broke the pool after this submission."""
        self._event("pool_break_injected", spec)

    def cache_error(self, spec: JobSpec, op: str, error: str) -> None:
        """A cache I/O error was tolerated (miss / uncached success)."""
        self._count("fleet_cache_errors_total")
        self._event("cache_error", spec, op=op, error=error)

    def degraded(self, spec: JobSpec, reason: str) -> None:
        """The pool fell back to inline execution."""
        self._event("degraded", spec, reason=reason)

    # -- per-job observability capture -------------------------------------

    def job_obs(self, spec: JobSpec, result: JobResult) -> None:
        """Merge one job's worker-side obs capture into the fleet view.

        The pool calls this for every successful outcome — computed or
        replayed from cache — in *submission order*, which pins the
        gauge last-wins semantics: serial and parallel runs of the same
        grid merge identically.
        """
        snapshot = result.obs_snapshot()
        if snapshot is None:
            return
        self.merged.add_job(
            snapshot,
            program=spec.program.name,
            config=spec.label or spec.env.schedule,
            platform=spec.platform.name,
        )

    def record_duration_estimates(self, cache, specs: Iterable[JobSpec]) -> None:
        """Publish the cache's EWMA wall-time estimate per job profile
        as ``fleet_duration_estimate_seconds`` gauges, making the LPT
        dispatch order auditable from the obs report."""
        estimates = cache.profile_estimates()
        for profile in sorted({spec.profile_key for spec in specs}):
            if profile in estimates:
                self.obs.registry.gauge(
                    "fleet_duration_estimate_seconds", profile=profile
                ).set(estimates[profile])

    def obs_snapshot(self, meta: dict | None = None) -> dict:
        """The fleet-level snapshot document: fleet counters + merged
        per-job metrics + the combined decision summary."""
        return self.merged.to_snapshot(meta=meta)

    # -- reading -----------------------------------------------------------

    def count(self, name: str) -> float:
        return self.obs.registry.value(name)

    def summary(self) -> dict:
        """One flat dict of every fleet counter (JSON-ready)."""
        return {
            "schema": "repro.fleet.summary/v1",
            **{name.removeprefix("fleet_"): int(self.count(name))
               for name in COUNTERS},
        }

    def format_summary(self) -> str:
        s = self.summary()
        line = (
            f"fleet: {s['jobs_submitted']} jobs — "
            f"{s['cache_hits']} cached, {s['jobs_computed']} computed, "
            f"{s['retries']} retried, {s['failures']} failed"
        )
        if s.get("jobs_poisoned_total"):
            line += f", {s['jobs_poisoned_total']} poisoned"
        if s.get("breaker_trips_total"):
            line += f", {s['breaker_trips_total']} breaker trip(s)"
        return line

    def write_events_jsonl(self, path: str | Path) -> Path:
        """Dump the event log, one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for rec in self.events:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return path

    # -- internals ---------------------------------------------------------

    def _count(self, name: str) -> None:
        self.obs.registry.counter(name).inc()

    def _event(self, event: str, spec: JobSpec, **fields: object) -> None:
        rec: dict = {
            "seq": len(self.events),
            "event": event,
            "digest": spec.key,
            "program": spec.program.name,
            "label": spec.label or spec.env.schedule,
            "platform": spec.platform.name,
        }
        rec.update(fields)
        self.events.append(rec)


#: Shared do-nothing sink: the default when callers pass no progress.
class NullFleetProgress(FleetProgress):
    """Every hook is a no-op; used when no progress sink is supplied."""

    def __init__(self) -> None:  # noqa: D107 - no registry at all
        self.obs = None  # type: ignore[assignment]
        self.events = []

    def _count(self, name: str) -> None:
        pass

    def _event(self, event: str, spec: JobSpec, **fields: object) -> None:
        pass

    def job_completed(self, spec, duration, attempts):  # type: ignore[override]
        pass

    def job_obs(self, spec, result):  # type: ignore[override]
        pass

    def record_duration_estimates(self, cache, specs):  # type: ignore[override]
        pass

    def obs_snapshot(self, meta=None):  # type: ignore[override]
        return MergedSnapshot().to_snapshot(meta=meta)

    def count(self, name: str) -> float:
        return 0.0

    def summary(self) -> dict:
        return {"schema": "repro.fleet.summary/v1"}


NULL_PROGRESS = NullFleetProgress()
