"""Fleet observability: counters and a per-job event log.

:class:`FleetProgress` is the fleet's sibling of the runtime's
:class:`~repro.obs.Observability` integration — in fact it *wraps* an
``Observability`` bundle, so fleet counters land in the same metrics
registry format, export through the same
:func:`~repro.obs.snapshot.build_snapshot`, and read back with the same
report tooling. On top of the counters it keeps an append-only per-job
event log (submitted / cache-hit / started / retried / failed /
completed), JSONL-writable like the scheduler decision log.

Counters (all label-free, so summaries are single reads):

* ``fleet_jobs_submitted`` — specs handed to the fleet;
* ``fleet_cache_hits`` / ``fleet_cache_misses`` — cache resolution;
* ``fleet_jobs_computed`` — jobs that actually ran a simulation;
* ``fleet_retries`` — re-submissions after a crash/timeout/error;
* ``fleet_timeouts`` — per-job deadline expiries;
* ``fleet_failures`` — jobs abandoned after exhausting retries;
* ``fleet_job_duration_seconds`` — histogram of compute wall times.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fleet.jobs import JobSpec
from repro.obs import Observability

#: Event-log format identifier.
EVENTS_SCHEMA = "repro.fleet.events/v1"

#: Wall-time histogram buckets (seconds): sim cells run milliseconds to
#: minutes, so decades with a 3x midpoint resolve the useful range.
DURATION_BUCKETS = (0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 60.0, 600.0)

#: Counter names, in summary order.
COUNTERS = (
    "fleet_jobs_submitted",
    "fleet_cache_hits",
    "fleet_cache_misses",
    "fleet_jobs_computed",
    "fleet_retries",
    "fleet_timeouts",
    "fleet_failures",
)


class FleetProgress:
    """Counters + per-job event log for one fleet run (or several)."""

    def __init__(self, obs: Observability | None = None) -> None:
        self.obs = obs if obs is not None else Observability()
        self.events: list[dict] = []
        # Pre-create every counter so summaries read zeros, not errors.
        for name in COUNTERS:
            self.obs.registry.counter(name)
        self._duration_hist = self.obs.registry.histogram(
            "fleet_job_duration_seconds", buckets=DURATION_BUCKETS
        )

    # -- hooks called by the pool ------------------------------------------

    def job_submitted(self, spec: JobSpec) -> None:
        self._count("fleet_jobs_submitted")
        self._event("submitted", spec)

    def cache_hit(self, spec: JobSpec) -> None:
        self._count("fleet_cache_hits")
        self._event("cache_hit", spec)

    def cache_miss(self, spec: JobSpec) -> None:
        self._count("fleet_cache_misses")
        self._event("cache_miss", spec)

    def job_started(self, spec: JobSpec, mode: str, attempt: int) -> None:
        self._event("started", spec, mode=mode, attempt=attempt)

    def job_retried(self, spec: JobSpec, attempt: int, reason: str) -> None:
        self._count("fleet_retries")
        self._event("retried", spec, attempt=attempt, reason=reason)

    def job_timeout(self, spec: JobSpec, timeout: float) -> None:
        self._count("fleet_timeouts")
        self._event("timeout", spec, timeout=timeout)

    def job_failed(self, spec: JobSpec, error: str) -> None:
        self._count("fleet_failures")
        self._event("failed", spec, error=error)

    def job_completed(
        self, spec: JobSpec, duration: float, attempts: int
    ) -> None:
        self._count("fleet_jobs_computed")
        self._duration_hist.observe(duration)
        self._event("completed", spec, duration=duration, attempts=attempts)

    def degraded(self, spec: JobSpec, reason: str) -> None:
        """The pool fell back to inline execution."""
        self._event("degraded", spec, reason=reason)

    # -- reading -----------------------------------------------------------

    def count(self, name: str) -> float:
        return self.obs.registry.value(name)

    def summary(self) -> dict:
        """One flat dict of every fleet counter (JSON-ready)."""
        return {
            "schema": "repro.fleet.summary/v1",
            **{name.removeprefix("fleet_"): int(self.count(name))
               for name in COUNTERS},
        }

    def format_summary(self) -> str:
        s = self.summary()
        return (
            f"fleet: {s['jobs_submitted']} jobs — "
            f"{s['cache_hits']} cached, {s['jobs_computed']} computed, "
            f"{s['retries']} retried, {s['failures']} failed"
        )

    def write_events_jsonl(self, path: str | Path) -> Path:
        """Dump the event log, one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for rec in self.events:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return path

    # -- internals ---------------------------------------------------------

    def _count(self, name: str) -> None:
        self.obs.registry.counter(name).inc()

    def _event(self, event: str, spec: JobSpec, **fields: object) -> None:
        rec: dict = {
            "seq": len(self.events),
            "event": event,
            "digest": spec.key,
            "program": spec.program.name,
            "label": spec.label or spec.env.schedule,
            "platform": spec.platform.name,
        }
        rec.update(fields)
        self.events.append(rec)


#: Shared do-nothing sink: the default when callers pass no progress.
class NullFleetProgress(FleetProgress):
    """Every hook is a no-op; used when no progress sink is supplied."""

    def __init__(self) -> None:  # noqa: D107 - no registry at all
        self.obs = None  # type: ignore[assignment]
        self.events = []

    def _count(self, name: str) -> None:
        pass

    def _event(self, event: str, spec: JobSpec, **fields: object) -> None:
        pass

    def job_completed(self, spec, duration, attempts):  # type: ignore[override]
        pass

    def count(self, name: str) -> float:
        return 0.0

    def summary(self) -> dict:
        return {"schema": "repro.fleet.summary/v1"}


NULL_PROGRESS = NullFleetProgress()
