"""Fleet supervision: heartbeats, hang detection, poison quarantine,
circuit-breaker degradation, and reproducible retry jitter.

The PR-9 :class:`~repro.fleet.dispatch.Dispatcher` seam made *where*
jobs run pluggable; this module hardens the orchestrator against its
own environment. One :class:`Supervisor` instance watches a whole sweep
(it can span several :func:`~repro.fleet.pool.run_jobs` batches — the
CLI reuses one across grids) and provides four mechanisms:

* **Heartbeats + hang detection.** Every job completion is a heartbeat
  (``fleet_heartbeats_total``). A worker that goes silent is caught
  *before* the full per-job timeout: each submitted job gets an
  early-abort deadline derived from the cache's EWMA duration estimate
  (``estimate x hang_factor``, floored at ``hang_floor``); when it
  expires the job is treated exactly like a timeout — charged, the pool
  cancelled-and-rebuilt — but counted on ``fleet_hangs_detected_total``
  and reported as a hang. Jobs with no estimate fall back to the plain
  timeout.

* **Poison-job quarantine.** A job whose failures *broke the pool*
  (worker crash, timeout, hang) ``poison_threshold`` times (default 2)
  is not retried again even with budget left: it is quarantined — a
  ``poisoned`` record in the checkpoint journal, a ``.poison`` marker
  beside its cache entry slot, ``fleet_jobs_poisoned_total`` — and the
  sweep continues. A later sweep over the same cache skips the digest
  up front instead of breaking its pool all over again.

* **Per-dispatcher circuit breakers.** ``breaker_threshold`` (default
  3) *consecutive* infrastructure failures — pool breaks, timeouts,
  hangs; never deterministic job exceptions — trip the tier's breaker:
  the dispatcher raises :class:`BreakerOpen`, ``run_jobs`` counts
  ``fleet_breaker_trips_total`` and degrades along
  ``process -> local -> inline`` (:data:`DEGRADATION`). The submission
  -order observability merge happens after whichever tier finishes the
  work, so degradation never perturbs merged snapshots. Breakers
  recover by **half-open probing**: after ``breaker_cooldown`` terminal
  job events (a logical clock, not wall time — deterministic), the
  next batch is allowed one probe of the tripped tier; a success closes
  the breaker, a failure reopens it immediately.

* **Seeded retry jitter.** Retry backoff is multiplied by a factor in
  ``[1 - jitter, 1 + jitter)`` derived from SHA-256 of
  ``(seed, digest, attempt)`` — thundering-herd resubmits are spread
  out, yet every run of the same sweep sleeps the same schedule.

Nothing here touches simulated numbers: supervision changes *when and
where* a job is retried, never what it computes, so the fleet's
byte-equality contracts (jobs=1 == jobs=N == warm cache, and the chaos
harness's equality-under-chaos property) hold under every mechanism.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import BreakerOpen, FleetError

__all__ = [
    "DEGRADATION",
    "Breaker",
    "BreakerOpen",
    "Supervisor",
    "SupervisorConfig",
]

#: Graceful-degradation ladder per entry dispatcher: when a tier's
#: breaker trips, the sweep's remaining jobs move one step right.
#: ``inline`` is the floor — it has no infrastructure to fail.
DEGRADATION: dict[str, tuple[str, ...]] = {
    "process": ("process", "local", "inline"),
    "local": ("local", "inline"),
    "inline": ("inline",),
}


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs for one :class:`Supervisor`.

    Attributes:
        hang_factor: early-abort deadline = EWMA duration estimate x
            this factor (None disables estimate-based hang detection
            and leaves only the plain per-job timeout).
        hang_floor: never hang-abort before this many seconds, however
            small the estimate — guards against EWMA noise on very
            short jobs.
        poison_threshold: pool-breaking failures of one job before it
            is quarantined instead of retried.
        breaker_threshold: consecutive infrastructure failures on one
            tier before its circuit breaker trips.
        breaker_cooldown: terminal job events (logical clock) an open
            breaker waits before allowing a half-open probe.
        jitter: retry-backoff jitter fraction; each backoff sleep is
            scaled by a factor in ``[1 - jitter, 1 + jitter)``.
        seed: seed for the digest-keyed jitter stream.
    """

    hang_factor: float | None = 8.0
    hang_floor: float = 1.0
    poison_threshold: int = 2
    breaker_threshold: int = 3
    breaker_cooldown: int = 16
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hang_factor is not None and self.hang_factor <= 0:
            raise FleetError("hang_factor must be positive (or None)")
        if self.hang_floor < 0:
            raise FleetError("hang_floor must be >= 0")
        if self.poison_threshold < 1:
            raise FleetError("poison_threshold must be >= 1")
        if self.breaker_threshold < 1:
            raise FleetError("breaker_threshold must be >= 1")
        if self.breaker_cooldown < 1:
            raise FleetError("breaker_cooldown must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise FleetError("jitter must be in [0, 1)")


class Breaker:
    """One tier's circuit breaker: closed -> open -> half-open.

    State transitions are driven by a *logical* clock (the supervisor's
    terminal-event counter), never wall time, so breaker behaviour under
    a fixed failure sequence is fully deterministic.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, tier: str, threshold: int, cooldown: int) -> None:
        self.tier = tier
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.failures = 0  #: consecutive infrastructure failures
        self.opened_at = 0  #: logical-clock reading when last opened
        self.trips = 0

    def allow(self, now: int) -> bool:
        """May this tier run a batch? An open breaker transitions to
        half-open (and allows one probe) once the cooldown elapsed."""
        if self.state == self.OPEN:
            if now - self.opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        """A job completed on this tier: reset and close."""
        self.failures = 0
        self.state = self.CLOSED

    def record_failure(self, now: int) -> bool:
        """One infrastructure failure; returns True when this call
        tripped the breaker open (a half-open probe reopens on its
        first failure, whatever the threshold)."""
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.threshold:
            self.state = self.OPEN
            self.opened_at = now
            self.failures = 0
            self.trips += 1
            return True
        return False


class Supervisor:
    """Cross-batch supervision state for one fleet sweep."""

    def __init__(self, config: SupervisorConfig | None = None) -> None:
        self.config = config if config is not None else SupervisorConfig()
        self._breakers: dict[str, Breaker] = {}
        self._breaks: dict[str, int] = {}
        self._seq = 0

    # -- logical clock -----------------------------------------------------

    @property
    def seq(self) -> int:
        """Terminal job events seen so far (the breaker cooldown clock)."""
        return self._seq

    def tick(self) -> None:
        """Advance the logical clock by one terminal job event."""
        self._seq += 1

    # -- circuit breakers --------------------------------------------------

    def breaker(self, tier: str) -> Breaker:
        if tier not in self._breakers:
            self._breakers[tier] = Breaker(
                tier,
                self.config.breaker_threshold,
                self.config.breaker_cooldown,
            )
        return self._breakers[tier]

    def tier_allowed(self, tier: str) -> bool:
        """Ladder check before a batch: closed or (half-open) probe-able."""
        return self.breaker(tier).allow(self._seq)

    def infra_failure(self, tier: str) -> bool:
        """Record one infrastructure failure on ``tier``; True = tripped."""
        return self.breaker(tier).record_failure(self._seq)

    def infra_success(self, tier: str) -> None:
        self.breaker(tier).record_success()

    # -- poison accounting -------------------------------------------------

    def note_break(self, digest: str) -> int:
        """One pool-breaking failure attributed to ``digest``; returns
        the running count."""
        self._breaks[digest] = self._breaks.get(digest, 0) + 1
        return self._breaks[digest]

    def breaks(self, digest: str) -> int:
        return self._breaks.get(digest, 0)

    def is_poison(self, digest: str) -> bool:
        return self.breaks(digest) >= self.config.poison_threshold

    # -- hang detection ----------------------------------------------------

    def job_deadline(
        self, spec, cache, timeout: float | None
    ) -> tuple[float | None, bool]:
        """The in-flight deadline for one submission.

        Returns ``(deadline_seconds, is_hang_deadline)``: the tighter of
        the configured per-job ``timeout`` and the EWMA-based early-abort
        bound (``estimate x hang_factor``, floored at ``hang_floor``).
        ``is_hang_deadline`` is True when the estimate bound is the
        binding one — expiry then reports a *hang*, not a timeout.
        """
        hang = None
        if self.config.hang_factor is not None and cache is not None:
            try:
                est = cache.duration_estimate(spec)
            except OSError:
                est = None
            if est is not None:
                hang = max(
                    self.config.hang_floor, est * self.config.hang_factor
                )
        if hang is None:
            return timeout, False
        if timeout is None or hang < timeout:
            return hang, True
        return timeout, False

    # -- reproducible retry jitter -----------------------------------------

    def backoff_delay(self, digest: str, attempt: int, base: float) -> float:
        """Exponential backoff with seeded, digest-keyed jitter.

        ``base * 2**(attempt-1)`` scaled by a factor in
        ``[1 - jitter, 1 + jitter)`` drawn from SHA-256 of
        ``(seed, digest, attempt)`` — deterministic per (supervisor
        seed, job, attempt), yet decorrelated across jobs so a broken
        pool's victims do not resubmit in lockstep.
        """
        delay = base * (2 ** (max(attempt, 1) - 1))
        if self.config.jitter <= 0.0:
            return delay
        text = f"{self.config.seed}:{digest}:{attempt}"
        raw = hashlib.sha256(text.encode("utf-8")).digest()
        unit = int.from_bytes(raw[:8], "little") / 2**64  # [0, 1)
        return delay * (1.0 + self.config.jitter * (2.0 * unit - 1.0))
