"""The real backend: loops run on actual Python threads.

Wraps :class:`repro.exec_real.team.ThreadTeam` behind the backend
protocol, so an experiment configured for the simulator can be pointed
at real threads with ``--backend real`` (or ``REPRO_BACKEND=real``).
Each simulated iteration becomes a fixed busy-sleep, so the *schedule*
(dispatch order, chunk sizes, pool contention) is genuine OS-thread
behaviour while per-iteration cost stays controlled.

This backend is experimental and intentionally coarse:

* results are wall-clock, not virtual-time: ``end_time``/``duration``
  measure the host machine, not the modeled AMP, and vary run to run
  (``deterministic=False``);
* per-thread finish times are not individually tracked by the real
  team, so every thread reports the loop's wall-clock end;
* locality, ownership and wake jitter are simulator concepts and are
  ignored (the request's rng is still consumed exactly as the simulated
  backends consume it, keeping downstream stream alignment intact).

Its purpose is cross-validation — comparing decision *behaviour*
against the simulator, as the differential harness in ``repro.check``
does — not performance projection.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.backends.common import LoopRunRequest, prepare_run
from repro.backends.core import BackendCapabilities, ExecutionBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import LoopExecutor, LoopResult

#: Busy-sleep per simulated iteration, matching the conformance
#: harness's real-thread probes: long enough that chunk execution
#: dominates Python dispatch overhead, short enough for smoke runs.
BODY_SLEEP_SECONDS = 3e-4


class RealBackend(ExecutionBackend):
    """Execute the schedule on real threads via ``repro.exec_real``."""

    name = "real"

    def __init__(self) -> None:
        self._team = None
        self._team_key = None

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            simulated=False,
            deterministic=False,
            supports_faults=False,
            supports_trace=False,
            supports_check=True,
            batched=False,
        )

    def _thread_team(self, executor: "LoopExecutor"):
        from repro.exec_real.team import ThreadTeam

        key = (executor.team.n_threads, id(executor.team.platform))
        if self._team is None or self._team_key != key:
            self._team = ThreadTeam(
                executor.team.n_threads, platform=executor.team.platform
            )
            self._team_key = key
        return self._team

    def run_scheduled(
        self, executor: "LoopExecutor", req: LoopRunRequest
    ) -> "LoopResult":
        from repro.errors import BackendError
        from repro.runtime.executor import LoopResult

        if req.faults is not None and not getattr(req.faults, "is_empty", True):
            raise BackendError(
                "the real backend cannot apply simulator fault plans; "
                "use --backend reference (or vectorized) for faulted runs"
            )
        # Shared prologue for stream alignment (the wake-jitter draw) and
        # the conformance hello; the scheduler it builds is discarded —
        # the real team creates its own against the live work share.
        setup = prepare_run(executor, req)
        team = self._thread_team(executor)

        def body(tid: int, lo: int, hi: int) -> None:
            for _ in range(lo, hi):
                time.sleep(BODY_SLEEP_SECONDS)

        t0 = time.perf_counter()
        stats = team.parallel_for(
            req.loop.n_iterations,
            body,
            req.spec,
            default_chunk=req.default_chunk,
            offline_sf=req.offline_sf,
            check=req.check,
            obs=executor.obs if executor.obs.enabled else None,
        )
        wall = stats.wall_time if stats.wall_time > 0 else (
            time.perf_counter() - t0
        )
        end = setup.start_time + wall
        nt = executor.team.n_threads
        result = LoopResult(
            loop_name=req.loop.name,
            start_time=setup.start_time,
            end_time=end,
            finish_times=[end] * nt,
            iterations=list(stats.iterations_per_thread),
            dispatches=stats.dispatches,
            scheduler_calls=stats.dispatches + nt,
            estimated_sf=None,
            ranges=list(stats.ranges),
            extra={"real_stats": stats},
        )
        if req.check is not None:
            req.check.on_loop_end(result)
        if executor.obs.enabled:
            reg = executor.obs.registry
            reg.counter("loop_invocations_total", loop=req.loop.name).inc()
            reg.gauge(
                "loop_last_duration_seconds", loop=req.loop.name
            ).set(result.duration)
        return result
