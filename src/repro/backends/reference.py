"""The reference backend: the original discrete-event simulation.

One simulator event per dispatch, exactly the engine
:meth:`repro.runtime.executor.LoopExecutor.run` historically inlined.
This is the semantic ground truth: every other backend's decision logs
and :class:`~repro.runtime.executor.LoopResult` fields are gated against
it by the conformance oracle and the differential backend fuzzer
(``python -m repro.check backends``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.backends.common import (
    LoopRunRequest,
    finish_run,
    make_instruments,
    prepare_run,
)
from repro.backends.core import BackendCapabilities, ExecutionBackend
from repro.tracing.trace import ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import LoopExecutor, LoopResult


class ReferenceBackend(ExecutionBackend):
    """Event-driven execution, one event per scheduler dispatch."""

    name = "reference"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            simulated=True,
            deterministic=True,
            supports_faults=True,
            supports_trace=True,
            supports_check=True,
            batched=False,
        )

    def run_scheduled(
        self, executor: "LoopExecutor", req: LoopRunRequest
    ) -> "LoopResult":
        from repro.runtime.executor import _EVENT_BUDGET_SLACK
        from repro.sim.clock import VirtualClock
        from repro.sim.events import Simulator

        setup = prepare_run(executor, req)
        loop, spec, check = req.loop, req.spec, req.check
        nt = setup.nt
        start_time = setup.start_time
        entry = setup.entry
        prefix = setup.prefix
        rates = setup.rates
        core_types = setup.core_types
        pending_overhead = setup.pending_overhead
        ctx = setup.ctx
        scheduler = setup.scheduler
        ownership = req.ownership

        sim = Simulator(VirtualClock(start_time))
        engine = None
        if req.faults is not None and not req.faults.is_empty:
            from repro.faults.engine import SimFaultEngine

            engine = SimFaultEngine(
                plan=req.faults,
                sim=sim,
                scheduler=scheduler,
                prefix=prefix,
                cpu_of_tid=[executor.team.cpu_of(t) for t in range(nt)],
                loop_name=loop.name,
                obs=executor.obs,
                check=check,
            )
        finish = list(entry)
        iters = [0] * nt
        calls = [0] * nt
        # The work-share cache line is a serialization point: each
        # fetch-and-add occupies it for atomic_service seconds, and a
        # thread arriving while it is busy queues behind it.
        pool_free_at = [start_time]
        svc = executor.overhead.atomic_service
        assigned: list[tuple[int, int, int]] = []
        # Per-tid time accounting for the metrics registry; two float
        # adds per dispatch, published once at loop end — skipped
        # entirely when obs is off so the hot path stays unchanged.
        track_obs = setup.track_obs
        overhead_acc = [0.0] * nt
        compute_acc = [0.0] * nt
        # Time-resolved instruments (windowed samplers + tail digests),
        # created once per run and fed from the dispatch closures. All
        # None when obs is off; every touch sits behind track_obs.
        util_of = rate_of = None
        runnable_ts = chunk_ts = None
        dispatch_digest = compute_digest = size_digest = None
        if track_obs:
            inst = make_instruments(executor, loop, core_types)
            util_of = inst.util_of
            rate_of = inst.rate_of
            runnable_ts = inst.runnable_ts
            chunk_ts = inst.chunk_ts
            dispatch_digest = inst.dispatch_digest
            compute_digest = inst.compute_digest
            size_digest = inst.size_digest
        recorder = executor.recorder
        locality = executor.locality
        overhead = executor.overhead
        # Causal span recorder (None when tracing is off); one attribute
        # load here keeps the hot path at a single None check per event.
        srec = setup.spans
        span_loop = setup.span_loop
        big_of = setup.big_of

        def thread_step(tid: int) -> None:
            now = sim.now
            dispatch_cost = overhead.dispatch(core_types[tid], nt)
            takes_before = ctx.workshare.dispatch_count
            got = scheduler.next_range(tid, now)
            calls[tid] += 1
            if check is not None:
                check.on_dispatch(tid, now, got)
            extra = pending_overhead[tid]
            pending_overhead[tid] = 0.0
            overhead_dt = dispatch_cost + extra
            if svc > 0.0:
                # Serialize only genuine pool accesses: successful
                # removals, plus the final fetch-and-add that finds the
                # pool empty. Policies serving thread-local ranges (e.g.
                # AID-steal) never queue on the work-share line.
                takes = ctx.workshare.dispatch_count - takes_before
                if got is None:
                    takes += 1
                if takes > 0:
                    begin = max(now, pool_free_at[0])
                    pool_free_at[0] = begin + takes * svc
                    overhead_dt += (begin - now) + takes * svc
            if track_obs:
                overhead_acc[tid] += overhead_dt
                dispatch_digest.observe(overhead_dt)
                runnable_ts.observe(now, ctx.workshare.remaining)
            if got is None:
                end = now + overhead_dt
                finish[tid] = end
                if track_obs:
                    util_of[tid].observe_span(now, end)
                if srec is not None:
                    srec.record_empty(span_loop, tid, now, end)
                if recorder is not None:
                    recorder.record(
                        tid, ThreadState.RUNTIME, now, end, loop.name
                    )
                return
            lo, hi = got
            assigned.append((tid, lo, hi))
            scheduler.note_execution_start(tid, now + overhead_dt)
            work = float(prefix[hi] - prefix[lo])
            slowdown = locality.slowdown(loop.kernel, ownership, tid, lo, hi)
            compute_dt = slowdown * work / rates[tid]
            iters[tid] += hi - lo
            t_overhead_end = now + overhead_dt
            t_done = t_overhead_end + compute_dt
            if track_obs:
                compute_acc[tid] += compute_dt
                chunk_ts.observe(now, hi - lo)
                size_digest.observe(hi - lo)
                compute_digest.observe(compute_dt)
                if compute_dt > 0.0:
                    rate_of[tid].observe(t_overhead_end, work / compute_dt)
                util_of[tid].observe_span(now, t_done)
            if srec is not None:
                srec.record_chunk(
                    span_loop, tid, now, t_overhead_end, t_done,
                    lo, hi, big_of[tid],
                )
            if recorder is not None:
                recorder.record(
                    tid, ThreadState.RUNTIME, now, t_overhead_end, loop.name
                )
                recorder.record(
                    tid, ThreadState.COMPUTE, t_overhead_end, t_done, loop.name
                )
            sim.at(t_done, lambda: thread_step(tid), tag=f"t{tid}")

        # Fault-aware variant of thread_step, used only when a non-empty
        # FaultPlan is injected. Per-chunk accounting (conformance
        # dispatch record, executed range, iteration/compute counters,
        # COMPUTE trace segment) is deferred to block completion or
        # preemption, because a fault may truncate the chunk; the record
        # keeps the *original* dispatch timestamp so per-thread clock
        # monotonicity is preserved. The fault-free path above is left
        # untouched so an absent plan stays byte-identical.
        def thread_step_faulted(tid: int) -> None:
            now = sim.now
            engine.on_wake(tid)
            if engine.is_parked(tid):
                return
            dispatch_cost = overhead.dispatch(core_types[tid], nt)
            takes_before = ctx.workshare.dispatch_count
            got = scheduler.next_range(tid, now)
            calls[tid] += 1
            extra = pending_overhead[tid]
            pending_overhead[tid] = 0.0
            overhead_dt = dispatch_cost + extra
            if svc > 0.0:
                takes = ctx.workshare.dispatch_count - takes_before
                if got is None:
                    takes += 1
                if takes > 0:
                    begin = max(now, pool_free_at[0])
                    pool_free_at[0] = begin + takes * svc
                    overhead_dt += (begin - now) + takes * svc
            overhead_dt = engine.adjust_overhead(tid, now, overhead_dt)
            if track_obs:
                overhead_acc[tid] += overhead_dt
                dispatch_digest.observe(overhead_dt)
                runnable_ts.observe(now, ctx.workshare.remaining)
            if got is None:
                end = now + overhead_dt
                finish[tid] = end
                if track_obs:
                    util_of[tid].observe_span(now, end)
                if srec is not None:
                    srec.record_empty(span_loop, tid, now, end)
                if check is not None:
                    check.on_dispatch(tid, now, None)
                if recorder is not None:
                    recorder.record(
                        tid, ThreadState.RUNTIME, now, end, loop.name
                    )
                engine.worker_retired(tid)
                return
            lo, hi = got
            if track_obs:
                chunk_ts.observe(now, hi - lo)
                size_digest.observe(hi - lo)
            t_overhead_end = now + overhead_dt
            scheduler.note_execution_start(tid, t_overhead_end)
            # The RUNTIME trace segment is deferred with the rest of the
            # per-chunk accounting: a preemption inside the overhead
            # window must truncate it at the preempt time.
            slowdown = locality.slowdown(loop.kernel, ownership, tid, lo, hi)
            engine.begin_block(
                tid,
                dispatch_t=now,
                compute_start=t_overhead_end,
                lo=lo,
                hi=hi,
                speed0=rates[tid] / slowdown,
            )

        if engine is not None:

            def _fault_restart(tid: int, t: float) -> None:
                sim.at(
                    t,
                    (lambda w: lambda: thread_step_faulted(w))(tid),
                    tag=f"t{tid}",
                )

            def _fault_record_exec(
                tid: int, dispatch_t: float, lo: int, hi: int,
                t0: float, t1: float,
            ) -> None:
                if track_obs:
                    compute_acc[tid] += max(0.0, t1 - t0)
                    util_of[tid].observe_span(dispatch_t, t1)
                    if hi > lo and t1 > t0:
                        compute_digest.observe(t1 - t0)
                        # Effective rate over the executed sub-range:
                        # fault throttles show up as steps here.
                        rate_of[tid].observe(
                            t0, float(prefix[hi] - prefix[lo]) / (t1 - t0)
                        )
                if srec is not None:
                    srec.record_chunk(
                        span_loop, tid, dispatch_t, t0, t1, lo, hi,
                        big_of[tid],
                    )
                if recorder is not None:
                    if t0 > dispatch_t:
                        recorder.record(
                            tid, ThreadState.RUNTIME, dispatch_t, t0, loop.name
                        )
                    if t1 > t0:
                        recorder.record(
                            tid, ThreadState.COMPUTE, t0, t1, loop.name
                        )
                if hi > lo:
                    if check is not None:
                        check.on_dispatch(tid, dispatch_t, (lo, hi))
                    assigned.append((tid, lo, hi))
                    iters[tid] += hi - lo

            def _fault_set_finish(tid: int, t: float) -> None:
                finish[tid] = t

            engine.bind(_fault_restart, _fault_record_exec, _fault_set_finish)
            # Plan firings are scheduled before the worker wake events so
            # that at equal times the fault fires first (lower seq) —
            # deterministic tie-breaking, per the sim's FIFO contract.
            engine.schedule(start_time)

        step = thread_step if engine is None else thread_step_faulted

        # Every thread pays the loop-start call, then begins dispatching.
        # The barrier release wakes cores in CPU-number order, so threads
        # on low-numbered (small) cores reach the pool slightly earlier —
        # harmless for most schedules, decisive for guided's large early
        # chunks.
        for tid in range(nt):
            t_begin = setup.wake_begin[tid]
            if track_obs:
                overhead_acc[tid] += t_begin - entry[tid]
                util_of[tid].observe_span(entry[tid], t_begin)
            if srec is not None:
                srec.record_wake(span_loop, tid, entry[tid], t_begin)
            if recorder is not None:
                recorder.record(
                    tid, ThreadState.RUNTIME, entry[tid], t_begin, loop.name
                )
            sim.at(t_begin, (lambda t: lambda: step(t))(tid), tag=f"t{tid}")

        budget = (loop.n_iterations + nt * _EVENT_BUDGET_SLACK) * 2
        if engine is not None:
            # The fault path schedules a separate restart event after
            # each completed block, and every fault boundary can preempt
            # (and thus re-dispatch) up to one chunk per thread.
            budget = (2 * loop.n_iterations + nt * _EVENT_BUDGET_SLACK) * 2
            budget += (nt + 2) * (engine.n_plan_events + 2) * 4
        sim.run(max_events=budget)

        return finish_run(
            executor, req, setup,
            finish=finish,
            iters=iters,
            calls=calls,
            assigned=assigned,
            dispatches=ctx.workshare.dispatch_count,
            attempts=ctx.workshare.attempt_count,
            empty_takes=ctx.workshare.empty_take_count,
            overhead_acc=overhead_acc,
            compute_acc=compute_acc,
            engine=engine,
        )
