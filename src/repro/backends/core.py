"""The execution-backend protocol and its registry.

An :class:`ExecutionBackend` is the engine that actually plays out one
runtime-scheduled parallel loop for a
:class:`~repro.runtime.executor.LoopExecutor`. The executor owns the
*what* (team, cost vector, schedule spec, models); the backend owns the
*how* (event-driven simulation, closed-form numpy batches, real
threads). All backends consume the same
:class:`~repro.backends.common.LoopRunRequest` and return the same
:class:`~repro.runtime.executor.LoopResult`, so everything above the
executor — program runner, fleet, experiments — is backend-agnostic.

Three implementations register themselves here:

* ``reference`` — the discrete-event simulator, one event per dispatch.
  The semantics every other backend is measured against.
* ``vectorized`` — a numpy engine that advances uniform chunk batches in
  closed form and publishes observability in bulk columns, falling back
  to reference semantics wherever per-dispatch state matters. Decision
  logs and :class:`~repro.runtime.executor.LoopResult` fields are
  byte-identical to ``reference`` by construction.
* ``real`` — wraps :mod:`repro.exec_real`: the loop runs on actual
  Python threads in wall-clock time (non-deterministic; cross-validation
  only).

Selection precedence: an explicit name (CLI flag, constructor argument,
:class:`~repro.fleet.jobs.JobSpec` field) beats the ``REPRO_BACKEND``
environment variable, which beats the default ``reference``. Invalid
names raise :class:`~repro.errors.BackendError` listing the registry.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.common import LoopRunRequest
    from repro.runtime.executor import LoopExecutor, LoopResult

#: Environment variable consulted when no backend is named explicitly.
ENV_VAR = "REPRO_BACKEND"

#: The backend used when neither an explicit name nor the environment
#: selects one.
DEFAULT_BACKEND = "reference"


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can faithfully execute.

    Attributes:
        simulated: results are virtual-time (False for real threads).
        deterministic: identical inputs produce identical results.
        supports_faults: can apply a simulator :class:`FaultPlan` itself
            (a backend without it must delegate faulted runs elsewhere
            or refuse them).
        supports_trace: can feed a :class:`TraceRecorder`.
        supports_check: can drive a conformance recorder.
        batched: advances chunk batches in closed form when the
            scheduler declares a
            :class:`~repro.sched.base.PoolAdvancement`.
    """

    simulated: bool = True
    deterministic: bool = True
    supports_faults: bool = False
    supports_trace: bool = False
    supports_check: bool = False
    batched: bool = False


class ExecutionBackend(abc.ABC):
    """One engine for playing out runtime-scheduled parallel loops.

    Lifecycle: the executor instantiates its backend through
    :func:`resolve_backend` and calls :meth:`prepare` once before the
    first loop; :meth:`close` releases whatever :meth:`prepare`
    acquired. Both default to no-ops — the simulator backends are
    stateless between loops.
    """

    #: Registry key; subclasses override.
    name: str = "?"

    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static capability flags for this backend."""

    def prepare(self, executor: "LoopExecutor") -> None:
        """One-time binding to an executor (thread pools, caches)."""

    def close(self) -> None:
        """Release resources acquired in :meth:`prepare`."""

    @abc.abstractmethod
    def run_scheduled(
        self, executor: "LoopExecutor", req: "LoopRunRequest"
    ) -> "LoopResult":
        """Execute one runtime-scheduled loop and return its result."""


_REGISTRY: dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(
    name: str, factory: Callable[[], ExecutionBackend]
) -> None:
    """Register a backend factory under ``name`` (last wins)."""
    _REGISTRY[name] = factory


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend_name(explicit: str | None = None) -> str:
    """The effective backend name: explicit > ``$REPRO_BACKEND`` > default.

    Raises :class:`~repro.errors.BackendError` for names outside the
    registry — including an invalid environment override, so a typo'd
    ``REPRO_BACKEND`` fails loudly instead of silently running the
    default.
    """
    source = "backend"
    name = explicit
    if name is None:
        env = os.environ.get(ENV_VAR)
        if env:
            name, source = env, f"{ENV_VAR} environment variable"
    if name is None:
        return DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown execution backend {name!r} (from {source}); "
            f"registered backends: {', '.join(backend_names())}"
        )
    return name


def create_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown execution backend {name!r}; "
            f"registered backends: {', '.join(backend_names())}"
        ) from None
    return factory()


def resolve_backend(
    selector: "str | ExecutionBackend | None" = None,
) -> ExecutionBackend:
    """Resolve a constructor argument into a live backend instance.

    Accepts an already-built :class:`ExecutionBackend` (returned as-is),
    a registered name, or ``None`` (environment override, then the
    default).
    """
    if isinstance(selector, ExecutionBackend):
        return selector
    return create_backend(resolve_backend_name(selector))
