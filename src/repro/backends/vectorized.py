"""The vectorized backend: numpy closed-form batches, identical logs.

The reference engine spends its time in three places: the event heap,
per-dispatch Python closures, and per-dispatch observability calls. This
backend removes all three while reproducing the reference semantics
*bit for bit*:

* **Slot engine** — fault-free runs have exactly one outstanding event
  per thread, so the heap collapses to a per-thread ``(time, seq)`` slot
  and a linear min-scan. The seq counter mirrors the simulator's push
  counter, so FIFO tie-breaking is preserved and every scheduler sees
  the same ``(tid, now)`` call sequence in the same order — decision
  logs are byte-identical by construction, for every policy.
* **Integrated pool drains** — when the scheduler declares a
  :class:`~repro.sched.base.PoolAdvancement` (a pure fixed-chunk pool
  drain, e.g. ``schedule(dynamic)``), the whole drain runs against
  per-thread chunk-duration tables computed in one numpy pass up front
  (cost prefix sums and the locality-ownership prefix sums integrate
  every chunk's compute time in closed form). The event loop then only
  chains additions of precomputed floats, folding consecutive chunks of
  one thread into a single slot update while their completions precede
  the earliest other pending event.
* **Columnar observability** — the drain records just ``(tid, time)``
  per dispatch; every instrument column (overhead, compute, spans,
  rates, pool depth) is reconstructed vectorially at loop end and
  published through the bulk APIs (``observe_many``/``observe_spans``).
  The stateful generic engine buffers per-dispatch samples instead and
  publishes them the same way.

Whatever the engine cannot reproduce exactly it does not approximate:
runs with a non-empty fault plan or a trace recorder are delegated to
the reference backend wholesale (the sim fault engine already
integrates piecewise fault-rate segments in closed form), and a
conformance recorder forces the slot engine onto the real work-share
structure so ``on_take`` hooks fire from the genuine call sites.

Float-exactness notes (load-bearing, do not "simplify"):

* The reference computes ``overhead_dt = dispatch_cost + extra`` then
  ``overhead_dt += (begin - now) + takes * svc``. With ``extra == 0``
  and ``begin == now`` this collapses to ``fl(dc + svc)`` — the
  per-thread drain constant ``C``. ``fl(dc + svc) >= svc`` for
  ``dc >= 0``, hence a thread's overhead end never precedes its own
  pool-release time and every in-drain dispatch sees a free pool,
  keeping ``begin == now`` exact throughout.
* The drain is only entered when ``now >= pool_free`` so the first
  ``max(now, pool_free)`` is exactly ``now``; the rare busy case runs a
  scalar step that replays the reference expression verbatim.
* Chunk compute times are ``fl(fl(slowdown * work) / rate)``; numpy
  float64 elementwise arithmetic performs the identical roundings, and
  the ownership warm fraction — a count of owned segments divided by a
  segment count — is computed from prefix sums whose integer values are
  exactly representable, so the division result is the identical float
  ``LoopOwnership.warm_fraction`` produces.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backends.common import (
    LoopRunRequest,
    RunSetup,
    finish_run,
    make_instruments,
    prepare_run,
)
from repro.backends.core import BackendCapabilities, ExecutionBackend
from repro.backends.reference import ReferenceBackend
from repro.errors import SimulationError


class _FastSlowdown:
    """Per-run locality slowdowns from precomputed ownership prefix sums.

    ``LoopOwnership.warm_fraction`` counts owned segments with
    ``np.count_nonzero`` per call; over a prefix sum the count is one
    subtraction of exactly-represented integers, so the resulting
    division — and therefore the slowdown — is the identical float.
    """

    def __init__(self, locality, ownership, kernel) -> None:
        self.active = bool(
            locality.enabled
            and ownership is not None
            and ownership.invocations_seen > 0
        )
        if not self.active:
            return
        self.seg = ownership.segment_size
        owner = ownership.owner
        n_tids = int(owner.max()) + 1 if owner.size else 0
        self._cum = {
            t: np.concatenate(
                ([0.0], np.cumsum((owner == t).astype(np.float64)))
            )
            for t in range(max(n_tids, 0))
        }
        self._zeros = np.zeros(len(owner) + 1)
        reuse = kernel.memory_weight * (1.0 - 0.5 * kernel.mlp)
        self.penalty = locality.penalty
        self.reuse = reuse

    def scalar(self, tid: int, lo: int, hi: int) -> float:
        if not self.active or hi <= lo:
            return 1.0
        s0 = lo // self.seg
        s1 = (hi - 1) // self.seg + 1
        cum = self._cum.get(tid, self._zeros)
        warm = float(cum[s1] - cum[s0]) / (s1 - s0)
        cold = 1.0 - warm
        if cold <= 0.0:
            return 1.0
        return 1.0 + self.penalty * self.reuse * cold

    def batch(self, tid: int, los: np.ndarray, his: np.ndarray):
        """Slowdown array for uniform chunks, or ``None`` for all-1.0."""
        if not self.active or len(los) == 0:
            return None
        s0s = los // self.seg
        s1s = (his - 1) // self.seg + 1
        cum = self._cum.get(tid, self._zeros)
        warm = (cum[s1s] - cum[s0s]) / (s1s - s0s)
        cold = 1.0 - warm
        pr = self.penalty * self.reuse
        return np.where(cold <= 0.0, 1.0, 1.0 + pr * cold)


def _publish_rows(executor, loop, setup, rows) -> None:
    """Publish the generic engine's buffered per-event samples.

    Each row is ``(tid, now, overhead_dt, remaining, lo, hi, compute_dt)``
    with ``lo == -1`` marking an empty take. Dispatch-end and completion
    times are reconstructed with the reference's own float expressions
    (``t_oe = now + overhead_dt``; ``t_done = t_oe + compute_dt``), so
    every published column carries the identical values the per-event
    ``observe`` calls would have produced.
    """
    inst = make_instruments(executor, loop, setup.core_types)
    nt = setup.nt
    entry = setup.entry
    wake = setup.wake_begin
    srec = setup.spans
    if srec is not None:
        for t in range(nt):
            srec.record_wake(setup.span_loop, t, entry[t], wake[t])
    if not rows:
        for t in range(nt):
            inst.util_of[t].observe_spans(
                np.asarray([entry[t]]), np.asarray([wake[t]])
            )
        return
    arr = np.asarray(rows)
    tids = arr[:, 0].astype(np.int64)
    nows = arr[:, 1]
    ovh = arr[:, 2]
    rem = arr[:, 3]
    cds = arr[:, 6]
    oe = nows + ovh
    td = oe + cds
    disp = arr[:, 4] >= 0.0
    los = arr[:, 4][disp].astype(np.int64)
    his = arr[:, 5][disp].astype(np.int64)
    prefix = setup.prefix
    works = prefix[his] - prefix[los]
    sizes = (his - los).astype(np.float64)
    tids_d = tids[disp]
    cds_d = cds[disp]
    oe_d = oe[disp]
    for t in range(nt):
        m = tids == t
        inst.util_of[t].observe_spans(
            np.concatenate(((entry[t],), nows[m])),
            np.concatenate(((wake[t],), td[m])),
        )
        pos = (tids_d == t) & (cds_d > 0.0)
        if pos.any():
            inst.rate_of[t].observe_many(oe_d[pos], works[pos] / cds_d[pos])
    inst.runnable_ts.observe_many(nows, rem)
    inst.chunk_ts.observe_many(nows[disp], sizes)
    inst.dispatch_digest.observe_many(ovh)
    inst.compute_digest.observe_many(cds[disp])
    inst.size_digest.observe_many(sizes)
    if srec is not None:
        # A thread's rows are already in dispatch order (global event
        # order restricted per tid), so bulk chunk emission consumes
        # the same per-(loop, tid) ordinal sequence the reference's
        # per-event calls would — identical span ids, identical floats.
        for t in range(nt):
            m = (tids == t) & disp
            srec.record_chunks_bulk(
                setup.span_loop, t, nows[m], oe[m], td[m],
                arr[:, 4][m].astype(np.int64), arr[:, 5][m].astype(np.int64),
                setup.big_of[t],
            )
            em = (tids == t) & ~disp
            for n0, n1 in zip(nows[em], oe[em]):
                srec.record_empty(setup.span_loop, t, float(n0), float(n1))


class VectorizedBackend(ExecutionBackend):
    """Slot/drain engine with reference-delegating fallbacks."""

    name = "vectorized"

    def __init__(self) -> None:
        self._reference = ReferenceBackend()

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            simulated=True,
            deterministic=True,
            supports_faults=True,   # by delegation to reference
            supports_trace=True,    # by delegation to reference
            supports_check=True,
            batched=True,
        )

    def run_scheduled(self, executor, req: LoopRunRequest):
        reason = None
        if req.faults is not None and not req.faults.is_empty:
            reason = "faults"
        elif executor.recorder is not None:
            reason = "trace"
        if reason is not None:
            if executor.obs.enabled:
                executor.obs.registry.counter(
                    "backend_fallbacks_total", backend=self.name, reason=reason
                ).inc()
            return self._reference.run_scheduled(executor, req)
        return _slot_engine(executor, req)


def _min_slot(times, seqs, active, nt):
    """Index of the earliest pending slot; FIFO tie-break on seq."""
    best = -1
    bt = bs = 0.0
    for t in range(nt):
        if active[t]:
            ti = times[t]
            if best < 0 or ti < bt or (ti == bt and seqs[t] < bs):
                best, bt, bs = t, ti, seqs[t]
    return best, bt


def _slot_engine(executor, req: LoopRunRequest):
    """One outstanding event per thread; heap replaced by a min-scan."""
    from repro.runtime.executor import _EVENT_BUDGET_SLACK

    setup: RunSetup = prepare_run(executor, req)
    loop, check = req.loop, req.check
    nt = setup.nt
    entry = setup.entry
    prefix = setup.prefix
    rates = setup.rates
    core_types = setup.core_types
    pending_overhead = setup.pending_overhead
    ctx = setup.ctx
    scheduler = setup.scheduler
    overhead = executor.overhead

    svc = overhead.atomic_service
    dc = [overhead.dispatch(core_types[tid], nt) for tid in range(nt)]
    pool_free = setup.start_time

    finish = list(entry)
    iters = [0] * nt
    calls = [0] * nt
    assigned: list[tuple[int, int, int]] = []
    track_obs = setup.track_obs
    overhead_acc = [0.0] * nt
    compute_acc = [0.0] * nt
    slow = _FastSlowdown(executor.locality, req.ownership, loop.kernel)

    # Per-thread event slots: the simulator's heap degenerates to one
    # (time, seq) pair per thread. seq mirrors the push counter, so FIFO
    # tie-breaking matches the reference: wakes are pushed in tid order,
    # every completion re-push takes the next global value.
    times = list(setup.wake_begin)
    seqs = list(range(nt))
    active = [True] * nt
    live = nt
    seq_counter = nt

    if track_obs:
        for tid in range(nt):
            overhead_acc[tid] += times[tid] - entry[tid]

    # The integrated pool drain: legal only when the scheduler declares
    # a pure fixed-chunk drain AND no conformance recorder needs the
    # real work-share call sites.
    adv = scheduler.advancement() if check is None else None

    budget = (loop.n_iterations + nt * _EVENT_BUDGET_SLACK) * 2
    events = 0

    if adv is not None:
        out = _drain_engine(
            executor, req, setup, slow, adv.chunk, dc, svc, pool_free,
            times, seqs, active, live, seq_counter, finish, calls,
            overhead_acc, compute_acc, budget,
        )
        iters, assigned, dispatches, attempts, empty_takes = out
    else:
        rows: list[tuple] = []
        # Cached work-share internals: the simulator single-steps events,
        # so the advisory-read properties collapse to plain attribute
        # reads of the same counters (see WorkShare.remaining).
        ws = ctx.workshare
        ws_next = ws._next
        ws_disp = ws._dispatches
        ws_end = ws.end
        ws_ret = ws._returned
        next_range = scheduler.next_range
        # Generic engine: real scheduler, real work-share, one scalar
        # step per event — the reference step function verbatim, minus
        # the heap and with buffered observability.
        while live:
            best = -1
            bt = 0.0
            bs = 0
            for t in range(nt):
                if active[t]:
                    ti = times[t]
                    if best < 0 or ti < bt or (ti == bt and seqs[t] < bs):
                        best, bt, bs = t, ti, seqs[t]
            tid = best
            now = bt
            events += 1
            if events > budget:
                raise SimulationError(
                    f"simulation exceeded {budget} events; "
                    "likely a livelocked scheduler"
                )

            takes_before = ws_disp._value
            got = next_range(tid, now)
            calls[tid] += 1
            if check is not None:
                check.on_dispatch(tid, now, got)
            extra = pending_overhead[tid]
            pending_overhead[tid] = 0.0
            overhead_dt = dc[tid] + extra
            if svc > 0.0:
                takes = ws_disp._value - takes_before
                if got is None:
                    takes += 1
                if takes > 0:
                    begin = max(now, pool_free)
                    pool_free = begin + takes * svc
                    overhead_dt += (begin - now) + takes * svc
            if got is None:
                end = now + overhead_dt
                finish[tid] = end
                active[tid] = False
                live -= 1
                if track_obs:
                    overhead_acc[tid] += overhead_dt
                    left = ws_end - ws_next._value
                    if left < 0:
                        left = 0
                    if ws_ret:
                        left += sum(h - l for l, h in ws_ret)
                    rows.append(
                        (tid, now, overhead_dt, float(left), -1.0, 0.0, 0.0)
                    )
                continue
            lo, hi = got
            assigned.append((tid, lo, hi))
            scheduler.note_execution_start(tid, now + overhead_dt)
            work = float(prefix[hi] - prefix[lo])
            sdn = slow.scalar(tid, lo, hi)
            compute_dt = sdn * work / rates[tid]
            iters[tid] += hi - lo
            t_done = (now + overhead_dt) + compute_dt
            if track_obs:
                overhead_acc[tid] += overhead_dt
                compute_acc[tid] += compute_dt
                left = ws_end - ws_next._value
                if left < 0:
                    left = 0
                if ws_ret:
                    left += sum(h - l for l, h in ws_ret)
                rows.append(
                    (
                        tid, now, overhead_dt, float(left),
                        float(lo), float(hi), compute_dt,
                    )
                )
            times[tid] = t_done
            seqs[tid] = seq_counter
            seq_counter += 1
        dispatches = ws.dispatch_count
        attempts = ws.attempt_count
        empty_takes = ws.empty_take_count
        if track_obs:
            _publish_rows(executor, loop, setup, rows)

    return finish_run(
        executor, req, setup,
        finish=finish,
        iters=iters,
        calls=calls,
        assigned=assigned,
        dispatches=dispatches,
        attempts=attempts,
        empty_takes=empty_takes,
        overhead_acc=overhead_acc,
        compute_acc=compute_acc,
    )


def _drain_engine(
    executor, req, setup, slow, c, dc, svc, pool_free,
    times, seqs, active, live, seq_counter, finish, calls,
    overhead_acc, compute_acc, budget,
):
    """Integrated fixed-chunk pool drain (PoolAdvancement fast path).

    The work-share's fetch-and-add hands out chunk ``j`` to the ``j``-th
    successful dispatch, whoever makes it — so the drain's entire
    outcome is the *sequence of dispatching tids*. Everything else
    (chunk bounds, compute times, overheads, completion times) is a pure
    function of ``(tid, j, dispatch time)`` and is reconstructed
    vectorially after the loop. The loop itself only chains additions of
    floats precomputed in one numpy pass, recording ``(tid, time)``
    per dispatch.
    """
    loop = req.loop
    prefix = setup.prefix
    rates = setup.rates
    nt = setup.nt
    N = loop.n_iterations
    n_chunks = (N + c - 1) // c
    track_obs = setup.track_obs

    # Per-chunk work and per-tid chunk durations, one numpy pass.
    # cds[t][j] is exactly the reference's fl(fl(slowdown*work)/rate)
    # for thread t executing chunk j.
    los_all = c * np.arange(n_chunks)
    his_all = np.minimum(los_all + c, N)
    works_all = prefix[his_all] - prefix[los_all]
    cds_rows = []
    for t in range(nt):
        sdns = slow.batch(t, los_all, his_all)
        if sdns is None:
            cds_rows.append(works_all / rates[t])
        else:
            cds_rows.append(sdns * works_all / rates[t])
    cds_list = [row.tolist() for row in cds_rows]
    # Per-thread drain constant: overhead_dt collapses to fl(dc + svc)
    # when the pool is free at dispatch (see module docstring).
    C_of = [(dc[t] + svc) if svc > 0.0 else (dc[t] + 0.0) for t in range(nt)]

    # Dispatch times, one per dispatch; the owning tid is recorded per
    # *fold turn* as (tid, count) and expanded with np.repeat afterwards.
    # Preallocated: dispatch j consumes chunk j, so both are bounded by
    # n_chunks, and item assignment keeps the hot loop free of any
    # Python call.
    disp_nows: list[float] = [0.0] * n_chunks
    turn_tids: list[int] = [0] * n_chunks
    turn_runs: list[int] = [0] * n_chunks
    n_turns = 0
    #: dispatch index -> (overhead_dt, t_oe, t_done) for the rare
    #: pool-busy dispatches whose overhead differs from C.
    overrides: dict[int, tuple[float, float, float]] = {}
    e_tids: list[int] = []
    e_nows: list[float] = []
    e_ovhs: list[float] = []
    e_ends: list[float] = []

    nxc = 0
    events = 0
    inf = math.inf

    while live:
        # Fused scan: the earliest pending slot (FIFO tie-break on seq)
        # plus the earliest *other* pending time (the fold limit T2) in
        # one pass.
        best = -1
        bt = 0.0
        bs = 0
        t2 = inf
        for t in range(nt):
            if active[t]:
                ti = times[t]
                if best < 0:
                    best, bt, bs = t, ti, seqs[t]
                elif ti < bt or (ti == bt and seqs[t] < bs):
                    t2 = bt
                    best, bt, bs = t, ti, seqs[t]
                elif ti < t2:
                    t2 = ti
        tid = best
        now = bt
        events += 1
        if events > budget:
            raise SimulationError(
                f"simulation exceeded {budget} events; "
                "likely a livelocked scheduler"
            )

        if nxc >= n_chunks:
            # Empty take: the final fetch-and-add still occupies the
            # pool line for one service period.
            calls[tid] += 1
            overhead_dt = dc[tid] + 0.0
            if svc > 0.0:
                begin = max(now, pool_free)
                pool_free = begin + svc
                overhead_dt = overhead_dt + ((begin - now) + svc)
            end = now + overhead_dt
            finish[tid] = end
            active[tid] = False
            live -= 1
            if track_obs:
                e_tids.append(tid)
                e_nows.append(now)
                e_ovhs.append(overhead_dt)
                e_ends.append(end)
            continue

        cds_t = cds_list[tid]
        if svc > 0.0 and now < pool_free:
            # Pool line busy at dispatch time: replay the reference
            # expression verbatim for one chunk (rounding of the
            # queueing delay makes the drain constant invalid here).
            j = nxc
            nxc += 1
            calls[tid] += 1
            overhead_dt = dc[tid] + 0.0
            begin = pool_free
            pool_free = begin + svc
            overhead_dt = overhead_dt + ((begin - now) + svc)
            t_oe = now + overhead_dt
            t_done = t_oe + cds_t[j]
            turn_tids[n_turns] = tid
            turn_runs[n_turns] = 1
            n_turns += 1
            disp_nows[j] = now
            if track_obs:
                overrides[j] = (overhead_dt, t_oe, t_done)
            times[tid] = t_done
            seqs[tid] = seq_counter
            seq_counter += 1
            continue

        # Free pool: fold consecutive chunks of this thread into one
        # slot update while each completion strictly precedes the
        # earliest other pending event (on a tie the earlier-pushed
        # event fires first, so the fold must stop).
        T2 = t2
        Ct = C_of[tid]
        j0 = nxc
        d = now
        while True:
            t_done = (d + Ct) + cds_t[nxc]
            disp_nows[nxc] = d
            nxc += 1
            if t_done >= T2 or nxc >= n_chunks:
                break
            d = t_done
        k = nxc - j0
        turn_tids[n_turns] = tid
        turn_runs[n_turns] = k
        n_turns += 1
        calls[tid] += k
        events += k - 1
        if svc > 0.0:
            pool_free = d + svc
        times[tid] = t_done
        seqs[tid] = seq_counter
        seq_counter += 1

    # -- vectorized reconstruction -----------------------------------------
    n_disp = nxc
    del disp_nows[n_disp:]
    dispatches = n_disp
    empty_takes = len(e_tids)
    attempts = n_disp + empty_takes

    j_arr = np.arange(n_disp)
    los = c * j_arr
    his = np.minimum(los + c, N)
    sizes = his - los
    tids_arr = np.repeat(
        np.asarray(turn_tids[:n_turns], dtype=np.int64),
        np.asarray(turn_runs[:n_turns], dtype=np.int64),
    )
    per_tid_iters = np.bincount(tids_arr, weights=sizes, minlength=nt)
    iters = [int(x) for x in per_tid_iters]
    assigned = list(zip(tids_arr.tolist(), los.tolist(), his.tolist()))

    if track_obs:
        nows_arr = np.asarray(disp_nows)
        C_arr = np.asarray(C_of)[tids_arr]
        cd_arr = (
            np.vstack(cds_rows)[tids_arr, j_arr]
            if n_disp
            else np.zeros(0)
        )
        ovh_arr = C_arr.copy()
        t_oe_arr = nows_arr + C_arr
        td_arr = t_oe_arr + cd_arr
        for j, (o, te, td) in overrides.items():
            ovh_arr[j] = o
            t_oe_arr[j] = te
            td_arr[j] = td
        per_tid_ovh = np.bincount(tids_arr, weights=ovh_arr, minlength=nt)
        per_tid_cmp = np.bincount(tids_arr, weights=cd_arr, minlength=nt)
        for t in range(nt):
            overhead_acc[t] += float(per_tid_ovh[t])
            compute_acc[t] += float(per_tid_cmp[t])
        for t, o in zip(e_tids, e_ovhs):
            overhead_acc[t] += o

        inst = make_instruments(executor, loop, setup.core_types)
        e_now_arr = np.asarray(e_nows)
        inst.dispatch_digest.observe_many(
            np.concatenate((ovh_arr, np.asarray(e_ovhs)))
        )
        inst.runnable_ts.observe_many(
            np.concatenate((nows_arr, e_now_arr)),
            np.concatenate(
                (
                    np.maximum(N - c * (j_arr + 1), 0).astype(np.float64),
                    np.zeros(empty_takes),
                )
            ),
        )
        sizes_f = sizes.astype(np.float64)
        inst.chunk_ts.observe_many(nows_arr, sizes_f)
        inst.size_digest.observe_many(sizes_f)
        inst.compute_digest.observe_many(cd_arr)
        w_arr = works_all[j_arr] if n_disp else np.zeros(0)
        e_end_arr = np.asarray(e_ends)
        e_tid_arr = np.asarray(e_tids, dtype=np.int64)
        entry_arr = np.asarray(setup.entry)
        wake_arr = np.asarray(setup.wake_begin)
        for t in range(nt):
            mask = tids_arr == t
            emask = e_tid_arr == t
            inst.util_of[t].observe_spans(
                np.concatenate(
                    ((entry_arr[t],), nows_arr[mask], e_now_arr[emask])
                ),
                np.concatenate(
                    ((wake_arr[t],), td_arr[mask], e_end_arr[emask])
                ),
            )
            pos = mask & (cd_arr > 0.0) if n_disp else mask
            if pos.any():
                inst.rate_of[t].observe_many(
                    t_oe_arr[pos], w_arr[pos] / cd_arr[pos]
                )

        srec = setup.spans
        if srec is not None:
            for t in range(nt):
                srec.record_wake(
                    setup.span_loop, t, float(entry_arr[t]), float(wake_arr[t])
                )
                mask = tids_arr == t
                srec.record_chunks_bulk(
                    setup.span_loop, t, nows_arr[mask], t_oe_arr[mask],
                    td_arr[mask], los[mask], his[mask], setup.big_of[t],
                )
                emask = e_tid_arr == t
                for n0, n1 in zip(e_now_arr[emask], e_end_arr[emask]):
                    srec.record_empty(setup.span_loop, t, float(n0), float(n1))

    return iters, assigned, dispatches, attempts, empty_takes
