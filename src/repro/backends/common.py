"""Shared request/setup plumbing for execution backends.

Every backend receives the same :class:`LoopRunRequest` (the arguments
of :meth:`repro.runtime.executor.LoopExecutor.run`, bundled) and the
simulator backends share the same prologue and epilogue:

* :func:`prepare_run` — validation, conformance hello, per-thread entry
  and wake times, the cost prefix sum, rates, the
  :class:`~repro.runtime.context.LoopContext` and the scheduler
  instance. Everything here is backend-independent, so the reference
  and vectorized engines cannot drift apart on setup.
* :func:`finish_run` — the executed-iteration-count self-check, the
  :class:`~repro.runtime.executor.LoopResult`, the conformance goodbye
  and the metrics publication.

The epilogue takes the pool attempt counters *explicitly* rather than
reading the work-share structure: a batching backend that advances the
pool in closed form never touches the shared structure's atomics, yet
must publish the same ``workshare_take_attempts_total`` a stepped run
would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.runtime.context import LoopContext
from repro.sched.base import LoopScheduler, ScheduleSpec
from repro.workloads.loopspec import LoopSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perfmodel.locality import LoopOwnership
    from repro.runtime.executor import LoopExecutor, LoopResult


@dataclass
class LoopRunRequest:
    """One runtime-scheduled loop execution, as handed to a backend.

    Field semantics match
    :meth:`repro.runtime.executor.LoopExecutor.run` exactly; the
    executor builds one of these and delegates.
    """

    loop: LoopSpec
    costs: np.ndarray
    spec: ScheduleSpec
    start_time: float = 0.0
    offline_sf: Mapping[int, float] | None = None
    default_chunk: int = 1
    ownership: "LoopOwnership | None" = None
    rng: np.random.Generator | None = None
    start_times: Sequence[float] | None = None
    check: object = None
    faults: object = None


@dataclass
class RunSetup:
    """Backend-independent state prepared for one loop execution."""

    nt: int
    start_time: float
    entry: list[float]
    prefix: np.ndarray
    rates: list[float]
    core_types: list
    pending_overhead: list[float]
    ctx: LoopContext
    scheduler: LoopScheduler
    #: Per-tid time at which the thread finishes the loop-start call and
    #: issues its first dispatch (entry + wake stagger + jitter +
    #: loop_start).
    wake_begin: list[float] = field(default_factory=list)
    dec_mark: int = 0
    track_obs: bool = False
    #: The causal span recorder (``executor.obs.spans``), or ``None``
    #: when span tracing is off; ``span_loop`` is this run's loop span
    #: path and ``big_of`` flags threads on the fastest core type.
    spans: object = None
    span_loop: str | None = None
    big_of: list[bool] = field(default_factory=list)


def prepare_run(executor: "LoopExecutor", req: "LoopRunRequest") -> RunSetup:
    """Validate the request and build the shared per-run state.

    Mirrors the historical prologue of ``LoopExecutor.run`` verbatim —
    including the single ``rng.uniform`` wake-jitter draw, so any two
    backends given the same request consume the random stream
    identically.
    """
    loop, costs, spec = req.loop, req.costs, req.spec
    if len(costs) != loop.n_iterations:
        raise SimulationError(
            f"cost vector length {len(costs)} != trip count {loop.n_iterations}"
        )
    if spec.requires_bs_mapping:
        executor.team.assert_bs_convention()
    check = req.check
    if check is not None:
        check.on_loop_begin(
            loop_name=loop.name,
            n_iterations=loop.n_iterations,
            spec_name=spec.name,
        )
        check.on_team(executor.team.conformance_info())

    nt = executor.team.n_threads
    start_time = req.start_time
    if req.start_times is not None:
        if len(req.start_times) != nt:
            raise SimulationError(
                f"{len(req.start_times)} start times for {nt} threads"
            )
        start_time = min(req.start_times)
    entry = (
        list(req.start_times)
        if req.start_times is not None
        else [start_time] * nt
    )
    prefix = np.concatenate(([0.0], np.cumsum(costs)))
    rates = executor.rates_for(loop)
    core_types = [executor.team.core_type_of(tid) for tid in range(nt)]

    pending_overhead = [0.0] * nt

    def charge_timestamp(tid: int) -> None:
        pending_overhead[tid] += executor.overhead.timestamp(core_types[tid])

    ctx = LoopContext(
        team=executor.team,
        n_iterations=loop.n_iterations,
        default_chunk=req.default_chunk,
        lock=None,
        offline_sf=req.offline_sf,
        charge_timestamp=charge_timestamp,
        obs=executor.obs,
        loop_name=loop.name,
        check=check,
    )
    scheduler = spec.create(ctx)

    jitter = (
        req.rng.uniform(0.0, executor.overhead.wake_jitter, size=nt)
        if req.rng is not None and executor.overhead.wake_jitter > 0.0
        else np.zeros(nt)
    )
    wake_begin = []
    for tid in range(nt):
        wake = (
            executor.overhead.wake_stagger * executor.team.cpu_of(tid)
            + jitter[tid]
        )
        wake_begin.append(
            entry[tid] + wake + executor.overhead.loop_start(core_types[tid])
        )

    track_obs = executor.obs.enabled
    srec = getattr(executor.obs, "spans", None)
    span_loop = None
    big_of: list[bool] = []
    if srec is not None:
        span_loop = srec.begin_loop(loop.name)
        fastest = executor.team.n_types - 1
        big_of = [
            executor.team.type_index_of(tid) == fastest for tid in range(nt)
        ]
    return RunSetup(
        nt=nt,
        start_time=start_time,
        entry=entry,
        prefix=prefix,
        rates=rates,
        core_types=core_types,
        pending_overhead=pending_overhead,
        ctx=ctx,
        scheduler=scheduler,
        wake_begin=wake_begin,
        dec_mark=(
            len(executor.obs.decisions.records) if track_obs else 0
        ),
        track_obs=track_obs,
        spans=srec,
        span_loop=span_loop,
        big_of=big_of,
    )


@dataclass
class LoopInstruments:
    """The per-run time-resolved instruments, shared by all simulated
    backends (the reference engine feeds them per dispatch, the
    vectorized engine in bulk columns at loop end)."""

    util_of: list
    rate_of: list
    runnable_ts: object
    chunk_ts: object
    dispatch_digest: object
    compute_digest: object
    size_digest: object


def make_instruments(
    executor: "LoopExecutor", loop: LoopSpec, core_types: Sequence
) -> LoopInstruments:
    """Create/fetch the run's timeseries and digests from the registry.

    Cached per loop name on the executor: iterative programs run the
    same loop hundreds of times, and the handles (registry-owned,
    get-or-create) are identical on every invocation.
    """
    cached = executor._instrument_cache.get(loop.name)
    if cached is not None:
        return cached
    reg = executor.obs.registry
    type_names = [ct.name for ct in core_types]
    util_by_type = {
        tname: reg.timeseries(
            "core_utilization", mode="busy", loop=loop.name,
            core_type=tname, norm=float(type_names.count(tname)),
        )
        for tname in dict.fromkeys(type_names)
    }
    rate_by_type = {
        tname: reg.timeseries("worker_rate", loop=loop.name, core_type=tname)
        for tname in dict.fromkeys(type_names)
    }
    inst = LoopInstruments(
        util_of=[util_by_type[tname] for tname in type_names],
        rate_of=[rate_by_type[tname] for tname in type_names],
        runnable_ts=reg.timeseries("runnable_iterations", loop=loop.name),
        chunk_ts=reg.timeseries("chunk_size", loop=loop.name),
        dispatch_digest=reg.digest("dispatch_overhead_seconds", loop=loop.name),
        compute_digest=reg.digest("chunk_compute_seconds", loop=loop.name),
        size_digest=reg.digest("chunk_size_iters", loop=loop.name),
    )
    executor._instrument_cache[loop.name] = inst
    return inst


def finish_run(
    executor: "LoopExecutor",
    req: "LoopRunRequest",
    setup: RunSetup,
    finish: list[float],
    iters: list[int],
    calls: Sequence[int],
    assigned: list[tuple[int, int, int]],
    dispatches: int,
    attempts: int,
    empty_takes: int,
    overhead_acc: Sequence[float],
    compute_acc: Sequence[float],
    engine=None,
) -> "LoopResult":
    """Shared epilogue: self-check, result, conformance, metrics."""
    from repro.runtime.executor import LoopResult

    loop, spec = req.loop, req.spec
    total_iters = sum(iters)
    if total_iters != loop.n_iterations:
        raise SimulationError(
            f"schedule {spec.name!r} executed {total_iters} of "
            f"{loop.n_iterations} iterations in loop {loop.name!r}"
        )
    result = LoopResult(
        loop_name=loop.name,
        start_time=setup.start_time,
        end_time=max(finish),
        finish_times=finish,
        iterations=iters,
        dispatches=dispatches,
        scheduler_calls=sum(calls),
        estimated_sf=setup.scheduler.estimated_sf(),
        ranges=assigned,
        extra={"scheduler": setup.scheduler},
    )
    if req.check is not None:
        req.check.on_loop_end(result)
    if engine is not None:
        engine.publish()
    if setup.spans is not None:
        dec_slice = (
            executor.obs.decisions.records[setup.dec_mark:]
            if setup.track_obs
            else ()
        )
        setup.spans.end_loop(
            setup.span_loop,
            t0=setup.start_time,
            t1=result.end_time,
            decisions=dec_slice,
            loop_name=loop.name,
        )
    if executor.obs.enabled:
        executor._publish_sf_drift(loop, setup.dec_mark)
        executor._publish_loop_metrics(
            loop, result, calls, overhead_acc, compute_acc,
            attempts=attempts, empty_takes=empty_takes, engine=engine,
        )
    return result
