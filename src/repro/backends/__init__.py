"""Pluggable execution backends for runtime-scheduled loops.

Public surface:

* :class:`ExecutionBackend`, :class:`BackendCapabilities` — the protocol.
* :func:`register_backend`, :func:`backend_names`,
  :func:`resolve_backend_name`, :func:`create_backend`,
  :func:`resolve_backend` — the registry and selection rules
  (explicit name > ``$REPRO_BACKEND`` > ``reference``).
* :class:`LoopRunRequest` — the argument bundle every backend consumes.
* The three built-in backends: :class:`ReferenceBackend` (the
  discrete-event ground truth), :class:`VectorizedBackend` (numpy
  closed-form batches, byte-identical decision logs) and
  :class:`RealBackend` (actual threads via :mod:`repro.exec_real`).
"""

from repro.backends.common import LoopRunRequest
from repro.backends.core import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendCapabilities,
    ExecutionBackend,
    backend_names,
    create_backend,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)
from repro.backends.real import RealBackend
from repro.backends.reference import ReferenceBackend
from repro.backends.vectorized import VectorizedBackend

register_backend(ReferenceBackend.name, ReferenceBackend)
register_backend(VectorizedBackend.name, VectorizedBackend)
register_backend(RealBackend.name, RealBackend)

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "BackendCapabilities",
    "ExecutionBackend",
    "LoopRunRequest",
    "RealBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "backend_names",
    "create_backend",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
]
