"""Execution tracing (the Paraver-style views of Figs. 1 and 4).

The discrete-event executor can record one interval per thread state
change; :class:`TraceRecorder` stores them, :mod:`repro.tracing.paraver`
exports them to a Paraver-like CSV, and :mod:`repro.tracing.ascii_art`
renders them as terminal timelines for the trace-based figures.
"""

from repro.tracing.trace import Gap, Interval, ThreadState, Timeline, TraceRecorder
from repro.tracing.ascii_art import render_timeline
from repro.tracing.paraver import export_paraver_csv

__all__ = [
    "ThreadState",
    "Interval",
    "Gap",
    "Timeline",
    "TraceRecorder",
    "render_timeline",
    "export_paraver_csv",
]
