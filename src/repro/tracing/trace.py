"""Per-thread state-interval recording.

Two objects split the job: :class:`TraceRecorder` is the write side the
executor appends to, and :class:`Timeline` is the read side every
consumer (Paraver CSV, ASCII art, the Chrome-trace exporter, analyses)
queries. A recorder's :meth:`~TraceRecorder.timeline` hands out the
current intervals as a :class:`Timeline`; the timeline additionally
validates physical consistency (a thread is in exactly one state at a
time) and exposes the *uncovered* stretches via :meth:`Timeline.gaps`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError

#: Times closer than this are considered equal (DES float arithmetic).
_TIME_EPS = 1e-12


class ThreadState(enum.Enum):
    """What a worker thread is doing during an interval.

    Mirrors the color legend of the paper's Paraver traces: useful
    computation, runtime-system overhead, barrier wait, serial sections.
    """

    SERIAL = "serial"          # master executing a sequential phase
    COMPUTE = "compute"        # executing loop iterations
    RUNTIME = "runtime"        # inside a runtime API call (dispatch etc.)
    BARRIER = "barrier"        # waiting at the implicit end-of-loop barrier
    IDLE = "idle"              # parked while the master runs serial code


@dataclass(frozen=True)
class Interval:
    """One contiguous stretch of a thread in one state."""

    tid: int
    state: ThreadState
    t0: float
    t1: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise SimulationError(
                f"interval ends before it starts: [{self.t0}, {self.t1}]"
            )

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class Gap:
    """A stretch of a thread's timeline covered by no interval."""

    tid: int
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class Timeline:
    """Read-side view over a set of recorded intervals.

    Attributes:
        intervals: the intervals, in recording order (per thread they are
            naturally time-ordered because the DES drives each thread
            forward monotonically).
    """

    intervals: list[Interval] = field(default_factory=list)

    def for_thread(self, tid: int) -> list[Interval]:
        """This thread's intervals, time-ordered."""
        out = [iv for iv in self.intervals if iv.tid == tid]
        out.sort(key=lambda iv: (iv.t0, iv.t1))
        return out

    def thread_ids(self) -> list[int]:
        return sorted({iv.tid for iv in self.intervals})

    @property
    def t_end(self) -> float:
        """Latest recorded timestamp (0.0 when empty)."""
        return max((iv.t1 for iv in self.intervals), default=0.0)

    @property
    def t_begin(self) -> float:
        """Earliest recorded timestamp (0.0 when empty)."""
        return min((iv.t0 for iv in self.intervals), default=0.0)

    def time_in_state(self, tid: int, state: ThreadState) -> float:
        """Total seconds thread ``tid`` spent in ``state``."""
        return sum(
            iv.duration
            for iv in self.intervals
            if iv.tid == tid and iv.state == state
        )

    def validate(self) -> None:
        """Reject overlapping intervals for the same tid.

        A thread is in exactly one state at a time, so any overlap
        indicates an executor bug (or a hand-built timeline that never
        happened).
        """
        for tid in self.thread_ids():
            ivs = self.for_thread(tid)
            for a, b in zip(ivs, ivs[1:]):
                if b.t0 < a.t1 - _TIME_EPS:
                    raise SimulationError(
                        f"thread {tid}: intervals overlap "
                        f"([{a.t0}, {a.t1}] {a.state} then [{b.t0}, {b.t1}] {b.state})"
                    )

    def gaps(self, tid: int | None = None, min_duration: float = _TIME_EPS) -> list[Gap]:
        """Uncovered stretches between consecutive intervals of a thread.

        A gap is a hole *inside* a thread's own recorded span — time
        between the end of one interval and the start of the next that no
        interval covers. Gaps are how lost time shows up when an
        instrumentation point is missing (the executor's timelines are
        gap-free by construction; tests assert that).

        Args:
            tid: restrict to one thread (default: all threads).
            min_duration: ignore holes at or below this size (float noise).

        Returns:
            Gaps sorted by (tid, start time).
        """
        tids = [tid] if tid is not None else self.thread_ids()
        out: list[Gap] = []
        for t in tids:
            ivs = self.for_thread(t)
            covered_until = None
            for iv in ivs:
                if covered_until is not None and iv.t0 - covered_until > min_duration:
                    out.append(Gap(t, covered_until, iv.t0))
                covered_until = (
                    iv.t1 if covered_until is None else max(covered_until, iv.t1)
                )
        return out


@dataclass
class TraceRecorder:
    """Collects intervals; pass one to the executor to enable tracing.

    Attributes:
        intervals: recorded intervals in recording order.
    """

    intervals: list[Interval] = field(default_factory=list)

    def record(
        self, tid: int, state: ThreadState, t0: float, t1: float, label: str = ""
    ) -> None:
        """Record one interval; zero-length intervals are dropped."""
        if t1 > t0:
            self.intervals.append(Interval(tid, state, t0, t1, label))

    def timeline(self) -> Timeline:
        """The recorded intervals as a read-side :class:`Timeline`."""
        return Timeline(self.intervals)

    # -- read-side conveniences (delegate to the timeline view) -------------

    def for_thread(self, tid: int) -> list[Interval]:
        """This thread's intervals, time-ordered."""
        return self.timeline().for_thread(tid)

    def thread_ids(self) -> list[int]:
        return self.timeline().thread_ids()

    @property
    def t_end(self) -> float:
        """Latest recorded timestamp (0.0 when empty)."""
        return self.timeline().t_end

    @property
    def t_begin(self) -> float:
        """Earliest recorded timestamp (0.0 when empty)."""
        return self.timeline().t_begin

    def time_in_state(self, tid: int, state: ThreadState) -> float:
        """Total seconds thread ``tid`` spent in ``state``."""
        return self.timeline().time_in_state(tid, state)

    def validate_non_overlapping(self) -> None:
        """Assert that no thread has overlapping intervals."""
        self.timeline().validate()
