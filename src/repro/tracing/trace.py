"""Per-thread state-interval recording."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError


class ThreadState(enum.Enum):
    """What a worker thread is doing during an interval.

    Mirrors the color legend of the paper's Paraver traces: useful
    computation, runtime-system overhead, barrier wait, serial sections.
    """

    SERIAL = "serial"          # master executing a sequential phase
    COMPUTE = "compute"        # executing loop iterations
    RUNTIME = "runtime"        # inside a runtime API call (dispatch etc.)
    BARRIER = "barrier"        # waiting at the implicit end-of-loop barrier
    IDLE = "idle"              # parked while the master runs serial code


@dataclass(frozen=True)
class Interval:
    """One contiguous stretch of a thread in one state."""

    tid: int
    state: ThreadState
    t0: float
    t1: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise SimulationError(
                f"interval ends before it starts: [{self.t0}, {self.t1}]"
            )

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class TraceRecorder:
    """Collects intervals; pass one to the executor to enable tracing.

    Attributes:
        intervals: recorded intervals in recording order (per thread they
            are naturally time-ordered because the DES drives each thread
            forward monotonically).
    """

    intervals: list[Interval] = field(default_factory=list)

    def record(
        self, tid: int, state: ThreadState, t0: float, t1: float, label: str = ""
    ) -> None:
        """Record one interval; zero-length intervals are dropped."""
        if t1 > t0:
            self.intervals.append(Interval(tid, state, t0, t1, label))

    def for_thread(self, tid: int) -> list[Interval]:
        """This thread's intervals, time-ordered."""
        out = [iv for iv in self.intervals if iv.tid == tid]
        out.sort(key=lambda iv: (iv.t0, iv.t1))
        return out

    def thread_ids(self) -> list[int]:
        return sorted({iv.tid for iv in self.intervals})

    @property
    def t_end(self) -> float:
        """Latest recorded timestamp (0.0 when empty)."""
        return max((iv.t1 for iv in self.intervals), default=0.0)

    @property
    def t_begin(self) -> float:
        """Earliest recorded timestamp (0.0 when empty)."""
        return min((iv.t0 for iv in self.intervals), default=0.0)

    def time_in_state(self, tid: int, state: ThreadState) -> float:
        """Total seconds thread ``tid`` spent in ``state``."""
        return sum(
            iv.duration for iv in self.intervals if iv.tid == tid and iv.state == state
        )

    def validate_non_overlapping(self) -> None:
        """Assert that no thread has overlapping intervals.

        Used by tests: a thread is in exactly one state at a time, so any
        overlap indicates an executor bug.
        """
        for tid in self.thread_ids():
            ivs = self.for_thread(tid)
            for a, b in zip(ivs, ivs[1:]):
                if b.t0 < a.t1 - 1e-12:
                    raise SimulationError(
                        f"thread {tid}: intervals overlap "
                        f"([{a.t0}, {a.t1}] {a.state} then [{b.t0}, {b.t1}] {b.state})"
                    )
