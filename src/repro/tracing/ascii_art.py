"""Terminal rendering of traces (our stand-in for the Paraver GUI)."""

from __future__ import annotations

from repro.tracing.trace import ThreadState, TraceRecorder

#: One character per state, chosen to read at a glance in a timeline.
STATE_CHARS = {
    ThreadState.SERIAL: "S",
    ThreadState.COMPUTE: "#",
    ThreadState.RUNTIME: "r",
    ThreadState.BARRIER: ".",
    ThreadState.IDLE: " ",
}

LEGEND = (
    "legend: '#' compute   'r' runtime overhead   '.' barrier wait   "
    "'S' serial   ' ' idle"
)


def render_timeline(
    trace: TraceRecorder,
    width: int = 100,
    t0: float | None = None,
    t1: float | None = None,
    show_legend: bool = True,
) -> str:
    """Render a trace as one fixed-width text row per thread.

    Each column is a time bucket of ``(t1 - t0) / width`` seconds showing
    the state the thread spent the *most* time in during that bucket —
    the same visual idea as the paper's Fig. 1/4 Paraver timelines.

    Args:
        trace: recorded intervals.
        width: characters per row.
        t0: window start (defaults to the trace's earliest timestamp).
        t1: window end (defaults to the trace's latest timestamp).
        show_legend: append the state legend.
    """
    tids = trace.thread_ids()
    if not tids:
        return "(empty trace)"
    lo = trace.t_begin if t0 is None else t0
    hi = trace.t_end if t1 is None else t1
    if hi <= lo:
        return "(empty time window)"
    bucket = (hi - lo) / width
    lines = []
    for tid in tids:
        # Accumulate per-bucket state occupancy, then pick the max.
        occupancy = [dict() for _ in range(width)]
        for iv in trace.for_thread(tid):
            a, b = max(iv.t0, lo), min(iv.t1, hi)
            if b <= a:
                continue
            first = int((a - lo) / bucket)
            last = min(width - 1, int((b - lo) / bucket))
            for col in range(first, last + 1):
                c0 = lo + col * bucket
                c1 = c0 + bucket
                overlap = min(b, c1) - max(a, c0)
                if overlap > 0:
                    occ = occupancy[col]
                    occ[iv.state] = occ.get(iv.state, 0.0) + overlap
        row = []
        for occ in occupancy:
            if not occ:
                row.append(" ")
            else:
                state = max(occ.items(), key=lambda kv: kv[1])[0]
                row.append(STATE_CHARS[state])
        lines.append(f"T{tid:<2d} |{''.join(row)}|")
    header = f"time window: [{lo:.6f}, {hi:.6f}] s, {bucket * 1e3:.3f} ms/char"
    out = [header, *lines]
    if show_legend:
        out.append(LEGEND)
    return "\n".join(out)
