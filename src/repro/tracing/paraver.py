"""Paraver-like CSV export of traces.

Real Paraver uses a binary .prv format; we export the semantic content —
one state record per interval — as CSV so the traces can be inspected
with standard tools or re-plotted.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.tracing.trace import TraceRecorder

#: Column order of the export.
FIELDS = ("thread", "state", "t_start", "t_end", "duration", "label")


def export_paraver_csv(trace: TraceRecorder, path: str | Path | None = None) -> str:
    """Serialize a trace to CSV.

    Args:
        trace: recorded intervals.
        path: optional file to write; the CSV text is returned either way.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(FIELDS)
    for iv in sorted(trace.intervals, key=lambda iv: (iv.t0, iv.tid)):
        writer.writerow(
            [
                iv.tid,
                iv.state.value,
                f"{iv.t0:.9f}",
                f"{iv.t1:.9f}",
                f"{iv.duration:.9f}",
                iv.label,
            ]
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
