"""Declarative fault model: frozen events, plans, JSON round-trip.

Times are seconds on the executing clock — virtual seconds for the
simulator, wall-clock seconds for :mod:`repro.exec_real`. Plans built
by :func:`random_plan` use *fractional* times in ``[0, 1]``; call
:meth:`FaultPlan.scaled` with a makespan estimate to pin them to a
concrete horizon.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import FaultError

PLAN_SCHEMA = "repro.faults.plan/v1"


@dataclass(frozen=True)
class ThrottleEvent:
    """Scale one CPU's speed by ``factor`` over the window ``[t0, t1)``.

    ``factor`` multiplies the core's execution rate: ``0.25`` models a
    thermally throttled core running at a quarter speed, values above
    ``1.0`` model a boost. Overlapping throttles on the same CPU
    compose multiplicatively.
    """

    cpu: int
    t0: float
    t1: float
    factor: float

    kind = "throttle"

    def validate(self) -> None:
        if self.cpu < 0:
            raise FaultError(f"throttle cpu must be >= 0, got {self.cpu}")
        if not (0.0 <= self.t0 < self.t1):
            raise FaultError(
                f"throttle window must satisfy 0 <= t0 < t1, got "
                f"[{self.t0}, {self.t1})"
            )
        if not (self.factor > 0.0):
            raise FaultError(f"throttle factor must be > 0, got {self.factor}")


@dataclass(frozen=True)
class CoreOfflineEvent:
    """Take one CPU offline at time ``t``.

    The worker pinned to it is preempted: completed iterations of its
    in-flight chunk are kept, the remainder is returned to the pool,
    and the worker takes no further chunks until a matching
    :class:`CoreOnlineEvent` fires.
    """

    cpu: int
    t: float

    kind = "offline"

    def validate(self) -> None:
        if self.cpu < 0:
            raise FaultError(f"offline cpu must be >= 0, got {self.cpu}")
        if self.t < 0.0:
            raise FaultError(f"offline time must be >= 0, got {self.t}")


@dataclass(frozen=True)
class CoreOnlineEvent:
    """Bring a previously offlined CPU back at time ``t``."""

    cpu: int
    t: float

    kind = "online"

    def validate(self) -> None:
        if self.cpu < 0:
            raise FaultError(f"online cpu must be >= 0, got {self.cpu}")
        if self.t < 0.0:
            raise FaultError(f"online time must be >= 0, got {self.t}")


@dataclass(frozen=True)
class WorkerStallEvent:
    """Add ``seconds`` of latency to worker ``tid``'s next chunk.

    In the simulator the stall is charged as extra dispatch overhead on
    the worker's next dispatch at or after ``t``. Under
    :mod:`repro.exec_real` the worker genuinely sleeps, which is what
    the team watchdog is meant to catch.
    """

    tid: int
    t: float
    seconds: float

    kind = "stall"

    def validate(self) -> None:
        if self.tid < 0:
            raise FaultError(f"stall tid must be >= 0, got {self.tid}")
        if self.t < 0.0:
            raise FaultError(f"stall time must be >= 0, got {self.t}")
        if not (self.seconds > 0.0):
            raise FaultError(f"stall seconds must be > 0, got {self.seconds}")


@dataclass(frozen=True)
class OverheadSpikeEvent:
    """Multiply runtime dispatch overhead by ``factor`` over ``[t0, t1)``.

    Models OS noise / interference on the runtime's shared structures.
    Overlapping spikes compose multiplicatively.
    """

    t0: float
    t1: float
    factor: float

    kind = "spike"

    def validate(self) -> None:
        if not (0.0 <= self.t0 < self.t1):
            raise FaultError(
                f"spike window must satisfy 0 <= t0 < t1, got "
                f"[{self.t0}, {self.t1})"
            )
        if not (self.factor > 0.0):
            raise FaultError(f"spike factor must be > 0, got {self.factor}")


FaultEvent = (
    ThrottleEvent
    | CoreOfflineEvent
    | CoreOnlineEvent
    | WorkerStallEvent
    | OverheadSpikeEvent
)

_EVENT_TYPES = {
    cls.kind: cls
    for cls in (
        ThrottleEvent,
        CoreOfflineEvent,
        CoreOnlineEvent,
        WorkerStallEvent,
        OverheadSpikeEvent,
    )
}

# Positional tuple forms, used by the fuzzer so FuzzCase stays a flat,
# JSON-friendly dataclass: ("throttle", cpu, t0, t1, factor) etc.
_TUPLE_FIELDS = {
    "throttle": ("cpu", "t0", "t1", "factor"),
    "offline": ("cpu", "t"),
    "online": ("cpu", "t"),
    "stall": ("tid", "t", "seconds"),
    "spike": ("t0", "t1", "factor"),
}
_INT_FIELDS = {"cpu", "tid"}


def event_to_tuple(event: FaultEvent) -> tuple:
    return (event.kind, *(getattr(event, f) for f in _TUPLE_FIELDS[event.kind]))


def event_from_tuple(item: Sequence) -> FaultEvent:
    if not item:
        raise FaultError("empty fault-event tuple")
    kind = item[0]
    fields = _TUPLE_FIELDS.get(kind)
    if fields is None:
        raise FaultError(f"unknown fault-event kind {kind!r}")
    if len(item) != len(fields) + 1:
        raise FaultError(
            f"fault-event tuple for {kind!r} needs {len(fields) + 1} items, "
            f"got {len(item)}"
        )
    kwargs = {}
    for name, value in zip(fields, item[1:]):
        kwargs[name] = int(value) if name in _INT_FIELDS else float(value)
    event = _EVENT_TYPES[kind](**kwargs)
    event.validate()
    return event


def _scale_event(event: FaultEvent, horizon: float) -> FaultEvent:
    # "seconds" is a duration, but it lives on the same clock as the
    # event times: a fractional-time plan carries fractional stalls.
    updates = {
        name: getattr(event, name) * horizon
        for name in ("t", "t0", "t1", "seconds")
        if hasattr(event, name)
    }
    return dataclasses.replace(event, **updates)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault events.

    Event times may be absolute seconds or fractions of an (unknown)
    makespan; :meth:`scaled` converts the latter to the former. The
    plan itself does not care which convention is in force — the
    injection engines consume whatever times they are given.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, tuple(_EVENT_TYPES.values())):
                raise FaultError(
                    f"fault plan events must be fault-event dataclasses, "
                    f"got {type(event).__name__}"
                )
            event.validate()

    @property
    def is_empty(self) -> bool:
        return not self.events

    def scaled(self, horizon: float) -> "FaultPlan":
        """Return a copy with every event time multiplied by ``horizon``."""
        if not (horizon > 0.0):
            raise FaultError(f"scale horizon must be > 0, got {horizon}")
        return FaultPlan(tuple(_scale_event(e, horizon) for e in self.events))

    def to_tuples(self) -> tuple[tuple, ...]:
        return tuple(event_to_tuple(e) for e in self.events)

    def to_payload(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "events": [
                {"kind": e.kind, **dataclasses.asdict(e)} for e in self.events
            ],
        }

    @classmethod
    def from_payload(cls, payload: object) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultError(
                f"fault plan payload must be a dict, got {type(payload).__name__}"
            )
        if payload.get("schema") != PLAN_SCHEMA:
            raise FaultError(
                f"unsupported fault plan schema {payload.get('schema')!r}"
            )
        raw = payload.get("events")
        if not isinstance(raw, list):
            raise FaultError("fault plan payload has no event list")
        events = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise FaultError("fault plan event entries must be dicts")
            kind = entry.get("kind")
            fields = _TUPLE_FIELDS.get(kind)
            if fields is None:
                raise FaultError(f"unknown fault-event kind {kind!r}")
            try:
                values = [entry[name] for name in fields]
            except KeyError as exc:
                raise FaultError(
                    f"fault-event entry for {kind!r} is missing field {exc}"
                ) from exc
            events.append(event_from_tuple((kind, *values)))
        return cls(tuple(events))

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)


EMPTY_PLAN = FaultPlan()


def plan_from_tuples(items: Iterable[Sequence]) -> FaultPlan:
    return FaultPlan(tuple(event_from_tuple(item) for item in items))


def random_plan(
    seed: int,
    n_cpus: int,
    intensity: float = 0.5,
    n_events: int | None = None,
    kinds: Sequence[str] = ("throttle", "offline", "spike", "stall"),
) -> FaultPlan:
    """Generate a seed-deterministic plan with fractional event times.

    ``intensity`` in ``(0, 1]`` controls both how many events are drawn
    (when ``n_events`` is not given) and how severe each one is:
    higher intensity means slower throttle factors, longer windows and
    longer stalls. Offline events are always paired with a matching
    online event, except that at the highest intensities one core may
    stay down for the rest of the run.
    """
    if n_cpus <= 0:
        raise FaultError(f"random_plan needs n_cpus > 0, got {n_cpus}")
    if not (0.0 < intensity <= 1.0):
        raise FaultError(f"intensity must be in (0, 1], got {intensity}")
    if not kinds:
        raise FaultError("random_plan needs at least one event kind")
    for kind in kinds:
        if kind not in _TUPLE_FIELDS:
            raise FaultError(f"unknown fault-event kind {kind!r}")
    rng = np.random.default_rng(seed)
    if n_events is None:
        n_events = 1 + int(rng.integers(0, 2 + round(3 * intensity)))
    events: list[FaultEvent] = []
    for _ in range(n_events):
        kind = str(rng.choice(list(kinds)))
        t0 = float(rng.uniform(0.05, 0.85))
        if kind == "throttle":
            t1 = min(1.0, t0 + float(rng.uniform(0.1, 0.6)))
            factor = float(rng.uniform(1.0 - 0.8 * intensity, 0.95))
            events.append(
                ThrottleEvent(cpu=int(rng.integers(n_cpus)), t0=t0, t1=t1,
                              factor=max(factor, 0.05))
            )
        elif kind == "offline":
            cpu = int(rng.integers(n_cpus))
            events.append(CoreOfflineEvent(cpu=cpu, t=t0))
            if intensity < 0.9 or rng.random() > 0.5:
                t1 = min(1.0, t0 + float(rng.uniform(0.1, 0.5)))
                if t1 > t0:
                    events.append(CoreOnlineEvent(cpu=cpu, t=t1))
        elif kind == "online":
            events.append(CoreOnlineEvent(cpu=int(rng.integers(n_cpus)), t=t0))
        elif kind == "spike":
            t1 = min(1.0, t0 + float(rng.uniform(0.05, 0.4)))
            events.append(
                OverheadSpikeEvent(t0=t0, t1=t1,
                                   factor=1.0 + float(rng.uniform(1.0, 9.0)) * intensity)
            )
        else:  # stall
            events.append(
                WorkerStallEvent(
                    tid=int(rng.integers(n_cpus)),
                    t=t0,
                    seconds=float(rng.uniform(0.02, 0.2)) * intensity,
                )
            )
    return FaultPlan(tuple(events))
