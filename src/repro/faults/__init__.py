"""Dynamic-asymmetry fault injection for the repro runtime.

The paper's platforms are *statically* asymmetric; real AMP deployments
are dynamically so: DVFS/thermal throttling, core offlining and
transient stalls change the effective big-to-small speedup mid-loop —
exactly the quantity every AID variant bakes its decisions on. This
package provides

* a declarative, JSON-round-trippable fault model
  (:mod:`repro.faults.model`),
* the simulator-side injection engine
  (:mod:`repro.faults.engine`, wired into
  :meth:`repro.runtime.executor.LoopExecutor.run` via ``faults=``),
* real-thread stall injection and a stalled-worker watchdog
  (:meth:`repro.exec_real.team.ThreadTeam.parallel_for` consumes
  :class:`~repro.faults.model.WorkerStallEvent` plans via ``stalls=``),
* a resilience CLI (``python -m repro.faults``).

Determinism contract: a plan's firings enter the simulator as ordinary
:class:`repro.sim.events.Event`\\ s, so tie-breaking and replayability
are exactly the simulator's. An empty plan (or ``faults=None``) is a
strict no-op — the executor takes the identical code path and produces
byte-identical results.
"""

from repro.faults.model import (
    CoreOfflineEvent,
    CoreOnlineEvent,
    FaultPlan,
    OverheadSpikeEvent,
    ThrottleEvent,
    WorkerStallEvent,
    plan_from_tuples,
    random_plan,
)

__all__ = [
    "CoreOfflineEvent",
    "CoreOnlineEvent",
    "FaultPlan",
    "OverheadSpikeEvent",
    "ThrottleEvent",
    "WorkerStallEvent",
    "plan_from_tuples",
    "random_plan",
]
