"""``python -m repro.faults`` — the resilience command line.

Subcommands:

* ``sweep`` — fault-intensity x AID-variant degradation table
  (:func:`repro.experiments.resilience.sweep`);
* ``ab`` — the adaptive A/B: ``aid_auto`` with vs without fault
  adaptation under a mid-loop throttle of every big core;
  ``--spans-a/--spans-b`` additionally write span-bearing snapshots of
  the fault-free and throttled runs — the pair
  ``python -m repro.obs.report explain`` turns into a ranked
  "where the makespan went" report;
* ``plan`` — generate a seeded random fault plan as JSON (fractional
  times; scale onto a makespan with ``FaultPlan.scaled``);
* ``smoke`` — the CI gate: a tiny sweep (every variant must complete
  with bounded degradation) plus the A/B (adaptation must win).

Exit status is 0 iff every requested check passed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.resilience import (
    DEFAULT_INTENSITIES,
    sweep,
    throttle_ab,
    throttle_ab_snapshots,
)
from repro.faults.model import random_plan


def _cmd_sweep(args: argparse.Namespace) -> int:
    report = sweep(
        platform_name=args.platform,
        variants=tuple(args.variant) if args.variant else None,
        intensities=(
            tuple(args.intensity) if args.intensity else DEFAULT_INTENSITIES
        ),
        seeds=args.seeds,
        n_iterations=args.iterations,
        root_seed=args.seed,
    )
    print(report.to_table())
    if args.out:
        Path(args.out).write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        print(f"payload written to {args.out}")
    return 0


def _cmd_ab(args: argparse.Namespace) -> int:
    ab = throttle_ab(
        platform_name=args.platform,
        n_iterations=args.iterations,
        throttle_factor=args.factor,
    )
    print(ab.render())
    if args.spans_a or args.spans_b:
        from repro.obs.snapshot import to_json

        snap_a, snap_b = throttle_ab_snapshots(
            platform_name=args.platform,
            n_iterations=args.iterations,
            throttle_factor=args.factor,
        )
        for path, snap in ((args.spans_a, snap_a), (args.spans_b, snap_b)):
            if path:
                Path(path).write_text(to_json(snap), encoding="utf-8")
                print(f"span snapshot written to {path}")
    if ab.speedup <= 1.0:
        print("FAIL: adaptation did not beat the non-adaptive run")
        return 1
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = random_plan(
        args.seed, args.cpus, intensity=args.intensity,
        n_events=args.events,
    )
    print(json.dumps(plan.to_payload(), indent=2, sort_keys=True))
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Tiny deterministic resilience gate for CI."""
    failures: list[str] = []
    report = sweep(seeds=2, n_iterations=256, root_seed=args.seed)
    print(report.to_table())
    for cell in report.cells:
        if cell.degradation < 0.5:
            failures.append(
                f"{cell.variant} @ {cell.intensity:g}: degradation "
                f"{cell.degradation:.3f} < 0.5 — faults made the loop "
                f"impossibly faster"
            )
        if cell.degradation > 50.0:
            failures.append(
                f"{cell.variant} @ {cell.intensity:g}: degradation "
                f"{cell.degradation:.3f} > 50 — recovery is not absorbing "
                f"faults"
            )
    ab = throttle_ab()
    print(ab.render())
    if ab.speedup <= 1.0:
        failures.append(
            f"adaptive aid_auto did not beat non-adaptive under the "
            f"mid-loop throttle (speedup {ab.speedup:.3f})"
        )
    if failures:
        print("resilience smoke FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("resilience smoke passed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Fault-injection resilience harness: intensity sweep, "
        "adaptive A/B, plan generation and the CI smoke.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sweep", help="degradation-vs-intensity table")
    p.add_argument("--platform", default="odroid_xu4")
    p.add_argument("--seeds", type=int, default=5)
    p.add_argument("--iterations", type=int, default=2048)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--variant", action="append",
        help="restrict the variant pool (repeatable)",
    )
    p.add_argument(
        "--intensity", action="append", type=float,
        help=f"intensity levels (repeatable; default {DEFAULT_INTENSITIES})",
    )
    p.add_argument("--out", help="write the report payload as JSON")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "ab", help="aid_auto adaptation A/B under a mid-loop throttle"
    )
    p.add_argument("--platform", default="odroid_xu4")
    p.add_argument("--iterations", type=int, default=4096)
    p.add_argument("--factor", type=float, default=0.2)
    p.add_argument(
        "--spans-a", metavar="PATH",
        help="write a span-bearing snapshot of the fault-free run "
        "(explain baseline)",
    )
    p.add_argument(
        "--spans-b", metavar="PATH",
        help="write a span-bearing snapshot of the throttled "
        "non-adaptive run (explain candidate)",
    )
    p.set_defaults(func=_cmd_ab)

    p = sub.add_parser("plan", help="print a seeded random fault plan")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cpus", type=int, default=8)
    p.add_argument("--intensity", type=float, default=0.5)
    p.add_argument("--events", type=int, default=None)
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("smoke", help="tiny deterministic CI gate")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
