"""Simulator-side fault injection: time-varying core speed, offlining,
stalls and overhead spikes, driven as ordinary simulator events.

The engine sits between :class:`repro.runtime.executor.LoopExecutor` and
the discrete-event simulator. The executor (only when handed a
non-empty :class:`~repro.faults.model.FaultPlan`) routes every compute
block through :meth:`SimFaultEngine.begin_block`; the engine owns the
block's completion event and re-integrates its cost piecewise whenever a
throttle boundary changes the owning core's effective rate:

    work_done += (t_boundary - t_segment_start) * rate * multiplier

so a chunk spanning N speed segments costs exactly the sum of its
per-segment integrals — the piecewise-rate generalization of the
executor's single ``work / rate`` division.

Recovery semantics:

* a *slowing* throttle that catches a chunk with at least one finished
  and one unfinished iteration preempts it: the finished prefix is kept
  (recorded with the original dispatch timestamp, so per-thread clock
  monotonicity is preserved), the tail goes back through
  :meth:`repro.sched.base.LoopScheduler.reclaim`, and the worker
  redispatches immediately — a slow core never sits on a chunk sized
  for its old speed;
* a core going offline preempts the same way, parks the worker, and
  notifies the policy via ``on_worker_lost``; a later online event
  unparks it through ``on_worker_back``. Offlining the *last* live
  worker is deferred (logged as ``offline_deferred``) — someone must
  finish the loop;
* stalls add latency to the victim's next dispatch; overhead spikes
  multiply dispatch overhead while active.

Every state change is logged through the decision stream under the
pseudo-scheduler label ``"faults"`` (flowing into the conformance log,
the obs decision log and Chrome-trace instant events) and counted on
the metrics registry.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.faults.model import (
    CoreOfflineEvent,
    CoreOnlineEvent,
    FaultPlan,
    OverheadSpikeEvent,
    ThrottleEvent,
    WorkerStallEvent,
)
from repro.obs.decisions import DecisionEmitter


class _Block:
    """One in-flight compute chunk, tracked for piecewise-rate costing."""

    __slots__ = (
        "tid", "lo", "hi", "dispatch_t", "compute_start", "t_seg",
        "work_done", "total_work", "speed0", "mult", "event",
    )

    def __init__(self, tid, lo, hi, dispatch_t, compute_start, total_work,
                 speed0, mult):
        self.tid = tid
        self.lo = lo
        self.hi = hi
        self.dispatch_t = dispatch_t
        self.compute_start = compute_start
        # Start of the current constant-rate segment; work_done holds the
        # work units integrated over all earlier segments.
        self.t_seg = compute_start
        self.work_done = 0.0
        self.total_work = total_work
        self.speed0 = speed0
        self.mult = mult
        self.event = None


class SimFaultEngine:
    """Applies one :class:`FaultPlan` to one simulated loop execution.

    The executor binds three callbacks after construction
    (:meth:`bind`): ``restart`` re-enters its dispatch loop for a
    thread, ``record_exec`` performs the deferred per-chunk accounting
    (conformance dispatch record, executed-ranges list, iteration and
    compute-time counters, trace segment), and ``set_finish`` updates a
    thread's finish time when it parks.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim,
        scheduler,
        prefix: np.ndarray,
        cpu_of_tid: Sequence[int],
        loop_name: str,
        obs,
        check=None,
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.scheduler = scheduler
        self.prefix = prefix
        self._cpu_of = list(cpu_of_tid)
        self._nt = len(self._cpu_of)
        self._tids_on: dict[int, list[int]] = {}
        for tid, cpu in enumerate(self._cpu_of):
            self._tids_on.setdefault(cpu, []).append(tid)
        if check is not None:
            self.dec = check.fault_emitter(loop_name, obs)
        else:
            self.dec = DecisionEmitter(obs, loop_name, "faults")
        self._obs = obs
        self._loop_name = loop_name
        # Causal span recorder (None when tracing is off). Window spans
        # (throttle/spike/offline) are opened at the begin firing and
        # their end time patched at the end firing or at publish();
        # stalls are recorded as they are consumed.
        self._srec = getattr(obs, "spans", None)
        self._open_spans: dict[tuple, object] = {}
        # -- dynamic state ------------------------------------------------
        self._active_throttles: dict[int, list[float]] = {}
        self._mult: dict[int, float] = {}
        self._active_spikes: list[float] = []
        self._offline: set[int] = set()
        self._parked: set[int] = set()
        self._lost: set[int] = set()
        self._retired: set[int] = set()
        self._woke: set[int] = set()
        self._inflight: dict[int, _Block] = {}
        self._pending_stall: dict[int, float] = {}
        self._stall_by_tid: dict[int, float] = {}
        self._counts: dict[str, float] = {}
        # -- executor callbacks (bound via bind()) ------------------------
        self._restart_cb: Callable[[int, float], None] | None = None
        self._record_exec: Callable[..., None] | None = None
        self._set_finish: Callable[[int, float], None] | None = None

    # -- wiring ------------------------------------------------------------

    def bind(
        self,
        restart: Callable[[int, float], None],
        record_exec: Callable[..., None],
        set_finish: Callable[[int, float], None],
    ) -> None:
        self._restart_cb = restart
        self._record_exec = record_exec
        self._set_finish = set_finish

    @property
    def n_plan_events(self) -> int:
        return len(self.plan.events)

    def schedule(self, start_time: float) -> None:
        """Inject the plan's firings as ordinary simulator events.

        Windows that ended before ``start_time`` are dropped; firings in
        the past are clamped to ``start_time``. Scheduling happens before
        the workers' wake events are pushed, so at equal times fault
        firings carry lower sequence numbers and are delivered first —
        the deterministic tie-break the invariants rely on.
        """
        clamp = lambda t: max(float(t), start_time)  # noqa: E731
        for ev in self.plan.events:
            if isinstance(ev, ThrottleEvent):
                if ev.t1 <= start_time:
                    continue
                self.sim.at(clamp(ev.t0),
                            (lambda e: lambda: self._fire_throttle_begin(e))(ev),
                            tag="fault")
                self.sim.at(clamp(ev.t1),
                            (lambda e: lambda: self._fire_throttle_end(e))(ev),
                            tag="fault")
            elif isinstance(ev, CoreOfflineEvent):
                self.sim.at(clamp(ev.t),
                            (lambda e: lambda: self._fire_offline(e))(ev),
                            tag="fault")
            elif isinstance(ev, CoreOnlineEvent):
                self.sim.at(clamp(ev.t),
                            (lambda e: lambda: self._fire_online(e))(ev),
                            tag="fault")
            elif isinstance(ev, WorkerStallEvent):
                self.sim.at(clamp(ev.t),
                            (lambda e: lambda: self._fire_stall(e))(ev),
                            tag="fault")
            elif isinstance(ev, OverheadSpikeEvent):
                if ev.t1 <= start_time:
                    continue
                self.sim.at(clamp(ev.t0),
                            (lambda e: lambda: self._fire_spike_begin(e))(ev),
                            tag="fault")
                self.sim.at(clamp(ev.t1),
                            (lambda e: lambda: self._fire_spike_end(e))(ev),
                            tag="fault")

    # -- executor-facing API ----------------------------------------------

    def on_wake(self, tid: int) -> None:
        """The worker's dispatch loop reached ``tid`` at least once."""
        self._woke.add(tid)

    def is_parked(self, tid: int) -> bool:
        return tid in self._parked

    def worker_retired(self, tid: int) -> None:
        self._retired.add(tid)

    def adjust_overhead(self, tid: int, now: float, overhead_dt: float) -> float:
        """Apply active overhead spikes and consume any pending stall."""
        if self._active_spikes:
            m = 1.0
            for f in self._active_spikes:
                m *= f
            overhead_dt *= m
        stall = self._pending_stall.pop(tid, None)
        if stall:
            overhead_dt += stall
            self._count("fault_stall_seconds_total", stall)
            self._stall_by_tid[tid] = self._stall_by_tid.get(tid, 0.0) + stall
            if self._srec is not None:
                self._srec.record_fault(
                    "stall", now, now + stall, tid=tid, seconds=stall
                )
            if self.dec.on:
                self.dec.emit(tid, now, "stall_applied", seconds=stall)
        return overhead_dt

    def stall_seconds_of(self, tid: int) -> float:
        """Stall seconds folded into ``tid``'s dispatch overhead so far
        (cost attribution subtracts them back out of the overhead
        category)."""
        return self._stall_by_tid.get(tid, 0.0)

    def begin_block(
        self,
        tid: int,
        dispatch_t: float,
        compute_start: float,
        lo: int,
        hi: int,
        speed0: float,
    ) -> None:
        """Register a dispatched chunk and schedule its completion.

        ``speed0`` is the worker's unthrottled execution rate in work
        units per second (platform rate divided by locality slowdown).
        """
        mult = self._mult.get(self._cpu_of[tid], 1.0)
        total = float(self.prefix[hi] - self.prefix[lo])
        block = _Block(tid, lo, hi, dispatch_t, compute_start, total,
                       speed0, mult)
        t_done = compute_start + (total / (speed0 * mult) if total > 0 else 0.0)
        block.event = self.sim.at(
            t_done, (lambda b: lambda: self._complete(b))(block), tag=f"t{tid}"
        )
        self._inflight[tid] = block

    def publish(self) -> None:
        """Fold the run's fault counters into the metrics registry."""
        if self._srec is not None:
            self._close_open_spans(self.sim.now)
        if not getattr(self._obs, "enabled", False):
            return
        reg = self._obs.registry
        for name, value in sorted(self._counts.items()):
            if "@" in name:
                base, kind = name.split("@", 1)
                reg.counter(base, loop=self._loop_name, kind=kind).inc(value)
            else:
                reg.counter(name, loop=self._loop_name).inc(value)

    # -- internals ---------------------------------------------------------

    def _count(self, name: str, value: float = 1.0) -> None:
        self._counts[name] = self._counts.get(name, 0.0) + value

    def _span_open(self, kind: str, key: tuple, t: float, **attrs) -> None:
        if self._srec is None:
            return
        self._srec.record_fault(kind, t, t, **attrs)
        self._open_spans[(kind,) + key] = self._srec.spans[-1]

    def _span_close(self, kind: str, key: tuple, t: float) -> None:
        span = self._open_spans.pop((kind,) + key, None)
        if span is not None:
            span.t1 = max(span.t0, t)

    def _close_open_spans(self, t: float) -> None:
        """Patch end times of windows still open when the loop finishes
        (e.g. a throttle lasting past the loop's horizon)."""
        for span in self._open_spans.values():
            span.t1 = max(span.t0, t)
        self._open_spans.clear()

    def _restart(self, tid: int, t: float) -> None:
        self._restart_cb(tid, t)

    def _completed_iters(self, block: _Block) -> int:
        """Whole iterations of ``block`` finished given ``work_done``."""
        if block.work_done <= 0.0:
            return 0
        target = (
            float(self.prefix[block.lo])
            + block.work_done
            + 1e-12 * max(1.0, block.work_done)
        )
        k = int(np.searchsorted(self.prefix, target, side="right")) - 1 - block.lo
        return max(0, min(k, block.hi - block.lo))

    def _accrue(self, block: _Block, t: float) -> None:
        """Integrate the current constant-rate segment up to ``t``."""
        if t > block.t_seg:
            block.work_done += (t - block.t_seg) * block.speed0 * block.mult
            block.t_seg = t

    def _complete(self, block: _Block) -> None:
        tid = block.tid
        self._inflight.pop(tid, None)
        block.event = None
        now = self.sim.now
        self._record_exec(
            tid, block.dispatch_t, block.lo, block.hi, block.compute_start, now
        )
        # The worker redispatches synchronously — this *is* its
        # completion event, exactly like the fault-free executor path.
        self._restart(tid, now)

    def _preempt(self, block: _Block, t: float, k: int, reason: str) -> None:
        """Cut ``block`` at iteration boundary ``k`` and reclaim the tail."""
        tid = block.tid
        self.sim.queue.cancel(block.event)
        block.event = None
        del self._inflight[tid]
        # A preempt inside the overhead window (compute never started)
        # truncates the RUNTIME segment at the preempt time and records
        # zero compute; otherwise the chunk computed [compute_start, t].
        cs = min(block.compute_start, t)
        self._record_exec(
            tid, block.dispatch_t, block.lo, block.lo + k, cs, t,
        )
        requeue_lo = block.lo + k
        self._count("fault_preemptions_total")
        if self.dec.on:
            self.dec.emit(
                tid, t, "preempt",
                range=[block.lo, block.hi], completed=k, reason=reason,
            )
        if requeue_lo < block.hi:
            self._count(
                "fault_requeued_iterations_total", block.hi - requeue_lo
            )
            if self.dec.on:
                self.dec.emit(
                    tid, t, "requeue",
                    range=[requeue_lo, block.hi], reason=reason,
                )
            self.scheduler.reclaim(tid, requeue_lo, block.hi)

    # -- firings -----------------------------------------------------------

    def _fire_throttle_begin(self, ev: ThrottleEvent) -> None:
        t = self.sim.now
        self._count("fault_events_total@throttle")
        self._active_throttles.setdefault(ev.cpu, []).append(ev.factor)
        self._span_open(
            "throttle", (ev.cpu, ev.factor), t, cpu=ev.cpu, factor=ev.factor
        )
        if self.dec.on:
            self.dec.emit(-1, t, "throttle_begin", cpu=ev.cpu, factor=ev.factor)
        self._recompute_mult(ev.cpu, t)

    def _fire_throttle_end(self, ev: ThrottleEvent) -> None:
        t = self.sim.now
        active = self._active_throttles.get(ev.cpu, [])
        if ev.factor in active:
            active.remove(ev.factor)
        self._span_close("throttle", (ev.cpu, ev.factor), t)
        if self.dec.on:
            self.dec.emit(-1, t, "throttle_end", cpu=ev.cpu, factor=ev.factor)
        self._recompute_mult(ev.cpu, t)

    def _recompute_mult(self, cpu: int, t: float) -> None:
        new = 1.0
        for f in self._active_throttles.get(cpu, ()):
            new *= f
        old = self._mult.get(cpu, 1.0)
        if new == old:
            return
        self._mult[cpu] = new
        for tid in self._tids_on.get(cpu, ()):
            block = self._inflight.get(tid)
            if block is None:
                continue
            self._accrue(block, t)
            block.mult = new
            k = self._completed_iters(block)
            rem = (block.hi - block.lo) - k
            if new < old and k >= 1 and rem >= 1:
                # A slowed core sitting on a part-done chunk: keep the
                # finished prefix, hand the tail back, redispatch — the
                # policy resizes for the new speed.
                self._preempt(block, t, k, reason="throttle")
                self._restart(tid, t)
            else:
                self.sim.queue.cancel(block.event)
                remaining = max(0.0, block.total_work - block.work_done)
                t_new = block.t_seg + remaining / (block.speed0 * new)
                block.event = self.sim.at(
                    t_new, (lambda b: lambda: self._complete(b))(block),
                    tag=f"t{tid}",
                )
        dec_records = (
            getattr(self._obs.decisions, "records", None)
            if self._srec is not None
            else None
        )
        mark = len(dec_records) if dec_records is not None else 0
        self.scheduler.on_rates_changed(t, dict(self._mult))
        if dec_records is not None:
            # Any SF resample the rate change just triggered is causally
            # downstream of the fault window: materialize the edge.
            src = next(
                (
                    s.span_id
                    for s in reversed(self._srec.spans)
                    if s.cat == "fault"
                ),
                None,
            )
            loop_path = self._srec.current_loop
            if src is not None and loop_path is not None:
                for rec in dec_records[mark:]:
                    if rec.get("event") != "resample":
                        continue
                    tid = rec.get("tid", -1)
                    dst = (
                        f"{loop_path}/t{tid}" if tid is not None and tid >= 0
                        else loop_path
                    )
                    self._srec.edge(
                        src, dst, "fault_resample", float(rec.get("t", t))
                    )

    def _live_workers_excluding(self, cpu: int) -> list[int]:
        return [
            w for w in range(self._nt)
            if w not in self._retired
            and self._cpu_of[w] != cpu
            and self._cpu_of[w] not in self._offline
        ]

    def _fire_offline(self, ev: CoreOfflineEvent) -> None:
        t = self.sim.now
        self._count("fault_events_total@offline")
        if ev.cpu in self._offline:
            return
        tids = [w for w in self._tids_on.get(ev.cpu, ()) if w not in self._retired]
        if tids and not self._live_workers_excluding(ev.cpu):
            # Someone has to finish the loop: offlining the last live
            # worker is deferred (the event is dropped, not queued).
            self._count("fault_offline_deferred_total")
            if self.dec.on:
                for tid in tids:
                    self.dec.emit(tid, t, "offline_deferred", cpu=ev.cpu)
            return
        self._offline.add(ev.cpu)
        self._span_open("offline", (ev.cpu,), t, cpu=ev.cpu)
        for tid in tids:
            block = self._inflight.get(tid)
            if block is not None:
                self._accrue(block, t)
                self._preempt(block, t, self._completed_iters(block),
                              reason="offline")
            self._parked.add(tid)
            self._lost.add(tid)
            self._set_finish(tid, t)
            if self.dec.on:
                self.dec.emit(tid, t, "offline", cpu=ev.cpu)
            self.scheduler.on_worker_lost(tid, t)

    def _fire_online(self, ev: CoreOnlineEvent) -> None:
        t = self.sim.now
        self._count("fault_events_total@online")
        if ev.cpu not in self._offline:
            return
        self._offline.discard(ev.cpu)
        self._span_close("offline", (ev.cpu,), t)
        for tid in self._tids_on.get(ev.cpu, ()):
            if tid in self._retired or tid not in self._parked:
                continue
            self._parked.discard(tid)
            if self.dec.on:
                self.dec.emit(tid, t, "online", cpu=ev.cpu)
            if tid in self._lost:
                self._lost.discard(tid)
                self.scheduler.on_worker_back(tid, t)
            if tid in self._woke:
                self._restart(tid, t)
            # else: the worker's initial wake event is still pending and
            # will start its dispatch loop (the core is back by then).

    def _fire_stall(self, ev: WorkerStallEvent) -> None:
        t = self.sim.now
        self._count("fault_events_total@stall")
        if ev.tid >= self._nt:
            return
        self._pending_stall[ev.tid] = (
            self._pending_stall.get(ev.tid, 0.0) + ev.seconds
        )
        if self.dec.on:
            self.dec.emit(ev.tid, t, "stall_fired", seconds=ev.seconds)

    def _fire_spike_begin(self, ev: OverheadSpikeEvent) -> None:
        t = self.sim.now
        self._count("fault_events_total@spike")
        self._active_spikes.append(ev.factor)
        self._span_open("spike", (ev.factor,), t, factor=ev.factor)
        if self.dec.on:
            self.dec.emit(-1, t, "spike_begin", factor=ev.factor)

    def _fire_spike_end(self, ev: OverheadSpikeEvent) -> None:
        t = self.sim.now
        if ev.factor in self._active_spikes:
            self._active_spikes.remove(ev.factor)
        self._span_close("spike", (ev.factor,), t)
        if self.dec.on:
            self.dec.emit(-1, t, "spike_end", factor=ev.factor)
