"""OpenMP guided scheduling: dynamic with exponentially decreasing chunks.

The paper evaluated guided and found it clearly inferior to both static
and dynamic on AMPs (+44% / +65% mean completion time respectively,
Sec. 5): the large early chunks are handed out in pool-arrival order, so
a small-core thread can grab a huge chunk at the start of the loop and
become the straggler no other thread can help.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.sched.base import LoopScheduler, ScheduleSpec


class GuidedScheduler(LoopScheduler):
    """Removal size ``max(ceil(remaining / NT), chunk)``.

    Uses the libgomp formulation: each grab takes a 1/NT share of whatever
    is left, floored at the configured minimum chunk.
    """

    def __init__(self, ctx: LoopContext, chunk: int) -> None:
        super().__init__(ctx)
        self.chunk = chunk

    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        ws = self.ctx.workshare
        with self.ctx.lock:
            remaining = ws.remaining
            if remaining <= 0:
                return None
            size = max(math.ceil(remaining / self.ctx.n_threads), self.chunk)
        return ws.take(size)


@dataclass(frozen=True)
class GuidedSpec(ScheduleSpec):
    """``schedule(guided)`` / ``schedule(guided, chunk)``.

    Attributes:
        chunk: minimum removal size; the OpenMP default is 1.
    """

    chunk: int = 1

    def __post_init__(self) -> None:
        if self.chunk <= 0:
            raise ConfigError(f"guided chunk must be positive, got {self.chunk}")

    @property
    def name(self) -> str:
        return f"guided,{self.chunk}"

    def create(self, ctx: LoopContext) -> GuidedScheduler:
        return GuidedScheduler(ctx, self.chunk)
