"""Machinery shared by the three AID scheduling variants.

All AID methods start with a *sampling phase*: each worker thread runs
one chunk of iterations while the runtime timestamps it, and the loop's
speedup factor (SF) per core type is approximated as

    SF_j = (mean sampling time on the slowest type) /
           (mean sampling time on type j)

maintained scalably with one atomic time-sum counter per core type plus
an atomic completed-threads counter (paper Sec. 4.2, footnote 2). From
the SF the target distribution follows: with N_j threads on type j and
NI iterations to distribute,

    k = NI / sum_j (N_j * SF_j)

and a thread on type j should execute ``SF_j * k`` iterations in total
(``k`` on the slowest type, since SF_0 = 1). This is the paper's NC-type
generalization; for two types it reduces to ``k = NI / (N_B*SF + N_S)``.
"""

from __future__ import annotations

import threading

from repro.errors import SchedulerError
from repro.obs.decisions import DecisionEmitter, sf_as_json
from repro.runtime.atomics import AtomicCounter, AtomicFloat
from repro.runtime.context import LoopContext

#: Per-thread scheduler states (paper Figs. 3 and 5).
START = "START"
SAMPLING = "SAMPLING"
SAMPLING_WAIT = "SAMPLING_WAIT"
AID = "AID"
AID_WAIT = "AID_WAIT"
DRAIN = "DRAIN"
DONE = "DONE"


class SamplingState:
    """Lock-free sampling bookkeeping shared by a team.

    One time-sum accumulator per core type plus a completion counter;
    exactly the counters footnote 2 of the paper describes.
    """

    def __init__(
        self, n_types: int, lock: threading.Lock | None = None
    ) -> None:
        self.time_sums = [AtomicFloat(0.0, lock) for _ in range(n_types)]
        self.sample_counts = [AtomicCounter(0, lock) for _ in range(n_types)]
        self.completed = AtomicCounter(0, lock)

    def record(self, type_index: int, duration: float) -> int:
        """Log one thread's sampling-phase duration.

        Returns the number of threads that have completed sampling after
        this record (the caller compares it against the team size to
        detect "I am the last sampler").
        """
        if duration < 0.0:
            raise SchedulerError(f"negative sampling duration {duration!r}")
        self.time_sums[type_index].add(duration)
        self.sample_counts[type_index].add_fetch(1)
        return self.completed.add_fetch(1)

    def mean_times(self) -> list[float]:
        """Mean sampling duration per core type (0.0 where unsampled)."""
        out = []
        for s, c in zip(self.time_sums, self.sample_counts):
            n = c.value
            out.append(s.value / n if n else 0.0)
        return out

    def sf_per_type(self) -> dict[int, float]:
        """Estimated SF per core type, relative to the slowest type.

        Types with no samples, or degenerate zero timings, fall back to
        SF = 1 (no asymmetry information — distribute evenly).
        """
        means = self.mean_times()
        base = means[0]
        sf: dict[int, float] = {}
        for j, m in enumerate(means):
            if base > 0.0 and m > 0.0:
                sf[j] = base / m
            else:
                sf[j] = 1.0
        sf[0] = 1.0
        return sf


def decision_emitter(ctx: LoopContext, scheduler_name: str) -> DecisionEmitter:
    """Build the decision-log emitter every AID variant installs.

    The emitter binds the loop and scheduler names once; the per-decision
    hot path is a single ``emitter.on`` check when observability is off.
    When the context carries a conformance recorder (``ctx.check``), the
    emitter is a tee that always writes the check log and additionally
    forwards to observability when that is enabled — the oracle's view of
    the decision stream never depends on obs configuration.
    """
    check = getattr(ctx, "check", None)
    if check is not None:
        return check.emitter(ctx.loop_name, scheduler_name, ctx.obs)
    return DecisionEmitter(ctx.obs, ctx.loop_name, scheduler_name)


def set_state(sched, tid: int, state: str) -> None:
    """Transition thread ``tid``'s scheduler state, mirroring it into the
    conformance recorder when one is attached.

    All AID variants route their per-thread state writes through here so
    the oracle checks the *actual* state-machine path (paper Figs. 3/5)
    rather than one inferred from dispatch patterns.
    """
    sched.state[tid] = state
    check = getattr(sched.ctx, "check", None)
    if check is not None:
        check.on_state(tid, state, getattr(sched, "scheduler_label", "?"))


def emit_sf_publication(
    dec: DecisionEmitter,
    tid: int,
    now: float,
    event: str,
    sf: dict[int, float],
    sampling: SamplingState | None = None,
    **fields: object,
) -> None:
    """Log the moment a scheduler publishes an SF-derived distribution.

    This is the record that makes Fig. 2 (per-loop SF profiles) and the
    Fig. 9c convergence series reproducible from one run artifact: the
    sampled per-type mean times, the SF estimate derived from them, and
    whatever distribution parameters the variant attaches (``targets``,
    ``ratio``, ``mode``...).
    """
    if dec.on:
        dec.emit(
            tid,
            now,
            event,
            sf=sf_as_json(sf),
            mean_times=None if sampling is None else sampling.mean_times(),
            **fields,
        )


def offline_sf_table(ctx: LoopContext) -> dict[int, float]:
    """The offline SF table for this loop, normalized so type 0 is 1."""
    sf = {j: ctx.offline_sf_for_type(j) for j in range(ctx.n_types)}
    base = sf[0]
    if base <= 0.0:
        raise SchedulerError("offline SF for the slowest type must be > 0")
    return {j: v / base for j, v in sf.items()}


def aid_targets(
    n_iterations: int,
    sf_per_type: dict[int, float],
    type_counts: tuple[int, ...],
) -> list[int]:
    """Per-core-type target iteration totals under AID distribution.

    Computes ``k = NI / sum_j N_j*SF_j`` and rounds each ``SF_j * k`` to
    the nearest integer. Rounding residue (at most a handful of
    iterations) is left in the pool; the drain phase mops it up.

    Returns:
        ``targets[j]`` — iterations *each* thread on type j should
        execute in total.
    """
    denom = sum(
        type_counts[j] * sf_per_type.get(j, 1.0) for j in range(len(type_counts))
    )
    if denom <= 0.0:
        raise SchedulerError("AID target computation with no threads")
    k = n_iterations / denom
    return [
        int(round(sf_per_type.get(j, 1.0) * k)) for j in range(len(type_counts))
    ]
