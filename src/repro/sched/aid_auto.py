"""AID-auto: per-loop selection between the AID variants (extension).

The paper's conclusions sketch this as future work: "further benefits
can be obtained on AMPs by applying AID-static or AID-hybrid to loops
where iterations have the same amount of work, and AID-dynamic to the
remaining loops", ideally decided automatically. AID-auto implements the
decision *inside the sampling phase the AID methods already run*:

* every thread samples one minor chunk, timed as usual;
* besides the across-type means (the SF), the *within-type* coefficient
  of variation of the sampled durations is computed — threads on
  identical cores timing identical-cost iterations differ only by cost
  irregularity, so the within-type CV is a core-speed-independent
  regularity signal;
* regular loops (CV below a threshold) get the AID-hybrid treatment: a
  one-shot asymmetric distribution of most iterations plus a small
  dynamic tail;
* irregular loops are handed to a full AID-dynamic phase engine, seeded
  with the already-sampled SF (no second sampling phase).

The result is one schedule string ("aid_auto") that tracks the better of
AID-hybrid/AID-dynamic per loop without user annotations — exactly the
deployment story the paper's future work asks for.

Known limitation: the probe measures *local* regularity at the loop's
start. A loop whose cost drifts globally but is smooth locally (the
particlefilter ramp) classifies as regular and inherits the one-shot
path's weakness there — the reason the paper points to compile-time
loop analysis [44] as the complementary signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.sched import aid_common as ac
from repro.sched.aid_dynamic import AidDynamicScheduler
from repro.sched.base import LoopScheduler, ScheduleSpec

#: Per-thread states before the mode decision.
MODE_PENDING = "MODE_PENDING"


class AidAutoScheduler(LoopScheduler):
    """Sampling-driven selection between one-shot and phased AID.

    Args:
        ctx: loop context.
        minor_chunk: sampling/wait/tail chunk (the paper's ``m``).
        major_chunk: Major chunk for the dynamic path (the paper's ``M``).
        cv_threshold: within-type coefficient-of-variation boundary
            between "regular" (one-shot path) and "irregular" (phased
            path) loops.
        static_percentage: share of NI distributed one-shot on the
            regular path (the AID-hybrid percentage).
        adapt_on_faults: react to ``on_rates_changed`` notifications
            from the fault-injection engine by invalidating the sampled
            SF and re-entering the sampling phase (a *resample epoch*)
            when effective core speeds moved past
            ``resample_threshold``. Without faults this is dead code —
            the hook is never called.
        resample_threshold: minimum relative change in any core's speed
            multiplier (vs. the multipliers in force when the SF was
            sampled) that triggers a resample.
    """

    #: Name stamped on decision-log records.
    scheduler_label = "aid_auto"

    def __init__(
        self,
        ctx: LoopContext,
        minor_chunk: int = 1,
        major_chunk: int = 5,
        cv_threshold: float = 0.22,
        static_percentage: float = 85.0,
        adapt_on_faults: bool = True,
        resample_threshold: float = 0.25,
    ) -> None:
        super().__init__(ctx)
        if minor_chunk <= 0:
            raise ConfigError("minor chunk must be positive")
        if major_chunk < minor_chunk:
            raise ConfigError("Major chunk must be >= minor chunk")
        if cv_threshold < 0:
            raise ConfigError("cv threshold must be >= 0")
        if not 0.0 < static_percentage <= 100.0:
            raise ConfigError("static percentage must be in (0, 100]")
        self.m = minor_chunk
        self.M = major_chunk
        self.cv_threshold = cv_threshold
        self.static_fraction = static_percentage / 100.0
        nt = ctx.n_threads
        self.state = [ac.START] * nt
        self.delta = [0] * nt
        self.assign_time = [0.0] * nt
        self._timing = [False] * nt
        self.samples: list[list[float]] = [[] for _ in range(ctx.n_types)]
        self.completed = 0
        self.sf: dict[int, float] | None = None
        self.measured_cv: float | None = None
        #: Chosen mode: None until sampling completes, then "static"
        #: (one-shot + tail) or "dynamic" (delegated phase engine).
        self.mode: str | None = None
        self.targets: list[int] | None = None
        self._inner: AidDynamicScheduler | None = None
        self.dec = ac.decision_emitter(ctx, self.scheduler_label)
        # -- fault adaptation (inert without an injection engine) ---------
        self.adapt_on_faults = adapt_on_faults
        self.resample_threshold = resample_threshold
        #: Resample epoch: 0 for the initial sampling phase, +1 per
        #: fault-triggered re-entry. Decision records carry the epoch
        #: only when non-zero, so fault-free logs are unchanged.
        self.epoch = 0
        self._epoch_expected = nt
        #: Sampling chunks re-taken after a fault loss, per thread.
        self._retakes = [0] * nt
        self._lost: set[int] = set()
        self._mult_now: dict[int, float] = {}
        self._mult_at_decide: dict[int, float] | None = None

    # -- introspection -------------------------------------------------------

    def estimated_sf(self) -> dict[int, float] | None:
        return self.sf

    def note_execution_start(self, tid: int, t: float) -> None:
        if self._timing[tid]:
            self.assign_time[tid] = t
            self._timing[tid] = False
        if self._inner is not None:
            self._inner.note_execution_start(tid, t)

    # -- the GOMP_loop_next analogue --------------------------------------------

    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        with self.ctx.lock:
            return self._next_locked(tid, now)

    def _next_locked(self, tid: int, now: float) -> tuple[int, int] | None:
        if self.mode == "dynamic":
            assert self._inner is not None
            return self._inner._next_locked(tid, now)

        ws = self.ctx.workshare
        state = self.state[tid]

        if state == ac.START:
            got = ws.take(self.m)
            if got is None:
                ac.set_state(self, tid, ac.DONE)
                return None
            ac.set_state(self, tid, ac.SAMPLING)
            self.assign_time[tid] = now  # refined by note_execution_start
            self._timing[tid] = True
            self.ctx.charge_timestamp(tid)
            self.delta[tid] += got[1] - got[0]
            if self.dec.on:
                self.dec.emit(
                    tid, now, "sample_start",
                    chunk_target=self.m, range=list(got),
                    **self._epoch_fields(),
                    **self._retake_fields(tid),
                )
            return got

        if state == ac.SAMPLING:
            self.ctx.charge_timestamp(tid)
            duration = now - self.assign_time[tid]
            self.samples[self.ctx.type_of(tid)].append(duration)
            self.completed += 1
            if self.dec.on:
                self.dec.emit(
                    tid, now, "sample_complete",
                    duration=duration, completed=self.completed,
                    mean_times=[
                        sum(s) / len(s) if s else 0.0 for s in self.samples
                    ],
                    **self._epoch_fields(),
                    **self._retake_fields(tid),
                )
            if self.completed >= self._epoch_expected and self.mode is None:
                self._decide(tid, now)
                if self.mode == "dynamic":
                    assert self._inner is not None
                    return self._inner._next_locked(tid, now)
            if self.mode == "static":
                return self._enter_one_shot(tid, now)
            return self._wait_steal(tid, now)

        if state == ac.SAMPLING_WAIT:
            if self.mode == "static":
                return self._enter_one_shot(tid, now)
            return self._wait_steal(tid, now)

        if state in (ac.AID, ac.DRAIN):
            ac.set_state(self, tid, ac.DRAIN)
            got = ws.take(self.m)
            if got is None:
                ac.set_state(self, tid, ac.DONE)
                return None
            if self.dec.on:
                self.dec.emit(
                    tid, now, "drain_steal",
                    chunk_target=self.m, range=list(got),
                )
            return got

        return None  # DONE

    # -- the decision ------------------------------------------------------------

    def _decide(self, tid: int, now: float) -> None:
        """Classify the loop and commit to a mode (runs in exactly one
        thread: the last sampler)."""
        means = [
            sum(s) / len(s) if s else 0.0 for s in self.samples
        ]
        base = means[0]
        self.sf = {
            j: (base / m if base > 0 and m > 0 else 1.0)
            for j, m in enumerate(means)
        }
        self.sf[0] = 1.0
        self._mult_at_decide = dict(self._mult_now)
        self.measured_cv = max(
            (self._cv(s) for s in self.samples if len(s) >= 2), default=0.0
        )
        if self.measured_cv <= self.cv_threshold:
            self.mode = "static"
            if self.epoch:
                # Resample epochs distribute what is actually left in
                # the pool (including fault-requeued ranges), not the
                # original trip count most of which has already run.
                ni_aid = int(self.static_fraction * self.ctx.workshare.remaining)
            else:
                ni_aid = int(self.static_fraction * self.ctx.n_iterations)
            self.targets = ac.aid_targets(
                ni_aid, self.sf, self.ctx.type_counts()
            )
            if self.dec.on:
                self.dec.emit(
                    tid, now, "decide",
                    mode=self.mode, cv=self.measured_cv,
                    cv_threshold=self.cv_threshold,
                    sf=ac.sf_as_json(self.sf),
                    mean_times=means, targets=list(self.targets),
                    **self._epoch_fields(),
                )
        else:
            self.mode = "dynamic"
            inner = AidDynamicScheduler(
                self.ctx, minor_chunk=self.m, major_chunk=self.M
            )
            # Seed the phase engine with the sampling we already did:
            # every thread skips straight to the first AID phase.
            inner.sf = dict(self.sf)
            inner.R = [
                inner._clamp(self.sf[j]) for j in range(self.ctx.n_types)
            ]
            inner.phase = 1
            for t in range(self.ctx.n_threads):
                ac.set_state(
                    inner,
                    t,
                    ac.DONE if self.state[t] == ac.DONE else ac.SAMPLING_WAIT,
                )
            inner.active = sum(
                1 for t in range(self.ctx.n_threads) if inner.state[t] != ac.DONE
            )
            self._inner = inner
            if self.dec.on:
                self.dec.emit(
                    tid, now, "decide",
                    mode=self.mode, cv=self.measured_cv,
                    cv_threshold=self.cv_threshold,
                    sf=ac.sf_as_json(self.sf),
                    mean_times=means, ratio=list(inner.R),
                    **self._epoch_fields(),
                )

    # -- fault adaptation ---------------------------------------------------------

    def _epoch_fields(self) -> dict:
        """Epoch annotation for decision records — empty on epoch 0 so
        fault-free logs (and the goldens pinned on them) are unchanged."""
        return {"epoch": self.epoch} if self.epoch else {}

    def _retake_fields(self, tid: int) -> dict:
        r = self._retakes[tid]
        return {"retake": r} if r else {}

    def on_rates_changed(self, now: float, multipliers: dict[int, float]) -> None:
        self._mult_now = dict(multipliers)
        if self._inner is not None:
            self._inner.on_rates_changed(now, multipliers)
            return
        if not self.adapt_on_faults or self.mode != "static":
            return
        base = self._mult_at_decide or {}
        rel = 0.0
        for cpu in set(base) | set(multipliers):
            old = base.get(cpu, 1.0)
            new = multipliers.get(cpu, 1.0)
            if old > 0.0:
                rel = max(rel, abs(new - old) / old)
        if rel < self.resample_threshold:
            return
        if self.ctx.workshare.remaining <= 0:
            return
        self._resample(now, multipliers)

    def _resample(self, now: float, multipliers: dict[int, float]) -> None:
        """Invalidate the sampled SF and re-enter the sampling phase.

        Every thread that is still working is sent back to START (an
        internal reset: the conformance oracle's under-fault relaxation
        admits the re-entry edges); per-thread allotment credits are
        cleared so the new targets are honored from scratch.
        """
        nt = self.ctx.n_threads
        expected = sum(
            1
            for t in range(nt)
            if self.state[t] != ac.DONE and t not in self._lost
        )
        if expected == 0:
            return
        self.epoch += 1
        self._epoch_expected = expected
        for t in range(nt):
            if self.state[t] != ac.DONE:
                self.state[t] = ac.START
        self.samples = [[] for _ in range(self.ctx.n_types)]
        self.completed = 0
        self.sf = None
        self.mode = None
        self.targets = None
        self.measured_cv = None
        self.delta = [0] * nt
        self._mult_at_decide = dict(multipliers)
        if self.dec.on:
            self.dec.emit(
                -1, now, "resample",
                epoch=self.epoch, expected=expected,
                multipliers={str(c): m for c, m in sorted(multipliers.items())},
            )

    def on_worker_lost(self, tid: int, now: float) -> None:
        self._lost.add(tid)
        if self._inner is not None:
            self._inner.on_worker_lost(tid, now)
            return
        # A sampler that will never report back must not wedge the
        # decision: shrink the expected count and decide if it was the
        # last one outstanding.
        if self.mode is None and self.state[tid] in (ac.START, ac.SAMPLING):
            self._epoch_expected = max(0, self._epoch_expected - 1)
            if self.completed >= self._epoch_expected and self.completed > 0:
                self._decide(tid, now)
        # A sampler preempted mid-chunk must re-sample on revival rather
        # than record the parked interval as a sampling duration.
        if self.state[tid] == ac.SAMPLING:
            self.state[tid] = ac.START
            self._timing[tid] = False
            self._retakes[tid] += 1

    def on_worker_back(self, tid: int, now: float) -> None:
        self._lost.discard(tid)
        if self._inner is not None:
            self._inner.on_worker_back(tid, now)

    @staticmethod
    def _cv(samples: list[float]) -> float:
        mean = sum(samples) / len(samples)
        if mean <= 0.0:
            return 0.0
        var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        return math.sqrt(var) / mean

    # -- one-shot path -------------------------------------------------------------

    def _wait_steal(self, tid: int, now: float) -> tuple[int, int] | None:
        got = self.ctx.workshare.take(self.m)
        if got is None:
            ac.set_state(self, tid, ac.DONE)
            return None
        ac.set_state(self, tid, ac.SAMPLING_WAIT)
        self.delta[tid] += got[1] - got[0]
        if self.dec.on:
            self.dec.emit(
                tid, now, "wait_steal",
                chunk_target=self.m, range=list(got),
            )
        return got

    def _enter_one_shot(self, tid: int, now: float) -> tuple[int, int] | None:
        assert self.targets is not None
        target = self.targets[self.ctx.type_of(tid)]
        need = target - self.delta[tid]
        ac.set_state(self, tid, ac.AID)
        if need <= 0:
            return self._next_locked(tid, now)
        got = self.ctx.workshare.take(need)
        if got is None:
            ac.set_state(self, tid, ac.DONE)
            return None
        self.delta[tid] += got[1] - got[0]
        if self.dec.on:
            self.dec.emit(
                tid, now, "aid_allotment",
                target=target, chunk_target=need, range=list(got),
                sf=ac.sf_as_json(self.sf),
            )
        return got


@dataclass(frozen=True)
class AidAutoSpec(ScheduleSpec):
    """AID-auto configuration (extension scheduler, Sec. 6 future work).

    Attributes:
        minor_chunk: sampling/wait/tail chunk.
        major_chunk: Major chunk for the dynamic path.
        cv_threshold: regularity boundary (within-type CV of sampled
            durations).
        static_percentage: one-shot share on the regular path.
        adapt_on_faults: resample the SF when a fault-injection engine
            reports effective core speeds moved past
            ``resample_threshold`` (inert without fault injection).
        resample_threshold: relative speed-multiplier change that
            triggers a resample.
    """

    minor_chunk: int = 1
    major_chunk: int = 5
    cv_threshold: float = 0.22
    static_percentage: float = 85.0
    adapt_on_faults: bool = True
    resample_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.minor_chunk <= 0:
            raise ConfigError("minor chunk must be positive")
        if self.major_chunk < self.minor_chunk:
            raise ConfigError("Major chunk must be >= minor chunk")
        if self.cv_threshold < 0:
            raise ConfigError("cv threshold must be >= 0")
        if not 0.0 < self.static_percentage <= 100.0:
            raise ConfigError("static percentage must be in (0, 100]")

    @property
    def name(self) -> str:
        return f"aid_auto,{self.minor_chunk},{self.major_chunk}"

    @property
    def requires_bs_mapping(self) -> bool:
        return True

    def create(self, ctx: LoopContext) -> AidAutoScheduler:
        return AidAutoScheduler(
            ctx,
            minor_chunk=self.minor_chunk,
            major_chunk=self.major_chunk,
            cv_threshold=self.cv_threshold,
            static_percentage=self.static_percentage,
            adapt_on_faults=self.adapt_on_faults,
            resample_threshold=self.resample_threshold,
        )
