"""OpenMP dynamic scheduling: chunked self-scheduling from a shared pool."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.sched.base import LoopScheduler, PoolAdvancement, ScheduleSpec


class DynamicScheduler(LoopScheduler):
    """``gomp_iter_dynamic_next``: fetch-and-add removal of ``chunk``
    iterations until the pool drains.

    On an AMP, big-core threads finish their chunks sooner, come back to
    the pool more often, and therefore automatically execute more
    iterations — this is why the paper finds dynamic generally superior
    to static on AMPs. The price is one runtime dispatch per chunk.
    """

    def __init__(self, ctx: LoopContext, chunk: int) -> None:
        super().__init__(ctx)
        self.chunk = chunk

    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        return self.ctx.workshare.take(self.chunk)

    def advancement(self) -> PoolAdvancement:
        """Dynamic is the canonical pure pool drain: every dispatch is
        ``take(chunk)`` regardless of caller or time."""
        return PoolAdvancement(self.chunk)


@dataclass(frozen=True)
class DynamicSpec(ScheduleSpec):
    """``schedule(dynamic)`` / ``schedule(dynamic, chunk)``.

    Attributes:
        chunk: iterations removed per pool access; libgomp's default is 1.
    """

    chunk: int = 1

    def __post_init__(self) -> None:
        if self.chunk <= 0:
            raise ConfigError(f"dynamic chunk must be positive, got {self.chunk}")

    @property
    def name(self) -> str:
        return f"dynamic,{self.chunk}"

    def create(self, ctx: LoopContext) -> DynamicScheduler:
        return DynamicScheduler(ctx, self.chunk)
