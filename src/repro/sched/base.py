"""Scheduler protocol shared by all loop-scheduling policies."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.runtime.context import LoopContext


@dataclass(frozen=True)
class PoolAdvancement:
    """A scheduler's declaration that its dispatch loop is a pure
    fixed-chunk drain of the shared pool.

    Returning one from :meth:`LoopScheduler.advancement` asserts that,
    for the remainder of the loop, every ``next_range(tid, now)`` call
    is exactly ``ctx.workshare.take(chunk)`` — no per-call decision
    records, no timestamp charges, no internal state that depends on
    ``tid`` or ``now``. Batch-capable backends use the declaration to
    advance a thread through several chunks in closed form without
    calling the scheduler once per chunk; backends that cannot honour it
    simply keep calling :meth:`LoopScheduler.next_range`.
    """

    chunk: int


class LoopScheduler(abc.ABC):
    """Per-loop-execution scheduling state machine.

    The executor calls :meth:`next_range` from a worker thread whenever
    that thread needs more work — the analogue of libgomp's
    ``GOMP_loop_<sched>_next()``. Every call costs one runtime-dispatch
    overhead (the executor charges it); a policy that wants to be cheap
    must therefore hand out larger ranges, which is the entire design
    space the paper explores.

    Implementations must be safe to drive from real threads when all
    shared mutations happen under ``ctx.lock`` / the context's atomics.
    """

    def __init__(self, ctx: LoopContext) -> None:
        self.ctx = ctx

    @abc.abstractmethod
    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        """Assign the next iteration range to thread ``tid``.

        Args:
            tid: calling thread's ID within the team.
            now: current time in seconds (virtual in the simulator, wall
                clock in the real executor). AID policies use successive
                ``now`` values to time sampling phases.

        Returns:
            A half-open iteration range ``(lo, hi)``, or ``None`` when the
            thread is done with this loop.
        """

    def note_execution_start(self, tid: int, t: float) -> None:
        """Called by the executor when thread ``tid`` actually starts
        executing its just-assigned range (i.e. after dispatch overhead
        and pool-queueing).

        The AID sampling phases bracket the *chunk execution* with
        timestamps (paper Sec. 4.2), so their duration measurements must
        start here, not at the dispatch call — otherwise contention on
        the work-share line (similar in absolute time on every core)
        would systematically flatten the estimated SF.
        """

    # -- fault-recovery hooks (overridden by adaptive policies) -------------
    #
    # The fault-injection engines (repro.faults.engine for the simulator,
    # the watchdog in repro.exec_real.team) drive these. The defaults
    # make every policy minimally fault-correct: reclaimed iterations go
    # back to the shared pool, and losing/regaining a worker changes
    # nothing a pool-driven policy needs to know about.

    def reclaim(self, tid: int, lo: int, hi: int) -> None:
        """Return ``[lo, hi)`` — the unfinished tail of a chunk assigned
        to ``tid`` — to this policy's distribution authority.

        Called when a fault preempts the chunk (core offlined, throttle
        preemption) or the watchdog declares its owner stalled. Policies
        that assign work outside the shared pool (e.g. AID-steal's
        per-thread partitions) override this to route the range where
        their serving paths will actually find it.
        """
        self.ctx.workshare.requeue(lo, hi)

    def on_worker_lost(self, tid: int, now: float) -> None:
        """Worker ``tid`` stopped taking work at ``now`` (core offlined)."""

    def on_worker_back(self, tid: int, now: float) -> None:
        """Worker ``tid`` resumed taking work at ``now``."""

    def on_rates_changed(self, now: float, multipliers: dict[int, float]) -> None:
        """Effective per-CPU speed multipliers changed at ``now``.

        ``multipliers`` maps CPU index to the product of active throttle
        factors (1.0 = nominal). Adaptive policies may invalidate cached
        SF estimates here; the default ignores the signal.
        """

    # -- optional introspection (overridden by AID policies) ----------------

    def advancement(self) -> PoolAdvancement | None:
        """Chunk-batch advancement declaration for batching backends.

        ``None`` (the default) means the policy is stateful: a backend
        must step it one :meth:`next_range` call at a time. Policies
        whose dispatch is a pure ``workshare.take(chunk)`` return a
        :class:`PoolAdvancement` so the vectorized backend can integrate
        whole chunk batches in closed form.
        """
        return None

    def estimated_sf(self) -> dict[int, float] | None:
        """Per-core-type SF this policy estimated online, if any.

        Keys are core-type indices; entry 0 is 1.0 by construction.
        Non-sampling policies return ``None``.
        """
        return None


@dataclass(frozen=True)
class ScheduleSpec(abc.ABC):
    """Immutable configuration of a scheduling policy.

    A spec is shared across loops and runs; :meth:`create` builds the
    mutable per-loop state machine.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Canonical name, e.g. ``"dynamic,4"`` or ``"aid_hybrid,80"``."""

    @abc.abstractmethod
    def create(self, ctx: LoopContext) -> LoopScheduler:
        """Build a fresh scheduler for one loop execution."""

    @property
    def needs_offline_sf(self) -> bool:
        """True when :meth:`create` requires ``ctx.offline_sf``."""
        return False

    @property
    def requires_bs_mapping(self) -> bool:
        """True for AID policies, which assume low TIDs sit on big cores."""
        return False
