"""OpenMP static scheduling: even upfront distribution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.sched.base import LoopScheduler, ScheduleSpec


def static_block(n_iterations: int, n_threads: int, tid: int) -> tuple[int, int]:
    """The contiguous block thread ``tid`` owns under block-static
    scheduling (no chunk clause).

    Matches libgomp: the first ``n % NT`` threads get ``ceil(n/NT)``
    iterations, the rest get ``floor(n/NT)``.
    """
    q, r = divmod(n_iterations, n_threads)
    if tid < r:
        lo = tid * (q + 1)
        return (lo, lo + q + 1)
    lo = r * (q + 1) + (tid - r) * q
    return (lo, lo + q)


class StaticScheduler(LoopScheduler):
    """Each thread receives its whole block on the first call.

    With a chunk clause (``schedule(static, c)``) iterations are instead
    dealt round-robin in chunks of ``c`` — thread t owns chunks
    ``t, t+NT, t+2*NT, ...`` — and each call returns the thread's next
    owned chunk. Either way the assignment is fully determined upfront;
    no shared pool is touched.
    """

    def __init__(self, ctx: LoopContext, chunk: int | None = None) -> None:
        super().__init__(ctx)
        self.chunk = chunk
        self._block_done = [False] * ctx.n_threads
        self._next_chunk_index = [tid for tid in range(ctx.n_threads)]

    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        n = self.ctx.n_iterations
        nt = self.ctx.n_threads
        if self.chunk is None:
            if self._block_done[tid]:
                return None
            self._block_done[tid] = True
            lo, hi = static_block(n, nt, tid)
            return (lo, hi) if hi > lo else None
        # Round-robin chunked static.
        idx = self._next_chunk_index[tid]
        lo = idx * self.chunk
        if lo >= n:
            return None
        self._next_chunk_index[tid] = idx + nt
        return (lo, min(lo + self.chunk, n))


@dataclass(frozen=True)
class StaticSpec(ScheduleSpec):
    """``schedule(static)`` / ``schedule(static, chunk)``.

    Attributes:
        chunk: ``None`` for the block distribution (the OpenMP default);
            a positive integer for round-robin chunks.
    """

    chunk: int | None = None

    def __post_init__(self) -> None:
        if self.chunk is not None and self.chunk <= 0:
            raise ConfigError(f"static chunk must be positive, got {self.chunk}")

    @property
    def name(self) -> str:
        return "static" if self.chunk is None else f"static,{self.chunk}"

    def create(self, ctx: LoopContext) -> StaticScheduler:
        return StaticScheduler(ctx, self.chunk)
