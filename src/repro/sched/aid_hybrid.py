"""AID-hybrid: AID-static on a fraction of the loop, dynamic on the tail.

AID-static relies on the sampled SF being representative of the whole
loop; when iteration costs drift (the paper's EP trace, Fig. 4a), the
one-shot distribution leaves residual imbalance. AID-hybrid distributes
only ``percentage``% of NI asymmetrically and schedules the remaining
iterations with plain dynamic, letting early finishers absorb the error
at the end of the loop (Fig. 4b) at the price of some extra dispatches.

The paper's sensitivity study (Sec. 5B) found 80% a safe default:
dynamic-friendly applications prefer ~60%, AID-static-friendly ones 90%+.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.sched.aid_static import AidStaticScheduler
from repro.sched.base import ScheduleSpec


class AidHybridScheduler(AidStaticScheduler):
    """AID-static state machine with scaled targets and a dynamic tail.

    Implementation-wise this *is* :class:`AidStaticScheduler` with
    ``aid_fraction < 1``: targets are computed over ``pct * NI``
    iterations, and the drain phase — which for AID-static only mops
    rounding residue — becomes a genuine dynamic schedule over the
    remaining ``(1 - pct) * NI`` iterations.
    """

    scheduler_label = "aid_hybrid"

    def __init__(
        self,
        ctx: LoopContext,
        percentage: float,
        sampling_chunk: int = 1,
        dynamic_chunk: int | None = None,
        use_offline_sf: bool = False,
    ) -> None:
        if not 0.0 < percentage <= 100.0:
            raise ConfigError(
                f"AID-hybrid percentage must be in (0, 100], got {percentage}"
            )
        super().__init__(
            ctx,
            sampling_chunk=sampling_chunk,
            use_offline_sf=use_offline_sf,
            aid_fraction=percentage / 100.0,
            tail_chunk=dynamic_chunk if dynamic_chunk is not None else ctx.default_chunk,
        )
        self.percentage = percentage


@dataclass(frozen=True)
class AidHybridSpec(ScheduleSpec):
    """AID-hybrid configuration.

    Attributes:
        percentage: share of NI distributed asymmetrically (paper: 80).
        sampling_chunk: sampling/wait-phase chunk (paper default: 1).
        dynamic_chunk: chunk for the dynamic tail; ``None`` uses the
            loop's default chunk (libgomp default: 1, matching the
            paper's "same default chunk as dynamic").
        use_offline_sf: feed offline SF tables instead of sampling.
    """

    percentage: float = 80.0
    sampling_chunk: int = 1
    dynamic_chunk: int | None = None
    use_offline_sf: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.percentage <= 100.0:
            raise ConfigError(
                f"AID-hybrid percentage must be in (0, 100], got {self.percentage}"
            )
        if self.sampling_chunk <= 0:
            raise ConfigError("sampling chunk must be positive")
        if self.dynamic_chunk is not None and self.dynamic_chunk <= 0:
            raise ConfigError("dynamic chunk must be positive")

    @property
    def name(self) -> str:
        pct = f"{self.percentage:g}"
        if self.use_offline_sf:
            return f"aid_hybrid,{pct}(offline-SF)"
        return f"aid_hybrid,{pct}"

    @property
    def needs_offline_sf(self) -> bool:
        return self.use_offline_sf

    @property
    def requires_bs_mapping(self) -> bool:
        return True

    def create(self, ctx: LoopContext) -> AidHybridScheduler:
        return AidHybridScheduler(
            ctx,
            percentage=self.percentage,
            sampling_chunk=self.sampling_chunk,
            dynamic_chunk=self.dynamic_chunk,
            use_offline_sf=self.use_offline_sf,
        )
