"""OMP_SCHEDULE-style parsing of schedule strings.

The paper activates its methods without touching application code: the
modified compiler lowers every clause-less loop to ``schedule(runtime)``
and the user picks the actual method through environment variables. This
module is that front end — a schedule string becomes a
:class:`~repro.sched.base.ScheduleSpec`:

    "static"             -> StaticSpec()
    "static,16"          -> StaticSpec(chunk=16)
    "dynamic"            -> DynamicSpec(chunk=1)
    "dynamic,4"          -> DynamicSpec(chunk=4)
    "guided,2"           -> GuidedSpec(chunk=2)
    "aid_static"         -> AidStaticSpec()
    "aid_static,2"       -> AidStaticSpec(sampling_chunk=2)
    "aid_hybrid"         -> AidHybridSpec(percentage=80)
    "aid_hybrid,60"      -> AidHybridSpec(percentage=60)
    "aid_dynamic"        -> AidDynamicSpec(minor_chunk=1, major_chunk=5)
    "aid_dynamic,2,20"   -> AidDynamicSpec(minor_chunk=2, major_chunk=20)
    "aid_auto"           -> AidAutoSpec()               (extension)
    "aid_auto,2,20"      -> AidAutoSpec(minor_chunk=2, major_chunk=20)
    "aid_steal"          -> AidStealSpec()              (extension)
    "aid_steal,16"       -> AidStealSpec(serve_chunk=16)
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sched.aid_auto import AidAutoSpec
from repro.sched.aid_dynamic import AidDynamicSpec
from repro.sched.aid_hybrid import AidHybridSpec
from repro.sched.aid_static import AidStaticSpec
from repro.sched.aid_steal import AidStealSpec
from repro.sched.base import ScheduleSpec
from repro.sched.dynamic import DynamicSpec
from repro.sched.guided import GuidedSpec
from repro.sched.static import StaticSpec


def available_schedules() -> tuple[str, ...]:
    """Names accepted by :func:`parse_schedule`."""
    return (
        "static",
        "dynamic",
        "guided",
        "aid_static",
        "aid_hybrid",
        "aid_dynamic",
        "aid_auto",
        "aid_steal",
    )


def _int_arg(kind: str, text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise ConfigError(f"{kind}: expected an integer, got {text!r}") from None
    return value


def _float_arg(kind: str, text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ConfigError(f"{kind}: expected a number, got {text!r}") from None
    return value


def parse_schedule(text: str) -> ScheduleSpec:
    """Parse an ``OMP_SCHEDULE``-style string into a schedule spec.

    Raises:
        ConfigError: unknown schedule name, wrong arity, or bad values.
    """
    parts = [p.strip() for p in text.strip().split(",")]
    if not parts or not parts[0]:
        raise ConfigError("empty schedule string")
    kind, args = parts[0].lower(), parts[1:]

    if kind == "static":
        if len(args) == 0:
            return StaticSpec()
        if len(args) == 1:
            return StaticSpec(chunk=_int_arg(kind, args[0]))
    elif kind == "dynamic":
        if len(args) == 0:
            return DynamicSpec()
        if len(args) == 1:
            return DynamicSpec(chunk=_int_arg(kind, args[0]))
    elif kind == "guided":
        if len(args) == 0:
            return GuidedSpec()
        if len(args) == 1:
            return GuidedSpec(chunk=_int_arg(kind, args[0]))
    elif kind == "aid_static":
        if len(args) == 0:
            return AidStaticSpec()
        if len(args) == 1:
            return AidStaticSpec(sampling_chunk=_int_arg(kind, args[0]))
    elif kind == "aid_hybrid":
        if len(args) == 0:
            return AidHybridSpec()
        if len(args) == 1:
            return AidHybridSpec(percentage=_float_arg(kind, args[0]))
        if len(args) == 2:
            return AidHybridSpec(
                percentage=_float_arg(kind, args[0]),
                dynamic_chunk=_int_arg(kind, args[1]),
            )
    elif kind == "aid_dynamic":
        if len(args) == 0:
            return AidDynamicSpec()
        if len(args) == 2:
            return AidDynamicSpec(
                minor_chunk=_int_arg(kind, args[0]),
                major_chunk=_int_arg(kind, args[1]),
            )
        if len(args) == 1:
            raise ConfigError(
                "aid_dynamic takes zero or two arguments: 'aid_dynamic[,m,M]'"
            )
    elif kind == "aid_steal":
        if len(args) == 0:
            return AidStealSpec()
        if len(args) == 1:
            return AidStealSpec(serve_chunk=_int_arg(kind, args[0]))
    elif kind == "aid_auto":
        if len(args) == 0:
            return AidAutoSpec()
        if len(args) == 2:
            return AidAutoSpec(
                minor_chunk=_int_arg(kind, args[0]),
                major_chunk=_int_arg(kind, args[1]),
            )
        if len(args) == 1:
            raise ConfigError(
                "aid_auto takes zero or two arguments: 'aid_auto[,m,M]'"
            )
    else:
        raise ConfigError(
            f"unknown schedule {kind!r}; valid: {', '.join(available_schedules())}"
        )
    raise ConfigError(f"wrong number of arguments for schedule {kind!r}: {text!r}")
