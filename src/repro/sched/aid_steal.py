"""AID-steal: asymmetric distribution + work stealing (extension).

The paper's Sec. 4.3 sketches this as the natural next step: "possibly
by combining our work-sharing version of AID, with work-stealing
techniques [4, 27]". AID-steal does exactly that:

* the sampling phase and the SF-proportional split are AID-static's —
  after sampling, the remaining iterations are partitioned into one
  contiguous *local range* per thread, sized ``SF_j * k``;
* each thread then serves itself from the front of its own range in
  ``serve_chunk``-sized pieces — local work needs no shared-pool atomics
  at all;
* a thread whose range runs dry *steals the back half* of the richest
  thread's remaining range (classic steal-half victim policy), so
  SF-estimation error or cost drift is repaired continuously instead of
  at a dynamic tail.

Compared to AID-hybrid, the repair mechanism is proportional (half of
whatever is left) rather than a fixed percentage chosen up front, and
contention concentrates on the (rare) steals instead of a per-chunk
shared pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.sched import aid_common as ac
from repro.sched.base import LoopScheduler, ScheduleSpec

#: Thread state once local ranges exist.
SERVING = "SERVING"


class AidStealScheduler(LoopScheduler):
    """AID-static's split feeding per-thread ranges with steal-half.

    Args:
        ctx: loop context.
        sampling_chunk: sampling/wait chunk (the AID-static default, 1).
        serve_chunk: iterations a thread takes from its own range per
            dispatch. Larger values mean fewer dispatches but coarser
            stealable leftovers.
        min_steal: do not bother stealing ranges smaller than this.
        use_offline_sf: skip sampling, split by the offline SF table.
    """

    #: Name stamped on decision-log records.
    scheduler_label = "aid_steal"

    def __init__(
        self,
        ctx: LoopContext,
        sampling_chunk: int = 1,
        serve_chunk: int = 8,
        min_steal: int = 2,
        use_offline_sf: bool = False,
    ) -> None:
        super().__init__(ctx)
        if sampling_chunk <= 0:
            raise ConfigError("sampling chunk must be positive")
        if serve_chunk <= 0:
            raise ConfigError("serve chunk must be positive")
        if min_steal <= 0:
            raise ConfigError("min_steal must be positive")
        self.sampling_chunk = sampling_chunk
        self.serve_chunk = serve_chunk
        self.min_steal = min_steal
        self.use_offline_sf = use_offline_sf
        nt = ctx.n_threads
        self.state = [ac.START] * nt
        self.delta = [0] * nt
        self.assign_time = [0.0] * nt
        self._timing = [False] * nt
        #: Sampling chunks re-taken after a fault loss, per thread.
        self._retakes = [0] * nt
        self.sampling = ac.SamplingState(ctx.n_types, ctx.make_lock())
        self.sf: dict[int, float] | None = None
        #: Per-thread local range [lo, hi); (0, 0) when empty.
        self.local: list[tuple[int, int]] | None = None
        self.steals = 0
        #: Set once any fault-recovery hook fires; enables the recovery
        #: serving paths (whole-range steals below min_steal, pool
        #: drain before retiring) that fault-free runs never take.
        self._faulted = False
        self.dec = ac.decision_emitter(ctx, self.scheduler_label)
        if use_offline_sf:
            # Partitioned at loop setup, before any thread runs.
            self._partition(ac.offline_sf_table(ctx), tid=-1, now=0.0)

    # -- introspection -------------------------------------------------------

    def estimated_sf(self) -> dict[int, float] | None:
        return None if self.use_offline_sf else self.sf

    def note_execution_start(self, tid: int, t: float) -> None:
        if self._timing[tid]:
            self.assign_time[tid] = t
            self._timing[tid] = False

    def _retake_fields(self, tid: int) -> dict:
        r = self._retakes[tid]
        return {"retake": r} if r else {}

    # -- setup -----------------------------------------------------------------

    def _partition(
        self, sf: dict[int, float], tid: int, now: float
    ) -> None:
        """Split everything left in the pool into per-thread ranges,
        proportional to the per-type SF (one pool access total)."""
        self.sf = sf
        got = self.ctx.workshare.take_all()
        lo, hi = got if got is not None else (0, 0)
        remaining = hi - lo
        weights = [
            sf.get(self.ctx.type_of(t), 1.0) for t in range(self.ctx.n_threads)
        ]
        total = sum(weights)
        self.local = []
        cursor = lo
        for t, w in enumerate(weights):
            if t == self.ctx.n_threads - 1:
                share = hi - cursor  # last thread absorbs rounding
            else:
                share = int(round(remaining * w / total))
                share = min(share, hi - cursor)
            self.local.append((cursor, cursor + share))
            cursor += share
        ac.emit_sf_publication(
            self.dec,
            tid,
            now,
            "partition",
            sf,
            sampling=None if self.use_offline_sf else self.sampling,
            ranges=[list(r) for r in self.local],
        )

    # -- the GOMP_loop_next analogue ------------------------------------------

    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        with self.ctx.lock:
            return self._next_locked(tid, now)

    def _next_locked(self, tid: int, now: float) -> tuple[int, int] | None:
        state = self.state[tid]

        if self.local is not None and state in (
            ac.START,
            SERVING,
            ac.SAMPLING_WAIT,
        ):
            return self._serve(tid, now)

        if state == ac.START:
            got = self.ctx.workshare.take(self.sampling_chunk)
            if got is None:
                ac.set_state(self, tid, ac.DONE)
                return None
            ac.set_state(self, tid, ac.SAMPLING)
            self.assign_time[tid] = now  # refined by note_execution_start
            self._timing[tid] = True
            self.ctx.charge_timestamp(tid)
            if self.dec.on:
                self.dec.emit(
                    tid, now, "sample_start",
                    chunk_target=self.sampling_chunk, range=list(got),
                    **self._retake_fields(tid),
                )
            return got

        if state == ac.SAMPLING:
            self.ctx.charge_timestamp(tid)
            duration = now - self.assign_time[tid]
            done = self.sampling.record(self.ctx.type_of(tid), duration)
            if self.dec.on:
                self.dec.emit(
                    tid, now, "sample_complete",
                    duration=duration, completed=done,
                    mean_times=self.sampling.mean_times(),
                    **self._retake_fields(tid),
                )
            if done == self.ctx.n_threads and self.local is None:
                self._partition(self.sampling.sf_per_type(), tid, now)
            if self.local is not None:
                return self._serve(tid, now)
            return self._wait_steal(tid, now)

        if state == ac.SAMPLING_WAIT:
            return self._wait_steal(tid, now)

        return None  # DONE

    def _wait_steal(self, tid: int, now: float) -> tuple[int, int] | None:
        got = self.ctx.workshare.take(self.sampling_chunk)
        if got is None:
            ac.set_state(self, tid, ac.DONE)
            return None
        ac.set_state(self, tid, ac.SAMPLING_WAIT)
        if self.dec.on:
            self.dec.emit(
                tid, now, "wait_steal",
                chunk_target=self.sampling_chunk, range=list(got),
            )
        return got

    # -- serving and stealing -----------------------------------------------------

    def _serve(self, tid: int, now: float) -> tuple[int, int] | None:
        assert self.local is not None
        ac.set_state(self, tid, SERVING)
        lo, hi = self.local[tid]
        if hi <= lo and not self._steal_into(tid, now):
            if self._faulted:
                # Fault recovery may have returned ranges to the shared
                # pool (e.g. a preempt that could not be merged into a
                # local range); drain them before retiring.
                got = self.ctx.workshare.take(self.serve_chunk)
                if got is not None:
                    if self.dec.on:
                        self.dec.emit(
                            tid, now, "reclaim_serve",
                            chunk_target=self.serve_chunk, range=list(got),
                        )
                    return got
            ac.set_state(self, tid, ac.DONE)
            return None
        lo, hi = self.local[tid]
        cut = min(hi, lo + self.serve_chunk)
        self.local[tid] = (cut, hi)
        return (lo, cut)

    def _steal_into(self, thief: int, now: float) -> bool:
        """Move the back half of the richest thread's range to the thief."""
        assert self.local is not None
        victim = -1
        best = 0
        for t, (lo, hi) in enumerate(self.local):
            if t != thief and hi - lo > best:
                best = hi - lo
                victim = t
        if victim < 0:
            return False
        if best < self.min_steal:
            if not self._faulted:
                return False
            # Under faults, leftovers below min_steal may belong to a
            # parked worker that will never serve them: steal the whole
            # range rather than strand it.
            mid = self.local[victim][0]
        else:
            lo, hi = self.local[victim]
            mid = lo + (hi - lo + 1) // 2  # thief takes the back half
        lo, hi = self.local[victim]
        self.local[victim] = (lo, mid)
        self.local[thief] = (mid, hi)
        self.steals += 1
        if self.dec.on:
            self.dec.emit(
                thief, now, "steal",
                victim=victim, range=[mid, hi], victim_left=[lo, mid],
                steals=self.steals,
            )
        return True

    # -- fault-recovery hooks -----------------------------------------------------

    def reclaim(self, tid: int, lo: int, hi: int) -> None:
        """Route a preempted chunk's tail where serving will find it.

        Post-partition, a preempted serve's tail is contiguous with the
        owner's local front (the serve came off that front), so it merges
        back into ``local[tid]`` and stays stealable. Anything else —
        pre-partition sampling chunks, non-contiguous tails — goes to the
        shared pool, which :meth:`_serve` drains before retiring.
        """
        self._faulted = True
        if self.local is not None:
            cur_lo, cur_hi = self.local[tid]
            if cur_lo == hi:
                self.local[tid] = (lo, cur_hi)
                return
            if cur_hi <= cur_lo:
                self.local[tid] = (lo, hi)
                return
        self.ctx.workshare.requeue(lo, hi)

    def on_worker_lost(self, tid: int, now: float) -> None:
        # The lost worker's local range stays in place: the whole-range
        # steal fallback lets survivors absorb it, however small.
        self._faulted = True
        # A sampler preempted mid-chunk must re-sample on revival rather
        # than record the parked interval as a sampling duration.
        if self.state[tid] == ac.SAMPLING:
            self.state[tid] = ac.START
            self._timing[tid] = False
            self._retakes[tid] += 1

    def on_worker_back(self, tid: int, now: float) -> None:
        self._faulted = True

    def on_rates_changed(self, now: float, multipliers: dict[int, float]) -> None:
        self._faulted = True


@dataclass(frozen=True)
class AidStealSpec(ScheduleSpec):
    """AID-steal configuration (extension scheduler, Sec. 4.3).

    Attributes:
        sampling_chunk: sampling/wait chunk.
        serve_chunk: local-serve granularity.
        min_steal: smallest range worth stealing.
        use_offline_sf: split by offline SF tables instead of sampling.
    """

    sampling_chunk: int = 1
    serve_chunk: int = 8
    min_steal: int = 2
    use_offline_sf: bool = False

    def __post_init__(self) -> None:
        if self.sampling_chunk <= 0:
            raise ConfigError("sampling chunk must be positive")
        if self.serve_chunk <= 0:
            raise ConfigError("serve chunk must be positive")
        if self.min_steal <= 0:
            raise ConfigError("min_steal must be positive")

    @property
    def name(self) -> str:
        base = f"aid_steal,{self.serve_chunk}"
        return base + ("(offline-SF)" if self.use_offline_sf else "")

    @property
    def needs_offline_sf(self) -> bool:
        return self.use_offline_sf

    @property
    def requires_bs_mapping(self) -> bool:
        return True

    def create(self, ctx: LoopContext) -> AidStealScheduler:
        return AidStealScheduler(
            ctx,
            sampling_chunk=self.sampling_chunk,
            serve_chunk=self.serve_chunk,
            min_steal=self.min_steal,
            use_offline_sf=self.use_offline_sf,
        )
