"""Loop-scheduling policies: OpenMP's conventional methods plus AID.

Conventional (OpenMP 4.5):

* :class:`StaticSpec` — even upfront split, no runtime interaction.
* :class:`DynamicSpec` — fetch-and-add chunk stealing from a shared pool.
* :class:`GuidedSpec` — dynamic with a decreasing chunk.

The paper's contribution (Asymmetric Iteration Distribution):

* :class:`AidStaticSpec` — sampling phase estimates the loop's big-to-
  small speedup factor (SF) online, then hands each thread one final
  allotment proportional to its core's relative speed (Fig. 3).
* :class:`AidHybridSpec` — AID-static on a percentage of the iterations,
  plain dynamic on the tail to mop up residual imbalance.
* :class:`AidDynamicSpec` — repeated AID phases with a continuously
  resmoothed progress ratio R and a dynamic endgame (Fig. 5).

Extension (the paper's Sec. 6 future work):

* :class:`AidAutoSpec` — classifies each loop during the sampling phase
  (within-type cost variation) and picks the one-shot or phased strategy
  per loop automatically.
* :class:`AidStealSpec` — AID-static's SF-proportional split feeding
  per-thread local ranges, repaired by steal-half work stealing (the
  Sec. 4.3 work-stealing combination).

Every policy implements the same two-level protocol: an immutable
:class:`ScheduleSpec` describes configuration, and its :meth:`create`
builds a fresh :class:`LoopScheduler` per loop execution whose
``next_range(tid, now)`` is the analogue of ``GOMP_loop_*_next``.
"""

from repro.sched.base import LoopScheduler, ScheduleSpec
from repro.sched.static import StaticScheduler, StaticSpec
from repro.sched.dynamic import DynamicScheduler, DynamicSpec
from repro.sched.guided import GuidedScheduler, GuidedSpec
from repro.sched.aid_static import AidStaticScheduler, AidStaticSpec
from repro.sched.aid_hybrid import AidHybridScheduler, AidHybridSpec
from repro.sched.aid_auto import AidAutoScheduler, AidAutoSpec
from repro.sched.aid_dynamic import AidDynamicScheduler, AidDynamicSpec
from repro.sched.aid_steal import AidStealScheduler, AidStealSpec
from repro.sched.registry import available_schedules, parse_schedule

__all__ = [
    "ScheduleSpec",
    "LoopScheduler",
    "StaticSpec",
    "StaticScheduler",
    "DynamicSpec",
    "DynamicScheduler",
    "GuidedSpec",
    "GuidedScheduler",
    "AidStaticSpec",
    "AidStaticScheduler",
    "AidHybridSpec",
    "AidHybridScheduler",
    "AidDynamicSpec",
    "AidDynamicScheduler",
    "AidAutoSpec",
    "AidAutoScheduler",
    "AidStealSpec",
    "AidStealScheduler",
    "parse_schedule",
    "available_schedules",
]
