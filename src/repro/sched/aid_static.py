"""AID-static: asymmetric one-shot distribution driven by online sampling.

The paper's Fig. 3 state machine, ported structurally:

* ``START -> SAMPLING``: the thread's first pool access removes the
  sampling chunk; two timestamps bracket its execution.
* ``SAMPLING -> AID`` (last thread to finish sampling): computes SF and
  ``k`` from the shared time sums and publishes them.
* ``SAMPLING -> SAMPLING_WAIT`` (everyone else): keep stealing
  chunk-sized pieces until SF/k are published.
* ``* -> AID``: one final allotment of ``target(type) - delta_i``
  iterations, where ``delta_i`` is what thread *i* already executed.

After its AID allotment a thread drains any rounding residue left in the
pool in chunk-sized steals and then leaves the loop. The implementation
is lock-free in the same sense as the paper's: the pool and the sampling
counters are atomics; SF/k are computed by exactly one thread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.sched import aid_common as ac
from repro.sched.base import LoopScheduler, ScheduleSpec


class AidStaticScheduler(LoopScheduler):
    """Per-loop state machine for AID-static.

    Args:
        ctx: loop context.
        sampling_chunk: iterations per sampling/wait steal (paper uses 1).
        use_offline_sf: skip sampling and distribute straight from
            ``ctx.offline_sf`` — the AID-static(offline-SF) variant used
            in the Fig. 9 accuracy study.
        aid_fraction: fraction of NI distributed asymmetrically (1.0 for
            AID-static; AID-hybrid subclasses with < 1.0).
        tail_chunk: chunk for post-AID stealing (rounding residue for
            AID-static, the dynamic tail for AID-hybrid).
    """

    #: Name stamped on decision-log records (subclasses override).
    scheduler_label = "aid_static"

    def __init__(
        self,
        ctx: LoopContext,
        sampling_chunk: int = 1,
        use_offline_sf: bool = False,
        aid_fraction: float = 1.0,
        tail_chunk: int | None = None,
    ) -> None:
        super().__init__(ctx)
        if sampling_chunk <= 0:
            raise ConfigError("sampling chunk must be positive")
        if not 0.0 < aid_fraction <= 1.0:
            raise ConfigError("aid_fraction must be in (0, 1]")
        self.sampling_chunk = sampling_chunk
        self.use_offline_sf = use_offline_sf
        self.aid_fraction = aid_fraction
        self.tail_chunk = tail_chunk if tail_chunk is not None else sampling_chunk
        nt = ctx.n_threads
        self.state = [ac.START] * nt
        self.delta = [0] * nt  # iterations executed before the AID allotment
        self.assign_time = [0.0] * nt
        self._timing = [False] * nt
        #: Sampling chunks re-taken after a fault loss, per thread.
        self._retakes = [0] * nt
        self.sampling = ac.SamplingState(ctx.n_types, ctx.make_lock())
        self.sf: dict[int, float] | None = None
        self.targets: list[int] | None = None
        self.dec = ac.decision_emitter(ctx, self.scheduler_label)
        if use_offline_sf:
            # Published at loop setup, before any thread runs: tid -1, t 0.
            self._publish_targets(ac.offline_sf_table(ctx), tid=-1, now=0.0)

    # -- shared-state helpers ------------------------------------------------

    def _publish_targets(
        self, sf: dict[int, float], tid: int, now: float
    ) -> None:
        """Compute and publish per-type targets (done by one thread)."""
        ni_aid = int(self.aid_fraction * self.ctx.n_iterations)
        self.targets = ac.aid_targets(ni_aid, sf, self.ctx.type_counts())
        self.sf = sf
        ac.emit_sf_publication(
            self.dec,
            tid,
            now,
            "publish_targets",
            sf,
            sampling=None if self.use_offline_sf else self.sampling,
            targets=list(self.targets),
            aid_fraction=self.aid_fraction,
        )

    def estimated_sf(self) -> dict[int, float] | None:
        # Only report SFs actually *estimated* online; the offline-SF
        # variant distributes from supplied tables without sampling.
        return None if self.use_offline_sf else self.sf

    def note_execution_start(self, tid: int, t: float) -> None:
        if self._timing[tid]:
            self.assign_time[tid] = t
            self._timing[tid] = False

    def _retake_fields(self, tid: int) -> dict:
        r = self._retakes[tid]
        return {"retake": r} if r else {}

    # -- fault-recovery hooks --------------------------------------------------

    def on_worker_lost(self, tid: int, now: float) -> None:
        # A sampler preempted by a core-offline fault never finished its
        # chunk; its assign_time may even lie in the future (overhead-end
        # refinement). Rewind to START so a revival re-samples instead of
        # recording the parked interval as a sampling duration.
        if self.state[tid] == ac.SAMPLING:
            self.state[tid] = ac.START
            self._timing[tid] = False
            self._retakes[tid] += 1

    # -- the GOMP_loop_next analogue ------------------------------------------

    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        with self.ctx.lock:
            return self._next_locked(tid, now)

    def _next_locked(self, tid: int, now: float) -> tuple[int, int] | None:
        ws = self.ctx.workshare
        state = self.state[tid]

        if state == ac.START:
            if self.targets is not None:
                # Offline-SF variant: no sampling phase at all.
                return self._enter_aid(tid, now)
            got = ws.take(self.sampling_chunk)
            if got is None:
                ac.set_state(self, tid, ac.DONE)
                return None
            ac.set_state(self, tid, ac.SAMPLING)
            self.assign_time[tid] = now  # refined by note_execution_start
            self._timing[tid] = True
            self.ctx.charge_timestamp(tid)
            self.delta[tid] += got[1] - got[0]
            if self.dec.on:
                self.dec.emit(
                    tid, now, "sample_start",
                    chunk_target=self.sampling_chunk, range=list(got),
                    **self._retake_fields(tid),
                )
            return got

        if state == ac.SAMPLING:
            # The sampling chunk just completed: log its duration.
            self.ctx.charge_timestamp(tid)
            duration = now - self.assign_time[tid]
            done = self.sampling.record(self.ctx.type_of(tid), duration)
            if self.dec.on:
                self.dec.emit(
                    tid, now, "sample_complete",
                    duration=duration, completed=done,
                    mean_times=self.sampling.mean_times(),
                    **self._retake_fields(tid),
                )
            if done == self.ctx.n_threads and self.targets is None:
                # Last sampler computes SF and k (exactly one thread).
                self._publish_targets(self.sampling.sf_per_type(), tid, now)
            if self.targets is not None:
                return self._enter_aid(tid, now)
            return self._wait_steal(tid, now)

        if state == ac.SAMPLING_WAIT:
            if self.targets is not None:
                return self._enter_aid(tid, now)
            return self._wait_steal(tid, now)

        if state in (ac.AID, ac.DRAIN):
            # AID allotment (or a drain steal) completed; mop up residue.
            ac.set_state(self, tid, ac.DRAIN)
            got = ws.take(self.tail_chunk)
            if got is None:
                ac.set_state(self, tid, ac.DONE)
                return None
            if self.dec.on:
                self.dec.emit(
                    tid, now, "drain_steal",
                    chunk_target=self.tail_chunk, range=list(got),
                )
            return got

        return None  # DONE

    def _wait_steal(self, tid: int, now: float) -> tuple[int, int] | None:
        got = self.ctx.workshare.take(self.sampling_chunk)
        if got is None:
            ac.set_state(self, tid, ac.DONE)
            return None
        ac.set_state(self, tid, ac.SAMPLING_WAIT)
        self.delta[tid] += got[1] - got[0]
        if self.dec.on:
            self.dec.emit(
                tid, now, "wait_steal",
                chunk_target=self.sampling_chunk, range=list(got),
            )
        return got

    def _enter_aid(self, tid: int, now: float) -> tuple[int, int] | None:
        assert self.targets is not None
        target = self.targets[self.ctx.type_of(tid)]
        need = target - self.delta[tid]
        ac.set_state(self, tid, ac.AID)
        if need <= 0:
            # Already over target (e.g. many wait steals): go drain.
            return self._next_locked(tid, now)
        got = self.ctx.workshare.take(need)
        if got is None:
            ac.set_state(self, tid, ac.DONE)
            return None
        self.delta[tid] += got[1] - got[0]
        if self.dec.on:
            self.dec.emit(
                tid, now, "aid_allotment",
                target=target, chunk_target=need, range=list(got),
                sf=ac.sf_as_json(self.sf),
            )
        return got


@dataclass(frozen=True)
class AidStaticSpec(ScheduleSpec):
    """AID-static configuration.

    Attributes:
        sampling_chunk: sampling/wait-phase chunk (paper default: 1).
        use_offline_sf: build the AID-static(offline-SF) variant; loops
            must then carry offline SF tables (see
            :attr:`~repro.sched.base.ScheduleSpec.needs_offline_sf`).
    """

    sampling_chunk: int = 1
    use_offline_sf: bool = False

    def __post_init__(self) -> None:
        if self.sampling_chunk <= 0:
            raise ConfigError("sampling chunk must be positive")

    @property
    def name(self) -> str:
        base = "aid_static"
        if self.sampling_chunk != 1:
            base += f",{self.sampling_chunk}"
        return base + ("(offline-SF)" if self.use_offline_sf else "")

    @property
    def needs_offline_sf(self) -> bool:
        return self.use_offline_sf

    @property
    def requires_bs_mapping(self) -> bool:
        return True

    def create(self, ctx: LoopContext) -> AidStaticScheduler:
        return AidStaticScheduler(
            ctx,
            sampling_chunk=self.sampling_chunk,
            use_offline_sf=self.use_offline_sf,
        )
