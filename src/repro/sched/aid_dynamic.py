"""AID-dynamic: repeated asymmetric phases with a self-correcting ratio.

The paper's replacement for dynamic scheduling on AMPs (Fig. 5). Two
user chunks exist: minor ``m`` (sampling/wait steals, and the endgame)
and Major ``M >= m``. After the initial sampling phase — identical to
AID-static's — the loop proceeds in *AID phases*: per phase, each
small-core thread removes ``M`` iterations from the pool and each thread
on core type j removes ``R_j * M``, where ``R_j`` starts at the sampled
``SF_j`` and is resmoothed after every phase:

    R_j <- R_j * SM_j,   SM_j = mean small-thread phase time /
                                mean type-j thread phase time

so a ratio that over- or under-fed big cores corrects itself. Threads
that finish their phase allotment while others are still working steal
``m``-sized pieces (the AID_WAIT state), and — the optimization noted
under Fig. 5 — as soon as the pool drops to ``M * NT`` iterations the
whole team switches to plain dynamic(m), which removes the end-of-loop
imbalance that makes conventional dynamic so chunk-sensitive (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.sched import aid_common as ac
from repro.sched.base import LoopScheduler, ScheduleSpec

#: Additional per-thread state: the team switched to the dynamic endgame.
ENDGAME = "ENDGAME"

#: Bounds keeping the resmoothed ratio physically plausible.
R_MIN = 0.25
R_MAX = 128.0


class AidDynamicScheduler(LoopScheduler):
    """Per-loop state machine for AID-dynamic.

    Args:
        ctx: loop context.
        minor_chunk: the paper's ``m`` — sampling, wait and endgame chunk.
        major_chunk: the paper's ``M`` — small-core allotment per AID
            phase (big cores get ``R * M``).
        endgame: enable the switch to dynamic(m) when the pool drops to
            ``M * n_threads`` (on by default; off for the ablation bench).
        smoothing: enable per-phase resmoothing of R (on by default; off
            keeps R fixed at the sampled SF, for the ablation bench).
    """

    #: Name stamped on decision-log records.
    scheduler_label = "aid_dynamic"

    def __init__(
        self,
        ctx: LoopContext,
        minor_chunk: int = 1,
        major_chunk: int = 5,
        endgame: bool = True,
        smoothing: bool = True,
    ) -> None:
        super().__init__(ctx)
        if minor_chunk <= 0:
            raise ConfigError("minor chunk must be positive")
        if major_chunk < minor_chunk:
            raise ConfigError(
                f"Major chunk ({major_chunk}) must be >= minor chunk ({minor_chunk})"
            )
        self.m = minor_chunk
        self.M = major_chunk
        self.endgame_enabled = endgame
        self.smoothing_enabled = smoothing
        nt = ctx.n_threads
        self.state = [ac.START] * nt
        self.assign_time = [0.0] * nt
        self._timing = [False] * nt
        self.thread_phase = [0] * nt
        self.sampling = ac.SamplingState(ctx.n_types, ctx.make_lock())
        self.R: list[float] | None = None  # per-type ratio; None until sampled
        self.sf: dict[int, float] | None = None
        self.phase = 0
        self.phase_joined = 0
        self.phase_pending = 0
        self.phase_sums = [0.0] * ctx.n_types
        self.phase_counts = [0] * ctx.n_types
        self.active = nt
        self.in_endgame = False
        self.phases_run = 0
        self._lost: set[int] = set()
        self.dec = ac.decision_emitter(ctx, self.scheduler_label)

    # -- introspection ---------------------------------------------------------

    def estimated_sf(self) -> dict[int, float] | None:
        return self.sf

    def current_ratio(self) -> list[float] | None:
        """The per-type ratio R currently in force (None before sampling)."""
        return None if self.R is None else list(self.R)

    def note_execution_start(self, tid: int, t: float) -> None:
        if self._timing[tid]:
            self.assign_time[tid] = t
            self._timing[tid] = False

    # -- the GOMP_loop_next analogue --------------------------------------------

    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        with self.ctx.lock:
            return self._next_locked(tid, now)

    def _next_locked(self, tid: int, now: float) -> tuple[int, int] | None:
        state = self.state[tid]

        if state == ac.START:
            got = self.ctx.workshare.take(self.m)
            if got is None:
                return self._retire(tid)
            ac.set_state(self, tid, ac.SAMPLING)
            self.assign_time[tid] = now  # refined by note_execution_start
            self._timing[tid] = True
            self.ctx.charge_timestamp(tid)
            if self.dec.on:
                self.dec.emit(
                    tid, now, "sample_start",
                    chunk_target=self.m, range=list(got),
                )
            return got

        if state == ac.SAMPLING:
            self.ctx.charge_timestamp(tid)
            duration = now - self.assign_time[tid]
            done = self.sampling.record(self.ctx.type_of(tid), duration)
            if self.dec.on:
                self.dec.emit(
                    tid, now, "sample_complete",
                    duration=duration, completed=done,
                    mean_times=self.sampling.mean_times(),
                )
            if done == self.ctx.n_threads and self.R is None:
                self.sf = self.sampling.sf_per_type()
                self.R = [
                    self._clamp(self.sf[j]) for j in range(self.ctx.n_types)
                ]
                self.phase = 1
                ac.emit_sf_publication(
                    self.dec, tid, now, "publish_ratio", self.sf,
                    sampling=self.sampling, ratio=list(self.R),
                )
            return self._dispatch(tid, now)

        if state == ac.SAMPLING_WAIT:
            return self._dispatch(tid, now)

        if state == ac.AID:
            # Phase allotment completed: log its duration for resmoothing.
            self.ctx.charge_timestamp(tid)
            duration = now - self.assign_time[tid]
            jtype = self.ctx.type_of(tid)
            self.phase_sums[jtype] += duration
            self.phase_counts[jtype] += 1
            self.phase_pending -= 1
            self._maybe_finalize_phase(tid, now)
            return self._dispatch(tid, now)

        if state == ac.AID_WAIT:
            return self._dispatch(tid, now)

        if state == ENDGAME:
            got = self.ctx.workshare.take(self.m)
            if got is None:
                return self._retire(tid)
            if self.dec.on:
                self.dec.emit(
                    tid, now, "endgame_steal",
                    chunk_target=self.m, range=list(got),
                )
            return got

        return None  # DONE

    # -- dispatch decisions -------------------------------------------------------

    def _dispatch(self, tid: int, now: float) -> tuple[int, int] | None:
        """Pick the next assignment for a thread that just became idle."""
        self._maybe_endgame(tid, now)
        if self.in_endgame:
            ac.set_state(self, tid, ENDGAME)
            got = self.ctx.workshare.take(self.m)
            if got is None:
                return self._retire(tid)
            if self.dec.on:
                self.dec.emit(
                    tid, now, "endgame_steal",
                    chunk_target=self.m, range=list(got),
                )
            return got
        if self.R is None:
            # Sampling not finished team-wide: wait-steal minor chunks.
            got = self.ctx.workshare.take(self.m)
            if got is None:
                return self._retire(tid)
            ac.set_state(self, tid, ac.SAMPLING_WAIT)
            if self.dec.on:
                self.dec.emit(
                    tid, now, "wait_steal",
                    chunk_target=self.m, range=list(got),
                )
            return got
        if self.thread_phase[tid] < self.phase:
            return self._join_phase(tid, now)
        # Phase already joined and completed; wait for stragglers.
        got = self.ctx.workshare.take(self.m)
        if got is None:
            return self._retire(tid)
        ac.set_state(self, tid, ac.AID_WAIT)
        if self.dec.on:
            self.dec.emit(
                tid, now, "wait_steal",
                chunk_target=self.m, range=list(got),
            )
        return got

    def _join_phase(self, tid: int, now: float) -> tuple[int, int] | None:
        assert self.R is not None
        jtype = self.ctx.type_of(tid)
        allotment = max(1, int(round(self.R[jtype] * self.M)))
        got = self.ctx.workshare.take(allotment)
        if got is None:
            return self._retire(tid)
        self.thread_phase[tid] = self.phase
        self.phase_joined += 1
        self.phase_pending += 1
        ac.set_state(self, tid, ac.AID)
        self.assign_time[tid] = now  # refined by note_execution_start
        self._timing[tid] = True
        self.ctx.charge_timestamp(tid)
        if self.dec.on:
            self.dec.emit(
                tid, now, "phase_join",
                phase=self.phase, chunk_target=allotment, range=list(got),
                ratio=self.R[jtype], sf=ac.sf_as_json(self.sf),
            )
        return got

    # -- phase lifecycle -----------------------------------------------------------

    def _maybe_finalize_phase(self, tid: int = -1, now: float = 0.0) -> None:
        """Advance to the next AID phase once every active thread has
        joined and completed the current one."""
        if self.phase_joined < self.active or self.phase_pending > 0:
            return
        if self.smoothing_enabled and self.R is not None:
            base_n = self.phase_counts[0]
            base_mean = self.phase_sums[0] / base_n if base_n else 0.0
            for j in range(1, self.ctx.n_types):
                n = self.phase_counts[j]
                mean = self.phase_sums[j] / n if n else 0.0
                if base_mean > 0.0 and mean > 0.0:
                    sm = base_mean / mean
                    self.R[j] = self._clamp(self.R[j] * sm)
        if self.dec.on and self.R is not None:
            self.dec.emit(
                tid, now, "phase_complete",
                phase=self.phase, ratio=list(self.R),
                smoothing=self.smoothing_enabled,
            )
        self.phases_run += 1
        self.phase += 1
        self.phase_joined = 0
        self.phase_pending = 0
        self.phase_sums = [0.0] * self.ctx.n_types
        self.phase_counts = [0] * self.ctx.n_types

    def _maybe_endgame(self, tid: int = -1, now: float = 0.0) -> None:
        if self.in_endgame or not self.endgame_enabled:
            return
        threshold = self.M * self.ctx.n_threads
        if self.ctx.workshare.remaining <= threshold:
            self.in_endgame = True
            if self.dec.on:
                self.dec.emit(
                    tid, now, "endgame",
                    remaining=self.ctx.workshare.remaining,
                    threshold=threshold,
                )

    def _retire(self, tid: int) -> None:
        """Pool drained for this thread: leave the loop."""
        if self.state[tid] != ac.DONE:
            ac.set_state(self, tid, ac.DONE)
            self.active -= 1
            self._maybe_finalize_phase()
        return None

    # -- fault-recovery hooks -----------------------------------------------------
    #
    # The phase barrier counts *active* threads; a worker whose core went
    # offline must leave the accounting (otherwise the remaining team
    # waits forever for its phase report) and re-enter it on revival.
    # Reclaimed allotment tails go back through the shared pool (the
    # base-class reclaim), where wait-steals and the endgame absorb them.

    def on_worker_lost(self, tid: int, now: float) -> None:
        if tid in self._lost or self.state[tid] == ac.DONE:
            self._lost.add(tid)
            return
        self._lost.add(tid)
        if self.state[tid] == ac.AID:
            # Its phase allotment was preempted; the completion report
            # will never arrive.
            self.phase_pending -= 1
            ac.set_state(self, tid, ac.AID_WAIT)
        elif self.state[tid] == ac.SAMPLING:
            # Its sampling chunk was cut; never record the duration.
            ac.set_state(self, tid, ac.SAMPLING_WAIT)
        self.active -= 1
        self._maybe_finalize_phase(tid, now)

    def on_worker_back(self, tid: int, now: float) -> None:
        if tid not in self._lost:
            return
        self._lost.discard(tid)
        if self.state[tid] != ac.DONE:
            self.active += 1

    @staticmethod
    def _clamp(r: float) -> float:
        return min(R_MAX, max(R_MIN, r))


@dataclass(frozen=True)
class AidDynamicSpec(ScheduleSpec):
    """AID-dynamic configuration.

    Attributes:
        minor_chunk: the paper's ``m`` (default 1, as in the evaluation).
        major_chunk: the paper's ``M`` (default 5, as in Figs. 6/7).
        endgame: keep the switch-to-dynamic(m) optimization enabled.
        smoothing: keep per-phase R resmoothing enabled.
    """

    minor_chunk: int = 1
    major_chunk: int = 5
    endgame: bool = True
    smoothing: bool = True

    def __post_init__(self) -> None:
        if self.minor_chunk <= 0:
            raise ConfigError("minor chunk must be positive")
        if self.major_chunk < self.minor_chunk:
            raise ConfigError("Major chunk must be >= minor chunk")

    @property
    def name(self) -> str:
        base = f"aid_dynamic,{self.minor_chunk},{self.major_chunk}"
        tags = []
        if not self.endgame:
            tags.append("no-endgame")
        if not self.smoothing:
            tags.append("no-smoothing")
        return base + (f"({'+'.join(tags)})" if tags else "")

    @property
    def requires_bs_mapping(self) -> bool:
        return True

    def create(self, ctx: LoopContext) -> AidDynamicScheduler:
        return AidDynamicScheduler(
            ctx,
            minor_chunk=self.minor_chunk,
            major_chunk=self.major_chunk,
            endgame=self.endgame,
            smoothing=self.smoothing,
        )
