"""Real-thread execution of the schedulers (functional correctness).

The scheduling policies in :mod:`repro.sched` are written against
abstract atomics and a lock, so the *same* state machines that run on
the discrete-event simulator can drive genuine ``threading`` workers
executing real Python/numpy code. This is the analogue of running the
patched libgomp on real cores — except that CPython's GIL serializes
bytecode execution, so *timing* is unrepresentative (the calibration
note for this reproduction). What real threads do give us:

* functional validation under true concurrency — every iteration
  executed exactly once, no range overlap, schedulers race-free behind
  the context lock;
* runnable examples computing real results (see ``examples/``).
"""

from repro.exec_real.team import RealLoopStats, ThreadTeam, parallel_map

__all__ = ["ThreadTeam", "RealLoopStats", "parallel_map"]
