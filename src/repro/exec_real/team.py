"""A ``threading``-based OpenMP-style team driving the shared schedulers."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.amp.platform import Platform
from repro.amp.presets import dual_speed_platform
from repro.amp.topology import bs_mapping
from repro.errors import ConfigError, SchedulerError
from repro.runtime.context import LoopContext
from repro.runtime.team import Team
from repro.sched.base import ScheduleSpec


@dataclass
class RealLoopStats:
    """Outcome of one real-thread parallel loop.

    Attributes:
        n_iterations: the loop's trip count.
        iterations_per_thread: how many iterations each worker executed.
        dispatches: successful pool removals.
        wall_time: elapsed seconds.
        ranges: every assigned range as ``(tid, lo, hi)``.
        errors: exceptions raised inside workers (re-raised by default).
    """

    n_iterations: int
    iterations_per_thread: list[int]
    dispatches: int
    wall_time: float
    ranges: list[tuple[int, int, int]] = field(default_factory=list)
    errors: list[BaseException] = field(default_factory=list)


class ThreadTeam:
    """A reusable team of worker threads executing parallel loops.

    Args:
        n_threads: team size (>= 1).
        platform: optional AMP description; used only to give schedulers
            a thread->core-type map (AID distributes by it). Defaults to
            a synthetic two-type AMP with half "big" threads, so AID
            methods exercise their asymmetric paths even on a laptop.
    """

    def __init__(self, n_threads: int, platform: Platform | None = None) -> None:
        if n_threads <= 0:
            raise ConfigError("n_threads must be positive")
        if platform is None:
            n_big = max(1, n_threads // 2)
            n_small = max(1, n_threads - n_big)
            platform = dual_speed_platform(n_small, n_big, big_speedup=2.0)
        if n_threads > platform.n_cores:
            raise ConfigError(
                f"{n_threads} threads oversubscribe {platform.n_cores} cores"
            )
        self.n_threads = n_threads
        self.team = Team(platform, bs_mapping(platform, n_threads))

    def parallel_for(
        self,
        n_iterations: int,
        body: Callable[[int, int, int], None],
        spec: ScheduleSpec,
        default_chunk: int = 1,
        offline_sf: dict[int, float] | None = None,
        check=None,
    ) -> RealLoopStats:
        """Execute ``body(tid, lo, hi)`` over ``[0, n_iterations)``.

        The scheduler decides the ranges exactly as in the simulator;
        each worker loops on ``next_range`` until the pool drains. Worker
        exceptions abort the loop and are re-raised.

        ``check`` is an opt-in conformance recorder
        (:class:`repro.check.recording.CheckContext`). Its take log may
        be appended out of serialization order under real threads; the
        oracle sorts by the fetch-and-add's returned value.
        """
        if n_iterations < 0:
            raise ConfigError("negative trip count")
        # RLock: scheduler state machines hold the context lock while the
        # work-share atomics (protected by the same lock) are invoked.
        lock = threading.RLock()
        if check is not None:
            check.on_loop_begin(
                loop_name=f"real-{spec.name}",
                n_iterations=n_iterations,
                spec_name=spec.name,
            )
            check.on_team(self.team.conformance_info())
        ctx = LoopContext(
            team=self.team,
            n_iterations=n_iterations,
            default_chunk=default_chunk,
            lock=lock,
            offline_sf=offline_sf,
            loop_name=f"real-{spec.name}",
            check=check,
        )
        scheduler = spec.create(ctx)
        iterations = [0] * self.n_threads
        ranges: list[tuple[int, int, int]] = []
        ranges_lock = threading.Lock()
        errors: list[BaseException] = []

        def worker(tid: int) -> None:
            try:
                while True:
                    if errors:
                        return
                    got = scheduler.next_range(tid, time.perf_counter())
                    if check is not None:
                        # Serialize the append so event seq numbers stay
                        # unique (list.append alone is safe, the seq
                        # derivation inside on_dispatch is not).
                        with ranges_lock:
                            check.on_dispatch(tid, time.perf_counter(), got)
                    if got is None:
                        return
                    lo, hi = got
                    body(tid, lo, hi)
                    iterations[tid] += hi - lo
                    with ranges_lock:
                        ranges.append((tid, lo, hi))
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                errors.append(exc)

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(tid,), name=f"omp-worker-{tid}")
            for tid in range(self.n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

        if errors:
            raise errors[0]
        executed = sum(iterations)
        if executed != n_iterations:
            raise SchedulerError(
                f"schedule {spec.name!r} executed {executed} of "
                f"{n_iterations} iterations under real threads"
            )
        stats = RealLoopStats(
            n_iterations=n_iterations,
            iterations_per_thread=iterations,
            dispatches=ctx.workshare.dispatch_count,
            wall_time=wall,
            ranges=ranges,
        )
        if check is not None:
            check.on_loop_end(stats)
        return stats


def parallel_map(
    func: Callable[[int], Any],
    n_items: int,
    spec: ScheduleSpec,
    n_threads: int = 4,
    platform: Platform | None = None,
) -> list[Any]:
    """Map ``func`` over ``range(n_items)`` under a schedule; returns the
    results in index order."""
    results: list[Any] = [None] * n_items
    team = ThreadTeam(n_threads, platform)

    def body(tid: int, lo: int, hi: int) -> None:
        for i in range(lo, hi):
            results[i] = func(i)

    team.parallel_for(n_items, body, spec)
    return results
