"""A ``threading``-based OpenMP-style team driving the shared schedulers."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.amp.platform import Platform
from repro.amp.presets import dual_speed_platform
from repro.amp.topology import bs_mapping
from repro.errors import ConfigError, FaultError, SchedulerError, WatchdogTimeout
from repro.faults.model import FaultPlan, WorkerStallEvent
from repro.obs import NULL_OBS
from repro.obs.decisions import DecisionEmitter
from repro.runtime.context import LoopContext
from repro.runtime.team import Team
from repro.sched.base import ScheduleSpec


@dataclass
class RealLoopStats:
    """Outcome of one real-thread parallel loop.

    Attributes:
        n_iterations: the loop's trip count.
        iterations_per_thread: how many iterations each worker executed.
        dispatches: successful pool removals.
        wall_time: elapsed seconds.
        ranges: every assigned range as ``(tid, lo, hi)``.
        errors: exceptions raised inside workers (re-raised by default).
    """

    n_iterations: int
    iterations_per_thread: list[int]
    dispatches: int
    wall_time: float
    ranges: list[tuple[int, int, int]] = field(default_factory=list)
    errors: list[BaseException] = field(default_factory=list)
    #: Ranges the watchdog re-queued after declaring their owner stalled.
    redistributed: list[tuple[int, int]] = field(default_factory=list)


class ThreadTeam:
    """A reusable team of worker threads executing parallel loops.

    Args:
        n_threads: team size (>= 1).
        platform: optional AMP description; used only to give schedulers
            a thread->core-type map (AID distributes by it). Defaults to
            a synthetic two-type AMP with half "big" threads, so AID
            methods exercise their asymmetric paths even on a laptop.
    """

    #: Class-level kill switch for the stalled-worker watchdog. Exists so
    #: the conformance mutant catalog can disable recovery without
    #: touching call sites; production code leaves it True.
    watchdog_enabled = True

    def __init__(self, n_threads: int, platform: Platform | None = None) -> None:
        if n_threads <= 0:
            raise ConfigError("n_threads must be positive")
        if platform is None:
            n_big = max(1, n_threads // 2)
            n_small = max(1, n_threads - n_big)
            platform = dual_speed_platform(n_small, n_big, big_speedup=2.0)
        if n_threads > platform.n_cores:
            raise ConfigError(
                f"{n_threads} threads oversubscribe {platform.n_cores} cores"
            )
        self.n_threads = n_threads
        self.team = Team(platform, bs_mapping(platform, n_threads))

    def parallel_for(
        self,
        n_iterations: int,
        body: Callable[[int, int, int], None],
        spec: ScheduleSpec,
        default_chunk: int = 1,
        offline_sf: dict[int, float] | None = None,
        check=None,
        obs=None,
        watchdog_timeout: float | None = None,
        stalls: FaultPlan | None = None,
    ) -> RealLoopStats:
        """Execute ``body(tid, lo, hi)`` over ``[0, n_iterations)``.

        The scheduler decides the ranges exactly as in the simulator;
        each worker loops on ``next_range`` until the pool drains. Worker
        exceptions abort the loop and are re-raised.

        ``check`` is an opt-in conformance recorder
        (:class:`repro.check.recording.CheckContext`). Its take log may
        be appended out of serialization order under real threads; the
        oracle sorts by the fetch-and-add's returned value.

        ``watchdog_timeout`` (seconds) arms a stalled-worker watchdog: a
        worker sitting on one chunk longer than the timeout has that
        chunk's range handed back to the scheduler via ``reclaim`` so the
        survivors re-execute it. The stalled worker may still finish the
        chunk itself, so under redistribution the completion criterion
        becomes *coverage* (every iteration executed at least once,
        duplicates only inside redistributed ranges) instead of an exact
        count. Workers hung past any hope of joining leave the loop via
        :class:`~repro.errors.WatchdogTimeout` only if coverage failed —
        if the survivors covered the loop, the result stands.

        ``stalls`` injects latency faults for testing the watchdog: a
        :class:`~repro.faults.model.FaultPlan` whose events must all be
        :class:`~repro.faults.model.WorkerStallEvent` (times are seconds
        since loop start; the victim's next chunk after that point sleeps
        for the event's duration). An empty plan is a strict no-op.
        """
        if n_iterations < 0:
            raise ConfigError("negative trip count")
        if watchdog_timeout is not None and watchdog_timeout <= 0:
            raise ConfigError("watchdog_timeout must be positive")
        obs = obs if obs is not None else NULL_OBS
        pending_stalls: dict[int, list[tuple[float, float]]] = {}
        if stalls is not None and not stalls.is_empty:
            for ev in stalls.events:
                if not isinstance(ev, WorkerStallEvent):
                    raise FaultError(
                        "real execution supports only worker-stall fault "
                        f"events, got {ev.kind!r}"
                    )
                if ev.tid < self.n_threads:
                    pending_stalls.setdefault(ev.tid, []).append(
                        (ev.t, ev.seconds)
                    )
            for lst in pending_stalls.values():
                lst.sort()
        loop_name = f"real-{spec.name}"
        # RLock: scheduler state machines hold the context lock while the
        # work-share atomics (protected by the same lock) are invoked.
        lock = threading.RLock()
        if check is not None:
            check.on_loop_begin(
                loop_name=loop_name,
                n_iterations=n_iterations,
                spec_name=spec.name,
            )
            info = self.team.conformance_info()
            if watchdog_timeout is not None:
                info = {**info, "watchdog_timeout": watchdog_timeout}
            check.on_team(info)
        if check is not None:
            dec = check.fault_emitter(loop_name, obs)
        elif obs.enabled:
            dec = DecisionEmitter(obs, loop_name, "faults")
        else:
            dec = None
        ctx = LoopContext(
            team=self.team,
            n_iterations=n_iterations,
            default_chunk=default_chunk,
            lock=lock,
            offline_sf=offline_sf,
            obs=obs,
            loop_name=loop_name,
            check=check,
        )
        scheduler = spec.create(ctx)
        iterations = [0] * self.n_threads
        ranges: list[tuple[int, int, int]] = []
        ranges_lock = threading.Lock()
        errors: list[BaseException] = []
        # Watchdog bookkeeping, all guarded by ranges_lock: the chunk each
        # worker is currently executing, a per-worker block counter so one
        # slow block is redistributed at most once, and what was reclaimed.
        current: list[tuple[int, int, float, int] | None] = (
            [None] * self.n_threads
        )
        block_seq = [0] * self.n_threads
        redistributed: list[tuple[int, int]] = []
        stall_seconds_total = 0.0
        watchdog_stop = threading.Event()
        use_watchdog = watchdog_timeout is not None and self.watchdog_enabled
        # Wall-clock tail instruments; real_* names are declared
        # wall-clock in repro.obs.merge so fleet diffs ignore them. Fed
        # under ranges_lock: the instruments are not thread-safe.
        track = obs.enabled
        if track:
            reg = obs.registry
            real_compute = reg.digest("real_chunk_compute_seconds", loop=loop_name)
            real_dispatch = reg.digest(
                "real_dispatch_overhead_seconds", loop=loop_name
            )
            real_sizes = reg.digest("real_chunk_size_iters", loop=loop_name)
            real_rate = reg.timeseries("real_worker_rate", loop=loop_name)
        # Worker-lifetime spans (wall-clock seconds since loop start);
        # collected per tid and recorded after the join, so the recorder
        # is only touched from this thread.
        srec = getattr(obs, "spans", None)
        lifetimes: list[list[float]] = [[0.0, 0.0] for _ in range(self.n_threads)]

        t0 = time.perf_counter()

        def worker(tid: int) -> None:
            nonlocal stall_seconds_total
            lifetimes[tid][0] = time.perf_counter() - t0
            try:
                while True:
                    if errors:
                        return
                    t_disp = time.perf_counter()
                    got = scheduler.next_range(tid, time.perf_counter())
                    if check is not None:
                        # Serialize the append so event seq numbers stay
                        # unique (list.append alone is safe, the seq
                        # derivation inside on_dispatch is not).
                        with ranges_lock:
                            check.on_dispatch(tid, time.perf_counter(), got)
                    if got is None:
                        return
                    lo, hi = got
                    now = time.perf_counter()
                    with ranges_lock:
                        block_seq[tid] += 1
                        current[tid] = (lo, hi, now, block_seq[tid])
                        if track:
                            real_dispatch.observe(now - t_disp)
                    stall = 0.0
                    queue = pending_stalls.get(tid)
                    while queue and now - t0 >= queue[0][0]:
                        stall += queue.pop(0)[1]
                    if stall > 0.0:
                        if dec is not None and dec.on:
                            with lock:
                                dec.emit(
                                    tid, now - t0, "stall_injected",
                                    seconds=stall, range=[lo, hi],
                                )
                        with ranges_lock:
                            stall_seconds_total += stall
                        time.sleep(stall)
                    body(tid, lo, hi)
                    t_done = time.perf_counter()
                    iterations[tid] += hi - lo
                    with ranges_lock:
                        current[tid] = None
                        ranges.append((tid, lo, hi))
                        if track:
                            compute_dt = t_done - now - stall
                            real_compute.observe(max(0.0, compute_dt))
                            real_sizes.observe(hi - lo)
                            if compute_dt > 0.0:
                                real_rate.observe(
                                    now - t0, (hi - lo) / compute_dt
                                )
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                errors.append(exc)
            finally:
                lifetimes[tid][1] = time.perf_counter() - t0

        def watchdog() -> None:
            seen: set[tuple[int, int]] = set()
            while not watchdog_stop.wait(watchdog_timeout / 4.0):
                now = time.perf_counter()
                with ranges_lock:
                    snapshot = list(current)
                for tid, blk in enumerate(snapshot):
                    if blk is None:
                        continue
                    lo, hi, started, bid = blk
                    if now - started <= watchdog_timeout:
                        continue
                    if (tid, bid) in seen:
                        continue
                    seen.add((tid, bid))
                    with lock:
                        scheduler.reclaim(tid, lo, hi)
                        if dec is not None and dec.on:
                            dec.emit(
                                tid, now - t0, "watchdog_redistribute",
                                range=[lo, hi], stalled_for=now - started,
                                timeout=watchdog_timeout,
                            )
                    with ranges_lock:
                        redistributed.append((lo, hi))

        threads = [
            threading.Thread(
                target=worker,
                args=(tid,),
                name=f"omp-worker-{tid}",
                daemon=use_watchdog,
            )
            for tid in range(self.n_threads)
        ]
        monitor = None
        if use_watchdog:
            monitor = threading.Thread(
                target=watchdog, name="omp-watchdog", daemon=True
            )
            monitor.start()
        for t in threads:
            t.start()
        join_timeout = (
            None if watchdog_timeout is None
            else max(5.0, watchdog_timeout * 200.0)
        )
        hung: list[threading.Thread] = []
        for t in threads:
            t.join(join_timeout)
            if t.is_alive():
                hung.append(t)
        if monitor is not None:
            watchdog_stop.set()
            monitor.join(5.0)
        wall = time.perf_counter() - t0
        if srec is not None:
            for tid in range(self.n_threads):
                start, end = lifetimes[tid]
                srec.record_worker(
                    tid, start, max(start, end), loop=loop_name
                )

        if errors:
            raise errors[0]
        self._check_completion(
            n_iterations, spec, iterations, ranges, redistributed, hung
        )
        if obs.enabled:
            reg = obs.registry
            if redistributed:
                reg.counter(
                    "fault_watchdog_redistributes_total", loop=loop_name
                ).inc(len(redistributed))
            if stall_seconds_total > 0.0:
                reg.counter(
                    "fault_stall_seconds_total", loop=loop_name
                ).inc(stall_seconds_total)
        stats = RealLoopStats(
            n_iterations=n_iterations,
            iterations_per_thread=iterations,
            dispatches=ctx.workshare.dispatch_count,
            wall_time=wall,
            ranges=ranges,
            redistributed=list(redistributed),
        )
        if check is not None:
            check.on_loop_end(stats)
        return stats

    def _check_completion(
        self,
        n_iterations: int,
        spec: ScheduleSpec,
        iterations: list[int],
        ranges: list[tuple[int, int, int]],
        redistributed: list[tuple[int, int]],
        hung: list[threading.Thread],
    ) -> None:
        """Validate that the loop ran to completion.

        Fault-free runs keep the strict exactly-once count. Once the
        watchdog redistributed anything, iterations inside redistributed
        ranges may legitimately run twice (stalled owner plus the worker
        that picked up the requeued tail), so the criterion weakens to
        coverage: everything executed at least once, duplicates only
        inside redistributed ranges.
        """
        if not redistributed and not hung:
            executed = sum(iterations)
            if executed != n_iterations:
                raise SchedulerError(
                    f"schedule {spec.name!r} executed {executed} of "
                    f"{n_iterations} iterations under real threads"
                )
            return
        cover = [0] * (n_iterations + 1)
        for _tid, lo, hi in ranges:
            cover[lo] += 1
            cover[hi] -= 1
        allowed = [0] * (n_iterations + 1)
        for lo, hi in redistributed:
            allowed[lo] += 1
            allowed[hi] -= 1
        depth = 0
        extra_ok = 0
        for i in range(n_iterations):
            depth += cover[i]
            extra_ok += allowed[i]
            if depth < 1:
                if hung:
                    raise WatchdogTimeout(
                        f"schedule {spec.name!r}: worker(s) "
                        f"{[t.name for t in hung]} hung and iteration {i} "
                        "was never executed"
                    )
                raise SchedulerError(
                    f"schedule {spec.name!r}: iteration {i} never executed "
                    "after watchdog redistribution"
                )
            if depth > 1 and extra_ok == 0:
                raise SchedulerError(
                    f"schedule {spec.name!r}: iteration {i} executed "
                    f"{depth} times outside any redistributed range"
                )


def parallel_map(
    func: Callable[[int], Any],
    n_items: int,
    spec: ScheduleSpec,
    n_threads: int = 4,
    platform: Platform | None = None,
) -> list[Any]:
    """Map ``func`` over ``range(n_items)`` under a schedule; returns the
    results in index order."""
    results: list[Any] = [None] * n_items
    team = ThreadTeam(n_threads, platform)

    def body(tid: int, lo: int, hi: int) -> None:
        for i in range(lo, hi):
            results[i] = func(i)

    team.parallel_for(n_items, body, spec)
    return results
