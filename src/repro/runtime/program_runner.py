"""Whole-program execution: serial phases, loops, barriers.

:class:`ProgramRunner` plays a compiled program forward in virtual time:
serial phases advance the master thread while workers idle; each
parallel loop runs through :class:`~repro.runtime.executor.LoopExecutor`
under the lowering the compiler chose (inline static, the environment's
OMP_SCHEDULE, or an explicit clause); the implicit end-of-loop barrier
re-synchronizes the team.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.compiler.lowering import CompiledProgram, LoweringKind, compile_program
from repro.errors import ConfigError
from repro.obs import NULL_OBS, Observability
from repro.perfmodel.contention import ContentionModel
from repro.perfmodel.locality import LocalityModel
from repro.perfmodel.overhead import OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.env import OmpEnv
from repro.runtime.executor import LoopExecutor, LoopResult
from repro.runtime.team import Team
from repro.sim.rng import RngStreams
from repro.tracing.trace import ThreadState, TraceRecorder
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program, SerialPhase


@dataclass
class ProgramResult:
    """Outcome of a whole-program run.

    Attributes:
        program_name: the executed program.
        schedule_name: OMP_SCHEDULE in force (plus affinity label).
        completion_time: wall time of the run in simulated seconds.
        loop_results: every loop execution, in order.
        serial_time: total time spent in serial phases.
        trace: the recorder, when tracing was requested.
    """

    program_name: str
    schedule_name: str
    completion_time: float
    loop_results: list[LoopResult] = field(default_factory=list)
    serial_time: float = 0.0
    trace: TraceRecorder | None = None

    @property
    def total_dispatches(self) -> int:
        return sum(r.dispatches for r in self.loop_results)

    @property
    def parallel_time(self) -> float:
        return sum(r.duration for r in self.loop_results)

    def estimated_sf_series(self, loop_name: str) -> list[dict[int, float]]:
        """The SF a sampling scheduler estimated at each invocation of
        one loop (Fig. 9c plots this for blackscholes)."""
        return [
            r.estimated_sf
            for r in self.loop_results
            if r.loop_name == loop_name and r.estimated_sf is not None
        ]


class ProgramRunner:
    """Runs compiled programs on a platform under an OMP environment.

    Args:
        platform: the AMP.
        env: runtime environment (schedule, team size, affinity).
        overhead: runtime-call cost model.
        contention: LLC contention model.
        root_seed: seed for workload cost noise.
        trace: record a full execution trace.
        offline_sf_tables: optional per-loop offline SF tables, keyed by
            loop name, each mapping core-type index -> SF. Required by
            offline-SF schedule variants.
        schedule_override: use this spec for runtime-scheduled loops
            instead of parsing ``env.schedule`` — for specs that have no
            OMP_SCHEDULE string form (offline-SF variants, ablation
            configurations).
        info_page: OS<->runtime shared page for multi-application
            scenarios (paper Sec. 4.3). When given, the runtime reads its
            CPU allocation from the page at every loop start (instead of
            pinning env.num_threads cores itself), builds the team over
            those CPUs in the BS convention, and treats the co-located
            applications' CPUs as LLC contention background.
        obs: observability bundle; when given, every loop execution feeds
            the metrics registry and the AID schedulers append to the
            decision log. Defaults to the null sink (no overhead, results
            bit-identical to an uninstrumented run).
        backend: execution backend for runtime-scheduled loops — a
            registered name (``"reference"``, ``"vectorized"``,
            ``"real"``), a live
            :class:`~repro.backends.ExecutionBackend` instance, or
            ``None`` to resolve via the ``REPRO_BACKEND`` environment
            variable (default ``reference``). Forwarded to every
            :class:`~repro.runtime.executor.LoopExecutor` this runner
            builds, including the per-allocation executors of
            multi-application mode.
        faults: optional :class:`~repro.faults.model.FaultPlan` with
            event times in absolute program (virtual) seconds. Each
            runtime-scheduled loop applies the windows that overlap its
            execution; windows that ended before a loop starts are
            dropped. Core-offline state does not persist across loop
            boundaries (every loop starts with the full team). ``None``
            or an empty plan is a strict no-op.
    """

    def __init__(
        self,
        platform,
        env: OmpEnv | None = None,
        overhead: OverheadModel | None = None,
        contention: ContentionModel | None = None,
        root_seed: int = 0,
        trace: bool = False,
        offline_sf_tables: Mapping[str, Mapping[int, float]] | None = None,
        schedule_override=None,
        locality: LocalityModel | None = None,
        info_page=None,
        obs: Observability | None = None,
        faults=None,
        backend=None,
    ) -> None:
        self.platform = platform
        self.env = env if env is not None else OmpEnv()
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.contention = (
            contention if contention is not None else ContentionModel()
        )
        self.streams = RngStreams(root_seed)
        self.recorder = TraceRecorder() if trace else None
        self.obs = obs if obs is not None else NULL_OBS
        self.offline_sf_tables = (
            {k: dict(v) for k, v in offline_sf_tables.items()}
            if offline_sf_tables
            else {}
        )
        self.schedule_override = schedule_override
        self.faults = faults
        self.locality = locality if locality is not None else LocalityModel()
        # Kept as the raw selector; every executor construction below
        # resolves it, so an invalid name (or a typo'd REPRO_BACKEND)
        # fails here in __init__ with a BackendError.
        self.backend = backend
        self._ownership = {}
        self.info_page = info_page
        self.perf = PerfModel(platform, self.contention)
        self._executor_cache: dict[tuple, LoopExecutor] = {}
        if info_page is None:
            self.team = Team(platform, self.env.mapping(platform))
            self.executor = LoopExecutor(
                self.team, self.perf, self.overhead, self.recorder,
                locality=self.locality, obs=self.obs, backend=self.backend,
            )
        else:
            # Multi-application mode: the OS page decides the CPUs; build
            # the initial team from its t=0 allocation.
            self.team, self.executor = self._team_for(0.0)
        if self.obs.enabled:
            self.team.publish_metrics(self.obs.registry)
        spec = self._runtime_spec()
        if spec.requires_bs_mapping and self.env.affinity != "BS":
            raise ConfigError(
                f"schedule {spec.name!r} requires GOMP_AMP_AFFINITY=BS"
            )

    def _team_for(self, now: float):
        """Team + executor for the OS allocation in force at ``now``
        (multi-application mode only)."""
        from repro.amp.topology import AffinityMapping

        snapshot = self.info_page.read(now)
        background = self.info_page.background_at(now)
        key = (snapshot.cpus, background)
        cached = self._executor_cache.get(key)
        if cached is None:
            # The page hands CPUs out fastest-first, so binding TIDs in
            # that order preserves the BS convention AID assumes.
            mapping = AffinityMapping(
                name=f"OS(gen{snapshot.generation})", cpu_of_tid=snapshot.cpus
            )
            team = Team(self.platform, mapping)
            cached = LoopExecutor(
                team,
                self.perf,
                self.overhead,
                self.recorder,
                locality=self.locality,
                background_cpus=background,
                obs=self.obs,
                backend=self.backend,
            )
            self._executor_cache[key] = cached
        return cached.team, cached

    def _runtime_spec(self):
        """The spec applied to schedule(runtime) loops."""
        if self.schedule_override is not None:
            return self.schedule_override
        return self.env.schedule_spec()

    # -- phases ------------------------------------------------------------------

    def _run_serial(self, phase: SerialPhase, now: float) -> float:
        """Master executes the phase; workers idle. Returns the end time."""
        if self.info_page is not None:
            self.team, self.executor = self._team_for(now)
        master_cpu = self.team.cpu_of(0)
        rate = self.perf.solo_rate(master_cpu, phase.kernel)
        end = now + phase.work / rate
        if self.obs.enabled:
            self.obs.registry.counter(
                "serial_seconds_total", phase=phase.name
            ).inc(end - now)
        srec = getattr(self.obs, "spans", None)
        if srec is not None:
            srec.record_serial(phase.name, now, end, self.team.n_threads)
        if self.recorder is not None:
            self.recorder.record(0, ThreadState.SERIAL, now, end, phase.name)
            for tid in range(1, self.team.n_threads):
                self.recorder.record(tid, ThreadState.IDLE, now, end, phase.name)
        return end

    def _run_loop(
        self,
        compiled: CompiledProgram,
        loop: LoopSpec,
        invocation: int,
        now: float,
        entry_times: list[float] | None = None,
    ) -> tuple[LoopResult, float, list[float] | None]:
        """Run one loop invocation (plus the implicit barrier unless the
        loop is ``nowait``).

        Args:
            entry_times: per-thread arrival times left over from a
                preceding ``nowait`` loop, or ``None`` when the team is
                synchronized at ``now``.

        Returns:
            ``(result, time_after, ready)`` where ``ready`` is the
            per-thread arrival times for the *next* construct (``None``
            when this loop ended with a barrier).
        """
        if self.info_page is not None:
            # Sec. 4.3: peek the shared page at every loop start; a
            # changed allocation (the "migration notification") simply
            # means this loop's team is built over the new CPUs.
            self.team, self.executor = self._team_for(now)
        costs = loop.costs(self.streams, compiled.program.name, invocation)
        ownership = self._ownership.get(loop.name)
        if ownership is None:
            ownership = self.locality.fresh_ownership(loop.n_iterations)
            self._ownership[loop.name] = ownership
        if entry_times is not None and len(entry_times) != self.team.n_threads:
            # Team size changed (multi-application reallocation): the old
            # per-thread arrival times are meaningless; synchronize.
            now = max(now, max(entry_times))
            entry_times = None
        lowering = compiled.lowering_of(loop)
        if lowering.kind is LoweringKind.INLINE_STATIC:
            # The inlined-static path has no runtime entry point to carry
            # per-thread arrivals through; threads join first.
            if entry_times is not None:
                now = max(now, max(entry_times))
                entry_times = None
            result = self.executor.run_inline_static(
                loop, costs, now, ownership=ownership
            )
        else:
            spec = (
                lowering.clause_spec
                if lowering.kind is LoweringKind.CLAUSE
                else self._runtime_spec()
            )
            assert spec is not None
            offline = None
            if spec.needs_offline_sf:
                offline = self.offline_sf_tables.get(loop.name)
                if offline is None:
                    raise ConfigError(
                        f"schedule {spec.name!r} needs an offline SF table "
                        f"for loop {loop.name!r} but none was provided"
                    )
            result = self.executor.run(
                loop,
                costs,
                spec,
                start_time=now,
                offline_sf=offline,
                ownership=ownership,
                rng=self.streams.get(
                    "wake", compiled.program.name, loop.name, invocation
                ),
                start_times=entry_times,
                faults=self.faults,
            )
        ownership.update(result.ranges)
        if loop.nowait:
            # GOMP_loop_end_nowait: no barrier; each thread proceeds to
            # the next construct as soon as its share is done.
            return result, result.end_time, list(result.finish_times)
        # Implicit barrier: the team leaves together.
        barrier_dt = self.overhead.barrier(
            self.team.core_type_of(0), self.team.n_threads
        )
        after = result.end_time + barrier_dt
        if self.obs.enabled:
            reg = self.obs.registry
            reg.counter("barriers_total", loop=loop.name).inc()
            idle_by_type: dict[str, float] = {}
            for tid in range(self.team.n_threads):
                # Wait = idle until the last thread arrives + release cost.
                wait = after - result.finish_times[tid]
                reg.counter(
                    "barrier_wait_seconds_total", loop=loop.name, tid=tid
                ).inc(wait)
                tname = self.team.core_type_of(tid).name
                idle_by_type[tname] = idle_by_type.get(tname, 0.0) + wait
            for tname, wait in sorted(idle_by_type.items()):
                reg.counter(
                    "sim_time_seconds_total", loop=loop.name,
                    core_type=tname, category="idle",
                ).inc(wait)
        srec = getattr(self.obs, "spans", None)
        if srec is not None:
            for tid in range(self.team.n_threads):
                srec.record_barrier(tid, result.finish_times[tid], after)
        if self.recorder is not None:
            for tid in range(self.team.n_threads):
                self.recorder.record(
                    tid,
                    ThreadState.BARRIER,
                    result.finish_times[tid],
                    after,
                    loop.name,
                )
        return result, after, None

    # -- whole program ----------------------------------------------------------------

    def run(self, program: Program | CompiledProgram) -> ProgramResult:
        """Execute a program (compiling it with the modified compiler if
        a plain :class:`~repro.workloads.program.Program` is given)."""
        if isinstance(program, CompiledProgram):
            compiled = program
        else:
            compiled = compile_program(program, modified=True)
        srec = getattr(self.obs, "spans", None)
        if srec is not None:
            srec.begin_program(compiled.program.name)
        now = 0.0
        serial_time = 0.0
        ready: list[float] | None = None  # per-thread arrivals after nowait
        loop_results: list[LoopResult] = []
        for phase, invocation in compiled.program.schedule():
            if isinstance(phase, SerialPhase):
                if ready is not None:
                    # Leaving the parallel region joins the team.
                    now = max(now, max(ready))
                    ready = None
                end = self._run_serial(phase, now)
                serial_time += end - now
                now = end
            else:
                result, now, ready = self._run_loop(
                    compiled, phase, invocation, now, entry_times=ready
                )
                loop_results.append(result)
        if ready is not None:
            now = max(now, max(ready))
        if srec is not None:
            srec.end_program(0.0, now)
        if self.obs.enabled:
            self.obs.registry.gauge(
                "program_last_completion_seconds",
                program=compiled.program.name,
                schedule=self._runtime_spec().name,
            ).set(now)
        return ProgramResult(
            program_name=compiled.program.name,
            schedule_name=f"{self.env.schedule}({self.env.affinity})",
            completion_time=now,
            loop_results=loop_results,
            serial_time=serial_time,
            trace=self.recorder,
        )
