"""Discrete-event execution of one parallel loop.

The executor is the meeting point of every substrate: it takes a
:class:`~repro.runtime.team.Team` (threads pinned on an AMP), a
per-iteration cost vector, a :class:`~repro.perfmodel.speed.PerfModel`
(work units -> seconds per core) and a
:class:`~repro.sched.base.ScheduleSpec`, and plays out the loop on the
discrete-event simulator:

* each worker thread alternates *dispatch* (one scheduler call, charged
  as runtime overhead) and *compute* (executing the returned iteration
  range at its core's rate);
* AID sampling timestamps charged through the loop context are added to
  the thread's next compute block;
* everything is optionally recorded into a trace.

Event ordering is exactly the semantics that matter to the paper: the
thread that finishes its chunk first reaches the shared pool first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.obs import NULL_OBS, Observability
from repro.perfmodel.locality import LocalityModel, LoopOwnership
from repro.perfmodel.overhead import OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.team import Team
from repro.sched.base import ScheduleSpec
from repro.sched.static import static_block
from repro.tracing.trace import ThreadState, TraceRecorder
from repro.workloads.loopspec import LoopSpec

#: Safety bound on events per loop execution (dispatches are at most one
#: per iteration plus per-thread bookkeeping; anything past this is a
#: livelocked policy).
_EVENT_BUDGET_SLACK = 64


@dataclass
class LoopResult:
    """Outcome of one parallel-loop execution.

    Attributes:
        loop_name: the executed loop.
        start_time: when all threads entered the loop.
        end_time: when the last thread finished its share (barrier cost
            not yet included — the program runner adds it).
        finish_times: per-TID completion times.
        iterations: per-TID executed iteration counts.
        dispatches: successful pool removals (0 for inline static).
        scheduler_calls: total scheduler invocations, including the final
            empty-handed ones.
        estimated_sf: per-core-type SF the scheduler sampled, if any.
        ranges: every assigned iteration range as ``(tid, lo, hi)``, in
            assignment order — the raw distribution, used by the locality
            model and by analyses/tests.
    """

    loop_name: str
    start_time: float
    end_time: float
    finish_times: list[float]
    iterations: list[int]
    dispatches: int
    scheduler_calls: int
    estimated_sf: dict[int, float] | None = None
    ranges: list[tuple[int, int, int]] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def imbalance(self) -> float:
        """Relative load imbalance: (max - min) / max of thread busy time.

        0 = perfectly balanced. Computed over finish times relative to
        the loop start.
        """
        busy = [t - self.start_time for t in self.finish_times]
        peak = max(busy)
        return 0.0 if peak <= 0 else (peak - min(busy)) / peak


class LoopExecutor:
    """Executes parallel loops for one (team, models) configuration.

    Args:
        team: threads pinned onto the platform.
        perf: performance model for the platform.
        overhead: runtime-call cost model.
        recorder: optional trace recorder.
        obs: observability bundle receiving per-loop counters and the
            scheduler decision log; defaults to the null sink (hooks are
            a single flag check, simulated results are unchanged).
        backend: execution backend for runtime-scheduled loops — a
            registered name (``"reference"``, ``"vectorized"``,
            ``"real"``), a live :class:`~repro.backends.ExecutionBackend`
            instance, or ``None`` to resolve via the ``REPRO_BACKEND``
            environment variable (default ``reference``).
    """

    def __init__(
        self,
        team: Team,
        perf: PerfModel,
        overhead: OverheadModel | None = None,
        recorder: TraceRecorder | None = None,
        locality: LocalityModel | None = None,
        background_cpus: tuple[int, ...] = (),
        obs: Observability | None = None,
        backend=None,
    ) -> None:
        from repro.backends import resolve_backend

        self.team = team
        self.perf = perf
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.recorder = recorder
        self.obs = obs if obs is not None else NULL_OBS
        self.locality = locality if locality is not None else LocalityModel()
        #: CPUs occupied by *other* applications co-located on the
        #: platform (Sec. 4.3 scenarios); they count as LLC co-runners.
        self.background_cpus = tuple(background_cpus)
        self.backend = resolve_backend(backend)
        #: Per-loop-name caches of registry instrument handles. The
        #: registry get-or-creates by (name, labels) anyway; these only
        #: skip rebuilding the label keys on every invocation of an
        #: iterative loop (team and obs are fixed per executor).
        self._instrument_cache: dict = {}
        self._loop_metric_handles: dict = {}
        self.backend.prepare(self)

    # -- rates -----------------------------------------------------------------

    def rates_for(self, loop: LoopSpec) -> list[float]:
        """Per-TID execution rate (work units/second) for this loop,
        under the team's full co-running contention (including any
        co-located applications' threads)."""
        cpus = tuple(self.team.mapping.cpu_of_tid) + self.background_cpus
        return [
            self.perf.rate(self.team.cpu_of(tid), loop.kernel, cpus)
            for tid in range(self.team.n_threads)
        ]

    # -- inline static (vanilla-compiler) path ------------------------------------

    def run_inline_static(
        self,
        loop: LoopSpec,
        costs: np.ndarray,
        start_time: float = 0.0,
        ownership: LoopOwnership | None = None,
    ) -> LoopResult:
        """Run the loop as vanilla GCC lowers clause-less loops: an even
        split baked into the code, zero runtime calls."""
        nt = self.team.n_threads
        prefix = np.concatenate(([0.0], np.cumsum(costs)))
        rates = self.rates_for(loop)
        finish = [start_time] * nt
        iters = [0] * nt
        ranges: list[tuple[int, int, int]] = []
        for tid in range(nt):
            lo, hi = static_block(len(costs), nt, tid)
            work = float(prefix[hi] - prefix[lo])
            slowdown = self.locality.slowdown(loop.kernel, ownership, tid, lo, hi)
            finish[tid] = start_time + slowdown * work / rates[tid]
            iters[tid] = hi - lo
            if hi > lo:
                ranges.append((tid, lo, hi))
            if self.recorder is not None and hi > lo:
                self.recorder.record(
                    tid, ThreadState.COMPUTE, start_time, finish[tid], loop.name
                )
        result = LoopResult(
            loop_name=loop.name,
            start_time=start_time,
            end_time=max(finish),
            finish_times=finish,
            iterations=iters,
            dispatches=0,
            scheduler_calls=0,
            ranges=ranges,
        )
        srec = getattr(self.obs, "spans", None)
        if srec is not None:
            fastest = self.team.n_types - 1
            srec.record_inline_loop(
                srec.begin_loop(loop.name),
                start_time,
                finish,
                [self.team.type_index_of(t) == fastest for t in range(nt)],
                loop.name,
            )
        if self.obs.enabled:
            reg = self.obs.registry
            reg.counter("loop_invocations_total", loop=loop.name).inc()
            type_names = [self.team.core_type_of(t).name for t in range(nt)]
            sim_time: dict[str, float] = {}
            for tid in range(nt):
                reg.counter("iterations_total", loop=loop.name, tid=tid).inc(
                    iters[tid]
                )
                reg.counter("compute_seconds_total", loop=loop.name, tid=tid).inc(
                    finish[tid] - start_time
                )
                tname = type_names[tid]
                sim_time[tname] = sim_time.get(tname, 0.0) + (
                    finish[tid] - start_time
                )
                if finish[tid] > start_time:
                    reg.timeseries(
                        "core_utilization", mode="busy", loop=loop.name,
                        core_type=tname, norm=float(type_names.count(tname)),
                    ).observe_span(start_time, finish[tid])
            for tname, seconds in sorted(sim_time.items()):
                reg.counter(
                    "sim_time_seconds_total", loop=loop.name,
                    core_type=tname, category="compute",
                ).inc(seconds)
            reg.gauge("loop_last_duration_seconds", loop=loop.name).set(
                result.duration
            )
            reg.gauge("loop_last_imbalance", loop=loop.name).set(result.imbalance)
        return result

    # -- runtime-scheduled path ------------------------------------------------------

    def run(
        self,
        loop: LoopSpec,
        costs: np.ndarray,
        spec: ScheduleSpec,
        start_time: float = 0.0,
        offline_sf: Mapping[int, float] | None = None,
        default_chunk: int = 1,
        ownership: LoopOwnership | None = None,
        rng: np.random.Generator | None = None,
        start_times: Sequence[float] | None = None,
        check=None,
        faults=None,
    ) -> LoopResult:
        """Run the loop under a schedule through the runtime system.

        ``rng`` drives the per-thread wake jitter (OS noise); pass a
        stream seeded per invocation for reproducible-yet-varying
        arrival orders, or ``None`` for none.

        ``start_times`` gives each thread its own entry time into the
        work-sharing construct — how threads arrive after a preceding
        ``nowait`` loop. Defaults to everyone entering at ``start_time``.

        ``check`` is an opt-in conformance recorder
        (:class:`repro.check.recording.CheckContext`); it observes the
        run without altering any scheduling decision.

        ``faults`` is an optional :class:`repro.faults.model.FaultPlan`
        whose event times are absolute virtual seconds. ``None`` or an
        empty plan is a strict no-op: the executor runs the exact
        fault-free code path and produces byte-identical results.

        The execution itself is delegated to the executor's
        :class:`~repro.backends.ExecutionBackend` (``reference`` by
        default); all backends share this method's semantics.
        """
        from repro.backends.common import LoopRunRequest

        req = LoopRunRequest(
            loop=loop,
            costs=costs,
            spec=spec,
            start_time=start_time,
            offline_sf=offline_sf,
            default_chunk=default_chunk,
            ownership=ownership,
            rng=rng,
            start_times=start_times,
            check=check,
            faults=faults,
        )
        return self.backend.run_scheduled(self, req)

    def _publish_sf_drift(self, loop: LoopSpec, dec_mark: int) -> None:
        """Replay this run's SF publications into drift timeseries.

        Scans the decision records appended during the run (the emitters
        already carry timestamps), so no scheduler needs changing: every
        SF estimate published at time t becomes a sample on
        ``sf_estimate{loop,type}``.
        """
        from repro.obs.decisions import SF_EVENTS

        reg = self.obs.registry
        for rec in self.obs.decisions.records[dec_mark:]:
            # Cheapest test first: almost every record is a non-SF event.
            if rec.get("event") not in SF_EVENTS:
                continue
            sf = rec.get("sf")
            if not sf or rec.get("loop") != loop.name:
                continue
            for j, v in sf.items():
                reg.timeseries(
                    "sf_estimate", loop=loop.name, type=j
                ).observe(float(rec["t"]), float(v))

    def _publish_loop_metrics(
        self,
        loop: LoopSpec,
        result: LoopResult,
        calls: Sequence[int],
        overhead_acc: Sequence[float],
        compute_acc: Sequence[float],
        attempts: int = 0,
        empty_takes: int = 0,
        engine=None,
    ) -> None:
        """Fold one runtime-scheduled loop execution into the registry.

        Counter semantics across repeated invocations of the same loop
        are additive; the two gauges keep the *last* invocation's shape.
        ``attempts``/``empty_takes`` are passed explicitly rather than
        read off the work-share structure: a batching backend advances
        the pool in closed form without touching it, yet must publish
        the same totals a stepped run would.
        """
        reg = self.obs.registry
        name = loop.name
        nt = self.team.n_threads
        h = self._loop_metric_handles.get(name)
        if h is None:
            # First invocation of this loop: fetch every handle once.
            # The registry get-or-creates by (name, labels), so these are
            # the same instruments ad-hoc accessors would return; the
            # cache only skips rebuilding label keys per invocation.
            h = {
                "inv": reg.counter("loop_invocations_total", loop=name),
                "att": reg.counter(
                    "workshare_take_attempts_total", loop=name
                ),
                "emp": reg.counter("workshare_take_empty_total", loop=name),
                "chunks": reg.histogram("chunk_size_iterations", loop=name),
                "per_tid": [
                    (
                        reg.counter("dispatches_total", loop=name, tid=tid),
                        reg.counter("sched_calls_total", loop=name, tid=tid),
                        reg.counter("iterations_total", loop=name, tid=tid),
                        reg.counter(
                            "runtime_overhead_seconds_total",
                            loop=name, tid=tid,
                        ),
                        reg.counter(
                            "compute_seconds_total", loop=name, tid=tid
                        ),
                    )
                    for tid in range(nt)
                ],
                "sim": {},
                "dur": reg.gauge("loop_last_duration_seconds", loop=name),
                "imb": reg.gauge("loop_last_imbalance", loop=name),
            }
            self._loop_metric_handles[name] = h
        h["inv"].inc()
        h["att"].inc(attempts)
        h["emp"].inc(empty_takes)
        chunks = h["chunks"]
        if len(result.ranges) > 256:
            # Fine-grained dynamic runs produce one range per chunk;
            # fold the whole column at once (bucket- and sum-exact, see
            # Histogram.observe_many).
            arr = np.asarray(result.ranges, dtype=np.int64)
            dispatches_by_tid = np.bincount(
                arr[:, 0], minlength=nt
            ).tolist()
            chunks.observe_many(arr[:, 2] - arr[:, 1])
        else:
            dispatches_by_tid = [0] * nt
            for tid, lo, hi in result.ranges:
                dispatches_by_tid[tid] += 1
                chunks.observe(hi - lo)
        for tid, (c_disp, c_calls, c_iters, c_ovh, c_cmp) in enumerate(
            h["per_tid"]
        ):
            c_disp.inc(dispatches_by_tid[tid])
            c_calls.inc(calls[tid])
            c_iters.inc(result.iterations[tid])
            c_ovh.inc(overhead_acc[tid])
            c_cmp.inc(compute_acc[tid])
        # Sim-time cost attribution: where did the loop's simulated
        # seconds go, per core type? Stall seconds (fault injection adds
        # them into dispatch overhead) are pulled back out so the
        # categories stay disjoint and sum to total busy time.
        by_type: dict[str, list[float]] = {}
        for tid in range(nt):
            tname = self.team.core_type_of(tid).name
            stall = engine.stall_seconds_of(tid) if engine is not None else 0.0
            slot = by_type.setdefault(tname, [0.0, 0.0, 0.0])
            slot[0] += compute_acc[tid]
            slot[1] += max(0.0, overhead_acc[tid] - stall)
            slot[2] += stall
        sim = h["sim"]
        for tname, (comp, ovh, stall) in sorted(by_type.items()):
            pair = sim.get(tname)
            if pair is None:
                pair = sim[tname] = (
                    reg.counter(
                        "sim_time_seconds_total", loop=name,
                        core_type=tname, category="compute",
                    ),
                    reg.counter(
                        "sim_time_seconds_total", loop=name,
                        core_type=tname, category="overhead",
                    ),
                )
            pair[0].inc(comp)
            pair[1].inc(ovh)
            if engine is not None:
                reg.counter(
                    "sim_time_seconds_total", loop=name, core_type=tname,
                    category="stall",
                ).inc(stall)
        h["dur"].set(result.duration)
        h["imb"].set(result.imbalance)
