"""Discrete-event execution of one parallel loop.

The executor is the meeting point of every substrate: it takes a
:class:`~repro.runtime.team.Team` (threads pinned on an AMP), a
per-iteration cost vector, a :class:`~repro.perfmodel.speed.PerfModel`
(work units -> seconds per core) and a
:class:`~repro.sched.base.ScheduleSpec`, and plays out the loop on the
discrete-event simulator:

* each worker thread alternates *dispatch* (one scheduler call, charged
  as runtime overhead) and *compute* (executing the returned iteration
  range at its core's rate);
* AID sampling timestamps charged through the loop context are added to
  the thread's next compute block;
* everything is optionally recorded into a trace.

Event ordering is exactly the semantics that matter to the paper: the
thread that finishes its chunk first reaches the shared pool first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.obs import NULL_OBS, Observability
from repro.perfmodel.locality import LocalityModel, LoopOwnership
from repro.perfmodel.overhead import OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.context import LoopContext
from repro.runtime.team import Team
from repro.sched.base import LoopScheduler, ScheduleSpec
from repro.sched.static import static_block
from repro.tracing.trace import ThreadState, TraceRecorder
from repro.workloads.loopspec import LoopSpec

#: Safety bound on events per loop execution (dispatches are at most one
#: per iteration plus per-thread bookkeeping; anything past this is a
#: livelocked policy).
_EVENT_BUDGET_SLACK = 64


@dataclass
class LoopResult:
    """Outcome of one parallel-loop execution.

    Attributes:
        loop_name: the executed loop.
        start_time: when all threads entered the loop.
        end_time: when the last thread finished its share (barrier cost
            not yet included — the program runner adds it).
        finish_times: per-TID completion times.
        iterations: per-TID executed iteration counts.
        dispatches: successful pool removals (0 for inline static).
        scheduler_calls: total scheduler invocations, including the final
            empty-handed ones.
        estimated_sf: per-core-type SF the scheduler sampled, if any.
        ranges: every assigned iteration range as ``(tid, lo, hi)``, in
            assignment order — the raw distribution, used by the locality
            model and by analyses/tests.
    """

    loop_name: str
    start_time: float
    end_time: float
    finish_times: list[float]
    iterations: list[int]
    dispatches: int
    scheduler_calls: int
    estimated_sf: dict[int, float] | None = None
    ranges: list[tuple[int, int, int]] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def imbalance(self) -> float:
        """Relative load imbalance: (max - min) / max of thread busy time.

        0 = perfectly balanced. Computed over finish times relative to
        the loop start.
        """
        busy = [t - self.start_time for t in self.finish_times]
        peak = max(busy)
        return 0.0 if peak <= 0 else (peak - min(busy)) / peak


class LoopExecutor:
    """Executes parallel loops for one (team, models) configuration.

    Args:
        team: threads pinned onto the platform.
        perf: performance model for the platform.
        overhead: runtime-call cost model.
        recorder: optional trace recorder.
        obs: observability bundle receiving per-loop counters and the
            scheduler decision log; defaults to the null sink (hooks are
            a single flag check, simulated results are unchanged).
    """

    def __init__(
        self,
        team: Team,
        perf: PerfModel,
        overhead: OverheadModel | None = None,
        recorder: TraceRecorder | None = None,
        locality: LocalityModel | None = None,
        background_cpus: tuple[int, ...] = (),
        obs: Observability | None = None,
    ) -> None:
        self.team = team
        self.perf = perf
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.recorder = recorder
        self.obs = obs if obs is not None else NULL_OBS
        self.locality = locality if locality is not None else LocalityModel()
        #: CPUs occupied by *other* applications co-located on the
        #: platform (Sec. 4.3 scenarios); they count as LLC co-runners.
        self.background_cpus = tuple(background_cpus)

    # -- rates -----------------------------------------------------------------

    def rates_for(self, loop: LoopSpec) -> list[float]:
        """Per-TID execution rate (work units/second) for this loop,
        under the team's full co-running contention (including any
        co-located applications' threads)."""
        cpus = tuple(self.team.mapping.cpu_of_tid) + self.background_cpus
        return [
            self.perf.rate(self.team.cpu_of(tid), loop.kernel, cpus)
            for tid in range(self.team.n_threads)
        ]

    # -- inline static (vanilla-compiler) path ------------------------------------

    def run_inline_static(
        self,
        loop: LoopSpec,
        costs: np.ndarray,
        start_time: float = 0.0,
        ownership: LoopOwnership | None = None,
    ) -> LoopResult:
        """Run the loop as vanilla GCC lowers clause-less loops: an even
        split baked into the code, zero runtime calls."""
        nt = self.team.n_threads
        prefix = np.concatenate(([0.0], np.cumsum(costs)))
        rates = self.rates_for(loop)
        finish = [start_time] * nt
        iters = [0] * nt
        ranges: list[tuple[int, int, int]] = []
        for tid in range(nt):
            lo, hi = static_block(len(costs), nt, tid)
            work = float(prefix[hi] - prefix[lo])
            slowdown = self.locality.slowdown(loop.kernel, ownership, tid, lo, hi)
            finish[tid] = start_time + slowdown * work / rates[tid]
            iters[tid] = hi - lo
            if hi > lo:
                ranges.append((tid, lo, hi))
            if self.recorder is not None and hi > lo:
                self.recorder.record(
                    tid, ThreadState.COMPUTE, start_time, finish[tid], loop.name
                )
        result = LoopResult(
            loop_name=loop.name,
            start_time=start_time,
            end_time=max(finish),
            finish_times=finish,
            iterations=iters,
            dispatches=0,
            scheduler_calls=0,
            ranges=ranges,
        )
        if self.obs.enabled:
            reg = self.obs.registry
            reg.counter("loop_invocations_total", loop=loop.name).inc()
            type_names = [self.team.core_type_of(t).name for t in range(nt)]
            sim_time: dict[str, float] = {}
            for tid in range(nt):
                reg.counter("iterations_total", loop=loop.name, tid=tid).inc(
                    iters[tid]
                )
                reg.counter("compute_seconds_total", loop=loop.name, tid=tid).inc(
                    finish[tid] - start_time
                )
                tname = type_names[tid]
                sim_time[tname] = sim_time.get(tname, 0.0) + (
                    finish[tid] - start_time
                )
                if finish[tid] > start_time:
                    reg.timeseries(
                        "core_utilization", mode="busy", loop=loop.name,
                        core_type=tname, norm=float(type_names.count(tname)),
                    ).observe_span(start_time, finish[tid])
            for tname, seconds in sorted(sim_time.items()):
                reg.counter(
                    "sim_time_seconds_total", loop=loop.name,
                    core_type=tname, category="compute",
                ).inc(seconds)
            reg.gauge("loop_last_duration_seconds", loop=loop.name).set(
                result.duration
            )
            reg.gauge("loop_last_imbalance", loop=loop.name).set(result.imbalance)
        return result

    # -- runtime-scheduled path ------------------------------------------------------

    def run(
        self,
        loop: LoopSpec,
        costs: np.ndarray,
        spec: ScheduleSpec,
        start_time: float = 0.0,
        offline_sf: Mapping[int, float] | None = None,
        default_chunk: int = 1,
        ownership: LoopOwnership | None = None,
        rng: np.random.Generator | None = None,
        start_times: Sequence[float] | None = None,
        check=None,
        faults=None,
    ) -> LoopResult:
        """Run the loop under a schedule through the runtime system.

        ``rng`` drives the per-thread wake jitter (OS noise); pass a
        stream seeded per invocation for reproducible-yet-varying
        arrival orders, or ``None`` for none.

        ``start_times`` gives each thread its own entry time into the
        work-sharing construct — how threads arrive after a preceding
        ``nowait`` loop. Defaults to everyone entering at ``start_time``.

        ``check`` is an opt-in conformance recorder
        (:class:`repro.check.recording.CheckContext`); it observes the
        run without altering any scheduling decision.

        ``faults`` is an optional :class:`repro.faults.model.FaultPlan`
        whose event times are absolute virtual seconds. ``None`` or an
        empty plan is a strict no-op: the executor runs the exact
        fault-free code path and produces byte-identical results.
        """
        from repro.sim.events import Simulator
        from repro.sim.clock import VirtualClock

        if len(costs) != loop.n_iterations:
            raise SimulationError(
                f"cost vector length {len(costs)} != trip count {loop.n_iterations}"
            )
        if spec.requires_bs_mapping:
            self.team.assert_bs_convention()
        if check is not None:
            check.on_loop_begin(
                loop_name=loop.name,
                n_iterations=loop.n_iterations,
                spec_name=spec.name,
            )
            check.on_team(self.team.conformance_info())

        nt = self.team.n_threads
        if start_times is not None:
            if len(start_times) != nt:
                raise SimulationError(
                    f"{len(start_times)} start times for {nt} threads"
                )
            start_time = min(start_times)
        entry = (
            list(start_times) if start_times is not None else [start_time] * nt
        )
        prefix = np.concatenate(([0.0], np.cumsum(costs)))
        rates = self.rates_for(loop)
        core_types = [self.team.core_type_of(tid) for tid in range(nt)]

        pending_overhead = [0.0] * nt

        def charge_timestamp(tid: int) -> None:
            pending_overhead[tid] += self.overhead.timestamp(core_types[tid])

        ctx = LoopContext(
            team=self.team,
            n_iterations=loop.n_iterations,
            default_chunk=default_chunk,
            lock=None,
            offline_sf=offline_sf,
            charge_timestamp=charge_timestamp,
            obs=self.obs,
            loop_name=loop.name,
            check=check,
        )
        scheduler: LoopScheduler = spec.create(ctx)

        sim = Simulator(VirtualClock(start_time))
        engine = None
        if faults is not None and not faults.is_empty:
            from repro.faults.engine import SimFaultEngine

            engine = SimFaultEngine(
                plan=faults,
                sim=sim,
                scheduler=scheduler,
                prefix=prefix,
                cpu_of_tid=[self.team.cpu_of(t) for t in range(nt)],
                loop_name=loop.name,
                obs=self.obs,
                check=check,
            )
        finish = list(entry)
        iters = [0] * nt
        calls = [0] * nt
        # The work-share cache line is a serialization point: each
        # fetch-and-add occupies it for atomic_service seconds, and a
        # thread arriving while it is busy queues behind it.
        pool_free_at = [start_time]
        svc = self.overhead.atomic_service
        assigned: list[tuple[int, int, int]] = []
        # Per-tid time accounting for the metrics registry; two float
        # adds per dispatch, published once at loop end — skipped
        # entirely when obs is off so the hot path stays unchanged.
        track_obs = self.obs.enabled
        overhead_acc = [0.0] * nt
        compute_acc = [0.0] * nt
        # Time-resolved instruments (windowed samplers + tail digests),
        # created once per run and fed from the dispatch closures. All
        # None when obs is off; every touch sits behind track_obs.
        util_of = rate_of = None
        runnable_ts = chunk_ts = None
        dispatch_digest = compute_digest = size_digest = None
        dec_mark = 0
        if track_obs:
            reg = self.obs.registry
            type_names = [ct.name for ct in core_types]
            util_by_type = {
                tname: reg.timeseries(
                    "core_utilization", mode="busy", loop=loop.name,
                    core_type=tname, norm=float(type_names.count(tname)),
                )
                for tname in dict.fromkeys(type_names)
            }
            util_of = [util_by_type[tname] for tname in type_names]
            rate_by_type = {
                tname: reg.timeseries(
                    "worker_rate", loop=loop.name, core_type=tname
                )
                for tname in dict.fromkeys(type_names)
            }
            rate_of = [rate_by_type[tname] for tname in type_names]
            runnable_ts = reg.timeseries("runnable_iterations", loop=loop.name)
            chunk_ts = reg.timeseries("chunk_size", loop=loop.name)
            dispatch_digest = reg.digest(
                "dispatch_overhead_seconds", loop=loop.name
            )
            compute_digest = reg.digest("chunk_compute_seconds", loop=loop.name)
            size_digest = reg.digest("chunk_size_iters", loop=loop.name)
            dec_mark = len(self.obs.decisions.records)

        def thread_step(tid: int) -> None:
            now = sim.now
            dispatch_cost = self.overhead.dispatch(core_types[tid], nt)
            takes_before = ctx.workshare.dispatch_count
            got = scheduler.next_range(tid, now)
            calls[tid] += 1
            if check is not None:
                check.on_dispatch(tid, now, got)
            extra = pending_overhead[tid]
            pending_overhead[tid] = 0.0
            overhead_dt = dispatch_cost + extra
            if svc > 0.0:
                # Serialize only genuine pool accesses: successful
                # removals, plus the final fetch-and-add that finds the
                # pool empty. Policies serving thread-local ranges (e.g.
                # AID-steal) never queue on the work-share line.
                takes = ctx.workshare.dispatch_count - takes_before
                if got is None:
                    takes += 1
                if takes > 0:
                    begin = max(now, pool_free_at[0])
                    pool_free_at[0] = begin + takes * svc
                    overhead_dt += (begin - now) + takes * svc
            if track_obs:
                overhead_acc[tid] += overhead_dt
                dispatch_digest.observe(overhead_dt)
                runnable_ts.observe(now, ctx.workshare.remaining)
            if got is None:
                end = now + overhead_dt
                finish[tid] = end
                if track_obs:
                    util_of[tid].observe_span(now, end)
                if self.recorder is not None:
                    self.recorder.record(
                        tid, ThreadState.RUNTIME, now, end, loop.name
                    )
                return
            lo, hi = got
            assigned.append((tid, lo, hi))
            scheduler.note_execution_start(tid, now + overhead_dt)
            work = float(prefix[hi] - prefix[lo])
            slowdown = self.locality.slowdown(loop.kernel, ownership, tid, lo, hi)
            compute_dt = slowdown * work / rates[tid]
            iters[tid] += hi - lo
            t_overhead_end = now + overhead_dt
            t_done = t_overhead_end + compute_dt
            if track_obs:
                compute_acc[tid] += compute_dt
                chunk_ts.observe(now, hi - lo)
                size_digest.observe(hi - lo)
                compute_digest.observe(compute_dt)
                if compute_dt > 0.0:
                    rate_of[tid].observe(t_overhead_end, work / compute_dt)
                util_of[tid].observe_span(now, t_done)
            if self.recorder is not None:
                self.recorder.record(
                    tid, ThreadState.RUNTIME, now, t_overhead_end, loop.name
                )
                self.recorder.record(
                    tid, ThreadState.COMPUTE, t_overhead_end, t_done, loop.name
                )
            sim.at(t_done, lambda: thread_step(tid), tag=f"t{tid}")

        # Fault-aware variant of thread_step, used only when a non-empty
        # FaultPlan is injected. Per-chunk accounting (conformance
        # dispatch record, executed range, iteration/compute counters,
        # COMPUTE trace segment) is deferred to block completion or
        # preemption, because a fault may truncate the chunk; the record
        # keeps the *original* dispatch timestamp so per-thread clock
        # monotonicity is preserved. The fault-free path above is left
        # untouched so an absent plan stays byte-identical.
        def thread_step_faulted(tid: int) -> None:
            now = sim.now
            engine.on_wake(tid)
            if engine.is_parked(tid):
                return
            dispatch_cost = self.overhead.dispatch(core_types[tid], nt)
            takes_before = ctx.workshare.dispatch_count
            got = scheduler.next_range(tid, now)
            calls[tid] += 1
            extra = pending_overhead[tid]
            pending_overhead[tid] = 0.0
            overhead_dt = dispatch_cost + extra
            if svc > 0.0:
                takes = ctx.workshare.dispatch_count - takes_before
                if got is None:
                    takes += 1
                if takes > 0:
                    begin = max(now, pool_free_at[0])
                    pool_free_at[0] = begin + takes * svc
                    overhead_dt += (begin - now) + takes * svc
            overhead_dt = engine.adjust_overhead(tid, now, overhead_dt)
            if track_obs:
                overhead_acc[tid] += overhead_dt
                dispatch_digest.observe(overhead_dt)
                runnable_ts.observe(now, ctx.workshare.remaining)
            if got is None:
                end = now + overhead_dt
                finish[tid] = end
                if track_obs:
                    util_of[tid].observe_span(now, end)
                if check is not None:
                    check.on_dispatch(tid, now, None)
                if self.recorder is not None:
                    self.recorder.record(
                        tid, ThreadState.RUNTIME, now, end, loop.name
                    )
                engine.worker_retired(tid)
                return
            lo, hi = got
            if track_obs:
                chunk_ts.observe(now, hi - lo)
                size_digest.observe(hi - lo)
            t_overhead_end = now + overhead_dt
            scheduler.note_execution_start(tid, t_overhead_end)
            # The RUNTIME trace segment is deferred with the rest of the
            # per-chunk accounting: a preemption inside the overhead
            # window must truncate it at the preempt time.
            slowdown = self.locality.slowdown(loop.kernel, ownership, tid, lo, hi)
            engine.begin_block(
                tid,
                dispatch_t=now,
                compute_start=t_overhead_end,
                lo=lo,
                hi=hi,
                speed0=rates[tid] / slowdown,
            )

        if engine is not None:

            def _fault_restart(tid: int, t: float) -> None:
                sim.at(
                    t,
                    (lambda w: lambda: thread_step_faulted(w))(tid),
                    tag=f"t{tid}",
                )

            def _fault_record_exec(
                tid: int, dispatch_t: float, lo: int, hi: int,
                t0: float, t1: float,
            ) -> None:
                if track_obs:
                    compute_acc[tid] += max(0.0, t1 - t0)
                    util_of[tid].observe_span(dispatch_t, t1)
                    if hi > lo and t1 > t0:
                        compute_digest.observe(t1 - t0)
                        # Effective rate over the executed sub-range:
                        # fault throttles show up as steps here.
                        rate_of[tid].observe(
                            t0, float(prefix[hi] - prefix[lo]) / (t1 - t0)
                        )
                if self.recorder is not None:
                    if t0 > dispatch_t:
                        self.recorder.record(
                            tid, ThreadState.RUNTIME, dispatch_t, t0, loop.name
                        )
                    if t1 > t0:
                        self.recorder.record(
                            tid, ThreadState.COMPUTE, t0, t1, loop.name
                        )
                if hi > lo:
                    if check is not None:
                        check.on_dispatch(tid, dispatch_t, (lo, hi))
                    assigned.append((tid, lo, hi))
                    iters[tid] += hi - lo

            def _fault_set_finish(tid: int, t: float) -> None:
                finish[tid] = t

            engine.bind(_fault_restart, _fault_record_exec, _fault_set_finish)
            # Plan firings are scheduled before the worker wake events so
            # that at equal times the fault fires first (lower seq) —
            # deterministic tie-breaking, per the sim's FIFO contract.
            engine.schedule(start_time)

        step = thread_step if engine is None else thread_step_faulted

        # Every thread pays the loop-start call, then begins dispatching.
        # The barrier release wakes cores in CPU-number order, so threads
        # on low-numbered (small) cores reach the pool slightly earlier —
        # harmless for most schedules, decisive for guided's large early
        # chunks.
        jitter = (
            rng.uniform(0.0, self.overhead.wake_jitter, size=nt)
            if rng is not None and self.overhead.wake_jitter > 0.0
            else np.zeros(nt)
        )
        for tid in range(nt):
            wake = self.overhead.wake_stagger * self.team.cpu_of(tid) + jitter[tid]
            t_begin = entry[tid] + wake + self.overhead.loop_start(core_types[tid])
            if track_obs:
                overhead_acc[tid] += t_begin - entry[tid]
                util_of[tid].observe_span(entry[tid], t_begin)
            if self.recorder is not None:
                self.recorder.record(
                    tid, ThreadState.RUNTIME, entry[tid], t_begin, loop.name
                )
            sim.at(t_begin, (lambda t: lambda: step(t))(tid), tag=f"t{tid}")

        budget = (loop.n_iterations + nt * _EVENT_BUDGET_SLACK) * 2
        if engine is not None:
            # The fault path schedules a separate restart event after
            # each completed block, and every fault boundary can preempt
            # (and thus re-dispatch) up to one chunk per thread.
            budget = (2 * loop.n_iterations + nt * _EVENT_BUDGET_SLACK) * 2
            budget += (nt + 2) * (engine.n_plan_events + 2) * 4
        sim.run(max_events=budget)

        total_iters = sum(iters)
        if total_iters != loop.n_iterations:
            raise SimulationError(
                f"schedule {spec.name!r} executed {total_iters} of "
                f"{loop.n_iterations} iterations in loop {loop.name!r}"
            )

        result = LoopResult(
            loop_name=loop.name,
            start_time=start_time,
            end_time=max(finish),
            finish_times=finish,
            iterations=iters,
            dispatches=ctx.workshare.dispatch_count,
            scheduler_calls=sum(calls),
            estimated_sf=scheduler.estimated_sf(),
            ranges=assigned,
            extra={"scheduler": scheduler},
        )
        if check is not None:
            check.on_loop_end(result)
        if engine is not None:
            engine.publish()
        if self.obs.enabled:
            self._publish_sf_drift(loop, dec_mark)
            self._publish_loop_metrics(
                loop, ctx, result, calls, overhead_acc, compute_acc,
                engine=engine,
            )
        return result

    def _publish_sf_drift(self, loop: LoopSpec, dec_mark: int) -> None:
        """Replay this run's SF publications into drift timeseries.

        Scans the decision records appended during the run (the emitters
        already carry timestamps), so no scheduler needs changing: every
        SF estimate published at time t becomes a sample on
        ``sf_estimate{loop,type}``.
        """
        from repro.obs.decisions import SF_EVENTS

        reg = self.obs.registry
        for rec in self.obs.decisions.records[dec_mark:]:
            sf = rec.get("sf")
            if not sf or rec.get("event") not in SF_EVENTS:
                continue
            if rec.get("loop") != loop.name:
                continue
            for j, v in sf.items():
                reg.timeseries(
                    "sf_estimate", loop=loop.name, type=j
                ).observe(float(rec["t"]), float(v))

    def _publish_loop_metrics(
        self,
        loop: LoopSpec,
        ctx: LoopContext,
        result: LoopResult,
        calls: Sequence[int],
        overhead_acc: Sequence[float],
        compute_acc: Sequence[float],
        engine=None,
    ) -> None:
        """Fold one runtime-scheduled loop execution into the registry.

        Counter semantics across repeated invocations of the same loop
        are additive; the two gauges keep the *last* invocation's shape.
        """
        reg = self.obs.registry
        name = loop.name
        nt = self.team.n_threads
        reg.counter("loop_invocations_total", loop=name).inc()
        reg.counter("workshare_take_attempts_total", loop=name).inc(
            ctx.workshare.attempt_count
        )
        reg.counter("workshare_take_empty_total", loop=name).inc(
            ctx.workshare.empty_take_count
        )
        dispatches_by_tid = [0] * nt
        chunks = reg.histogram("chunk_size_iterations", loop=name)
        for tid, lo, hi in result.ranges:
            dispatches_by_tid[tid] += 1
            chunks.observe(hi - lo)
        for tid in range(nt):
            reg.counter("dispatches_total", loop=name, tid=tid).inc(
                dispatches_by_tid[tid]
            )
            reg.counter("sched_calls_total", loop=name, tid=tid).inc(calls[tid])
            reg.counter("iterations_total", loop=name, tid=tid).inc(
                result.iterations[tid]
            )
            reg.counter(
                "runtime_overhead_seconds_total", loop=name, tid=tid
            ).inc(overhead_acc[tid])
            reg.counter("compute_seconds_total", loop=name, tid=tid).inc(
                compute_acc[tid]
            )
        # Sim-time cost attribution: where did the loop's simulated
        # seconds go, per core type? Stall seconds (fault injection adds
        # them into dispatch overhead) are pulled back out so the
        # categories stay disjoint and sum to total busy time.
        by_type: dict[str, list[float]] = {}
        for tid in range(nt):
            tname = self.team.core_type_of(tid).name
            stall = engine.stall_seconds_of(tid) if engine is not None else 0.0
            slot = by_type.setdefault(tname, [0.0, 0.0, 0.0])
            slot[0] += compute_acc[tid]
            slot[1] += max(0.0, overhead_acc[tid] - stall)
            slot[2] += stall
        for tname, (comp, ovh, stall) in sorted(by_type.items()):
            reg.counter(
                "sim_time_seconds_total", loop=name, core_type=tname,
                category="compute",
            ).inc(comp)
            reg.counter(
                "sim_time_seconds_total", loop=name, core_type=tname,
                category="overhead",
            ).inc(ovh)
            if engine is not None:
                reg.counter(
                    "sim_time_seconds_total", loop=name, core_type=tname,
                    category="stall",
                ).inc(stall)
        reg.gauge("loop_last_duration_seconds", loop=name).set(result.duration)
        reg.gauge("loop_last_imbalance", loop=name).set(result.imbalance)
