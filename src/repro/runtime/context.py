"""Per-loop execution context handed to schedulers.

A :class:`LoopContext` is created by the executor for each parallel-loop
execution. It owns the :class:`~repro.runtime.workshare.WorkShare` pool
and exposes exactly the information the paper's schedulers consume: team
shape (thread counts per core type), the default chunk, optional offline
SF values, and a way to charge sampling-phase timestamp costs to a
thread.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Mapping

from repro.errors import ConfigError
from repro.obs import NULL_OBS, Observability
from repro.runtime.team import Team
from repro.runtime.workshare import WorkShare


@dataclass(frozen=True)
class ThreadView:
    """What a scheduler may know about one worker thread."""

    tid: int
    cpu_id: int
    type_index: int


class LoopContext:
    """Shared state for one execution of one parallel loop.

    Args:
        team: the executing thread team.
        n_iterations: loop trip count.
        default_chunk: chunk used when a scheduler needs one and none was
            configured (libgomp uses 1 for dynamic).
        lock: lock protecting shared scheduler state under real threads;
            ``None`` in the simulator.
        offline_sf: optional per-core-type offline speedup factors for
            this loop, indexed by type (entry 0, the slowest type, should
            be 1.0). Used by the AID-static(offline-SF) variant of Fig. 9.
        charge_timestamp: callback ``(tid) -> None`` charging one
            clock-read overhead to the thread; wired by the executor.
        obs: observability bundle; schedulers emit decision records
            through it. Defaults to the null sink.
        loop_name: the executed loop's name, stamped onto decision
            records and metric labels.
        check: optional conformance recorder (a
            :class:`repro.check.recording.CheckContext`). Threaded into
            the work-share pool and read by the AID schedulers, which
            mirror state transitions and decision records into it so the
            oracle works from ground truth even with observability off.
    """

    def __init__(
        self,
        team: Team,
        n_iterations: int,
        default_chunk: int = 1,
        lock: threading.Lock | None = None,
        offline_sf: Mapping[int, float] | None = None,
        charge_timestamp: Callable[[int], None] | None = None,
        obs: Observability | None = None,
        loop_name: str = "",
        check=None,
    ) -> None:
        if n_iterations < 0:
            raise ConfigError(f"negative trip count {n_iterations}")
        if default_chunk <= 0:
            raise ConfigError(f"default chunk must be positive, got {default_chunk}")
        self.team = team
        self.n_iterations = int(n_iterations)
        self.default_chunk = int(default_chunk)
        self._lock = lock
        self.offline_sf = dict(offline_sf) if offline_sf is not None else None
        self._charge_timestamp = charge_timestamp
        self.obs = obs if obs is not None else NULL_OBS
        self.loop_name = loop_name
        self.check = check
        # One reusable guard object: nullcontext is stateless, so a
        # single instance serves every `with ctx.lock:` (allocating one
        # per dispatch is measurable on fine-grained loops).
        self._lock_cm: ContextManager[object] = (
            nullcontext() if lock is None else lock
        )
        self.workshare = WorkShare(0, n_iterations, lock, check=check)
        self.threads = tuple(
            ThreadView(
                tid=t,
                cpu_id=team.cpu_of(t),
                type_index=team.type_index_of(t),
            )
            for t in range(team.n_threads)
        )

    # -- team shape ---------------------------------------------------------

    @property
    def n_threads(self) -> int:
        return self.team.n_threads

    @property
    def n_types(self) -> int:
        return self.team.n_types

    def type_of(self, tid: int) -> int:
        return self.threads[tid].type_index

    def type_counts(self) -> tuple[int, ...]:
        return self.team.type_counts()

    # -- concurrency --------------------------------------------------------

    @property
    def lock(self) -> ContextManager[object]:
        """Guard for scheduler shared state (no-op in the simulator)."""
        return self._lock_cm

    def make_lock(self) -> threading.Lock | None:
        """The raw lock (or None) for building atomics with the same
        protection domain as this context."""
        return self._lock

    # -- overhead hooks -------------------------------------------------------

    def charge_timestamp(self, tid: int) -> None:
        """Charge one timestamp-read cost to thread ``tid`` (AID sampling)."""
        if self._charge_timestamp is not None:
            self._charge_timestamp(tid)

    def offline_sf_for_type(self, type_index: int) -> float:
        """Offline SF for a core type; raises if none was supplied."""
        if self.offline_sf is None:
            raise ConfigError(
                "scheduler requires offline SF values but none were supplied "
                "for this loop"
            )
        try:
            return float(self.offline_sf[type_index])
        except KeyError:
            raise ConfigError(
                f"offline SF table has no entry for core type {type_index}"
            ) from None
