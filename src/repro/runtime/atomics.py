"""Atomic primitives shared by the simulated and real-thread runtimes.

libgomp's dynamic schedule removes iterations from the shared pool with a
single fetch-and-add instruction; the AID extensions add two atomic time
accumulators and an atomic completed-sampling counter (paper Sec. 4.2,
footnote 2). We reproduce those semantics behind a tiny interface:

* in the discrete-event simulator events run one at a time, so a plain
  variable is already atomic — the default ``lock=None`` path;
* in the real-thread executor (:mod:`repro.exec_real`) a
  ``threading.Lock`` is passed in and every read-modify-write takes it.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import ContextManager, Union

#: Any lock usable as a context manager. Callers that invoke atomics
#: while already holding the same lock (the AID schedulers do) must pass
#: an RLock.
LockLike = Union[threading.Lock, threading.RLock, None]


def _guard(lock: LockLike) -> ContextManager[object]:
    return nullcontext() if lock is None else lock


class AtomicCounter:
    """Integer with fetch-and-add semantics."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0, lock: LockLike = None) -> None:
        self._value = int(value)
        self._lock = lock

    @property
    def value(self) -> int:
        return self._value

    def fetch_add(self, delta: int) -> int:
        """Atomically add ``delta``; return the value *before* the add."""
        lock = self._lock
        if lock is None:
            # Simulator path: events run one at a time, no guard needed.
            # This is the hottest primitive in fine-grained dynamic runs,
            # so it skips the context-manager machinery entirely.
            old = self._value
            self._value = old + int(delta)
            return old
        with lock:
            old = self._value
            self._value = old + int(delta)
            return old

    def add_fetch(self, delta: int) -> int:
        """Atomically add ``delta``; return the value *after* the add."""
        lock = self._lock
        if lock is None:
            value = self._value + int(delta)
            self._value = value
            return value
        with lock:
            self._value += int(delta)
            return self._value

    def store(self, value: int) -> None:
        with _guard(self._lock):
            self._value = int(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCounter({self._value})"


class AtomicFloat:
    """Float accumulator with atomic add (the AID time-sum counters)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: float = 0.0, lock: LockLike = None) -> None:
        self._value = float(value)
        self._lock = lock

    @property
    def value(self) -> float:
        return self._value

    def add(self, delta: float) -> float:
        """Atomically add ``delta``; return the value after the add."""
        lock = self._lock
        if lock is None:
            value = self._value + float(delta)
            self._value = value
            return value
        with lock:
            self._value += float(delta)
            return self._value

    def store(self, value: float) -> None:
        with _guard(self._lock):
            self._value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicFloat({self._value})"
