"""Thread teams: worker threads bound to cores of an AMP."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.amp.topology import AffinityMapping
from repro.errors import PlatformError


@dataclass(frozen=True)
class Team:
    """An OpenMP thread team pinned onto a platform.

    The paper's runtime binds threads to cores for the whole run (to avoid
    OS migrations) and AID additionally *assumes* the BS convention —
    threads ``0..N_B-1`` on big cores (Sec. 4.3). A :class:`Team` is just
    the platform + an explicit :class:`~repro.amp.topology.AffinityMapping`
    plus the derived lookups every scheduler needs.

    Attributes:
        platform: the AMP the team runs on.
        mapping: thread-to-core pinning.
    """

    platform: Platform
    mapping: AffinityMapping
    _type_of_tid: tuple[int, ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        self.mapping.validate_for(self.platform)
        types = tuple(
            self.platform.type_index(self.platform.core(cpu).core_type)
            for cpu in self.mapping.cpu_of_tid
        )
        object.__setattr__(self, "_type_of_tid", types)

    @property
    def n_threads(self) -> int:
        return self.mapping.n_threads

    @property
    def n_types(self) -> int:
        return self.platform.n_core_types

    def cpu_of(self, tid: int) -> int:
        """CPU number thread ``tid`` is pinned to."""
        return self.mapping.cpu_of_tid[tid]

    def core_type_of(self, tid: int):
        """The :class:`~repro.amp.core.CoreType` under thread ``tid``."""
        return self.platform.core(self.cpu_of(tid)).core_type

    def type_index_of(self, tid: int) -> int:
        """Core-type index (0 = slowest) under thread ``tid``."""
        return self._type_of_tid[tid]

    def type_counts(self) -> tuple[int, ...]:
        """Thread count per core type; index 0 is the slowest type.

        For a two-type AMP this is ``(N_S, N_B)`` in the paper's notation.
        """
        counts = [0] * self.n_types
        for t in self._type_of_tid:
            counts[t] += 1
        return tuple(counts)

    def threads_of_type(self, type_index: int) -> tuple[int, ...]:
        """TIDs pinned to cores of the given type."""
        return tuple(
            tid for tid, t in enumerate(self._type_of_tid) if t == type_index
        )

    @property
    def n_big(self) -> int:
        """Threads on the *fastest* core type (paper's N_B on 2-type AMPs)."""
        return self.type_counts()[-1]

    @property
    def n_small(self) -> int:
        """Threads on the slowest core type (paper's N_S on 2-type AMPs)."""
        return self.type_counts()[0]

    def publish_metrics(self, registry) -> None:
        """Record this team's shape as gauges in a metrics registry.

        Emits ``team_size`` plus one ``team_threads{type=...}`` gauge per
        core type, labelled with the type's name — the context every
        per-loop metric is read against (e.g. imbalance on a 4+4
        big.LITTLE means something different than on 6+2).
        """
        registry.gauge("team_size", mapping=self.mapping.name).set(
            self.n_threads
        )
        counts = self.type_counts()
        for j, n in enumerate(counts):
            registry.gauge(
                "team_threads",
                type=self.platform.core_types[j].name,
                type_index=j,
            ).set(n)

    def conformance_info(self) -> dict:
        """The team facts the schedule-conformance oracle reasons about.

        Recorded into a ``check=`` context at loop start so invariant
        checks (per-type AID targets, BS-convention-dependent
        properties, barrier completeness) work from the pinning that was
        actually in force, not one reconstructed from results.
        """
        types = self._type_of_tid
        return {
            "n_threads": self.n_threads,
            "n_types": self.n_types,
            "cpu_of_tid": list(self.mapping.cpu_of_tid),
            "type_of_tid": list(types),
            "type_counts": list(self.type_counts()),
            "bs_convention": all(
                types[i] >= types[i + 1] for i in range(len(types) - 1)
            ),
        }

    def assert_bs_convention(self) -> None:
        """Verify the AID mapping convention: TIDs sorted by descending
        core-type index (fast types first).

        All AID variants distribute iterations assuming threads with low
        TIDs sit on big cores; calling this catches mis-pinned teams the
        way GOMP_AMP_AFFINITY does in the paper's implementation.
        """
        types = self._type_of_tid
        if any(types[i] < types[i + 1] for i in range(len(types) - 1)):
            raise PlatformError(
                "AID requires the BS mapping convention (low TIDs on big "
                f"cores); got per-TID type indices {types}"
            )
