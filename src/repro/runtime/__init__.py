"""OpenMP-like runtime system (the libgomp analogue).

Structures mirror GNU libgomp's work-sharing implementation, which the
paper modifies: a :class:`WorkShare` holds the shared iteration pool
(``next``/``end`` fields consumed with fetch-and-add), a :class:`Team`
binds worker threads to cores, and :class:`LoopExecutor` drives one
parallel loop on the discrete-event simulator, charging runtime-call
overheads and recording traces. :class:`ProgramRunner` strings serial
phases and parallel loops into whole-application executions.
"""

from repro.runtime.atomics import AtomicCounter, AtomicFloat
from repro.runtime.workshare import WorkShare
from repro.runtime.team import Team
from repro.runtime.context import LoopContext, ThreadView
from repro.runtime.executor import LoopExecutor, LoopResult
from repro.runtime.program_runner import ProgramResult, ProgramRunner
from repro.runtime.env import OmpEnv

__all__ = [
    "AtomicCounter",
    "AtomicFloat",
    "WorkShare",
    "Team",
    "LoopContext",
    "ThreadView",
    "LoopExecutor",
    "LoopResult",
    "ProgramRunner",
    "ProgramResult",
    "OmpEnv",
]
