"""The work-share structure: libgomp's shared iteration pool.

For each parallel loop libgomp keeps a ``work_share`` structure whose
``next`` field is the first unassigned iteration and whose ``end`` field
is one past the last iteration. Threads steal chunks by atomically
incrementing ``next`` with fetch-and-add and clamping the result against
``end`` (paper Sec. 4.2). :class:`WorkShare` reproduces exactly that,
plus a dispatch counter used for overhead accounting in experiments.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import WorkShareError
from repro.runtime.atomics import AtomicCounter


class WorkShare:
    """Shared iteration pool for one parallel-loop execution.

    Iterations are the half-open range ``[start, end)``.

    Args:
        start: first iteration index.
        end: one past the last iteration index.
        lock: pass a ``threading.Lock`` when threads are real; ``None``
            in the discrete-event simulator.
        check: optional conformance recorder (a
            :class:`repro.check.recording.CheckContext`); when set, every
            fetch-and-add on ``next`` is reported with its pre-add value
            and clamped result, so the schedule-conformance oracle sees
            the pool's ground truth instead of reconstructed state.
    """

    def __init__(
        self,
        start: int,
        end: int,
        lock: threading.Lock | None = None,
        check=None,
    ) -> None:
        if end < start:
            raise WorkShareError(f"invalid iteration range [{start}, {end})")
        self.start = int(start)
        self.end = int(end)
        self._next = AtomicCounter(start, lock)
        self._dispatches = AtomicCounter(0, lock)
        # Empty-handed takes are counted separately (cold branch: once
        # per thread per loop) so the successful-take hot path pays no
        # extra atomic; attempt_count derives from the two.
        self._empty_takes = AtomicCounter(0, lock)
        # Ranges returned to the pool by fault recovery (preempted or
        # watchdog-redistributed chunks). Served before the fetch-and-add
        # pointer so returned work drains first; empty on every
        # fault-free run, so the hot path is a single falsy check.
        self._returned: deque[tuple[int, int]] = deque()
        self._check = check

    # -- pool state --------------------------------------------------------

    @property
    def n_iterations(self) -> int:
        """Total iterations in the loop."""
        return self.end - self.start

    @property
    def next_iteration(self) -> int:
        """First not-yet-assigned iteration (advisory read)."""
        return min(self._next.value, self.end)

    @property
    def remaining(self) -> int:
        """Iterations still in the pool (advisory read; may be stale under
        real threads, exactly like reading ``next``/``end`` in libgomp).
        Includes iterations returned to the pool by fault recovery."""
        left = max(0, self.end - self._next.value)
        return left + self.requeued_pending if self._returned else left

    @property
    def requeued_pending(self) -> int:
        """Iterations sitting in the returned-range queue (advisory)."""
        return sum(hi - lo for lo, hi in self._returned)

    @property
    def exhausted(self) -> bool:
        return self._next.value >= self.end and not self._returned

    @property
    def dispatch_count(self) -> int:
        """Number of successful pool removals so far."""
        return self._dispatches.value

    @property
    def attempt_count(self) -> int:
        """Fetch-and-add executions on ``next``, including the final
        empty-handed ones (the quantity the overhead model serializes on
        the work-share cache line; exported as
        ``workshare_take_attempts_total``)."""
        return self._dispatches.value + self._empty_takes.value

    @property
    def empty_take_count(self) -> int:
        """Fetch-and-adds that found the pool already drained."""
        return self._empty_takes.value

    # -- removal -----------------------------------------------------------

    def take(self, n: int) -> tuple[int, int] | None:
        """Atomically remove up to ``n`` iterations from the pool.

        This is ``gomp_iter_dynamic_next``'s core: fetch-and-add on
        ``next`` then clamp against ``end``.

        Returns:
            The removed half-open range ``(lo, hi)``, or ``None`` when the
            pool was already empty. The range may be shorter than ``n`` if
            fewer iterations remained.
        """
        if n <= 0:
            raise WorkShareError(f"chunk size must be positive, got {n}")
        if self._returned:
            try:
                lo, hi = self._returned.popleft()
            except IndexError:
                # Another thread drained the queue between the check and
                # the pop; fall through to the fetch-and-add path.
                pass
            else:
                if hi - lo > n:
                    self._returned.appendleft((lo + n, hi))
                    hi = lo + n
                self._dispatches.add_fetch(1)
                if self._check is not None:
                    self._check.on_take(n, lo, (lo, hi), requeued=True)
                return (lo, hi)
        nxt = self._next
        if nxt._lock is None:
            # Simulator path: inline the fetch-and-add pair (this is the
            # hottest call site of the whole dynamic-schedule hot loop).
            n = int(n)
            lo = nxt._value
            nxt._value = lo + n
            if lo >= self.end:
                counter = self._empty_takes
                counter._value += 1
                if self._check is not None:
                    self._check.on_take(n, lo, None)
                return None
            hi = min(lo + n, self.end)
            counter = self._dispatches
            counter._value += 1
            if self._check is not None:
                self._check.on_take(n, lo, (lo, hi))
            return (lo, hi)
        lo = nxt.fetch_add(n)
        if lo >= self.end:
            self._empty_takes.add_fetch(1)
            if self._check is not None:
                self._check.on_take(n, lo, None)
            return None
        hi = min(lo + n, self.end)
        self._dispatches.add_fetch(1)
        if self._check is not None:
            self._check.on_take(n, lo, (lo, hi))
        return (lo, hi)

    def take_all(self) -> tuple[int, int] | None:
        """Remove everything left in the pool (used by endgame paths).

        With returned ranges pending this serves the oldest of them
        first (a single contiguous range is all a caller can receive);
        policies that depend on ``take_all`` draining the pool in one
        shot override :meth:`repro.sched.base.LoopScheduler.reclaim`
        instead of requeueing here.
        """
        size = self.end - self.start
        return self.take(size) if size > 0 else None

    # -- fault recovery ----------------------------------------------------

    def requeue(self, lo: int, hi: int) -> None:
        """Return the half-open range ``[lo, hi)`` to the pool.

        Used by fault recovery when a chunk's owner is preempted (core
        offlined, throttle-triggered preemption) or declared stalled by
        the real-execution watchdog. The range must lie inside the
        loop's iteration space; it is handed back out by :meth:`take`
        before any fresh fetch-and-add work.
        """
        lo, hi = int(lo), int(hi)
        if not (self.start <= lo < hi <= self.end):
            raise WorkShareError(
                f"cannot requeue [{lo}, {hi}) into pool [{self.start}, {self.end})"
            )
        self._returned.append((lo, hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkShare([{self.start}, {self.end}), "
            f"next={self._next.value}, dispatches={self.dispatch_count})"
        )
