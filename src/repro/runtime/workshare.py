"""The work-share structure: libgomp's shared iteration pool.

For each parallel loop libgomp keeps a ``work_share`` structure whose
``next`` field is the first unassigned iteration and whose ``end`` field
is one past the last iteration. Threads steal chunks by atomically
incrementing ``next`` with fetch-and-add and clamping the result against
``end`` (paper Sec. 4.2). :class:`WorkShare` reproduces exactly that,
plus a dispatch counter used for overhead accounting in experiments.
"""

from __future__ import annotations

import threading

from repro.errors import WorkShareError
from repro.runtime.atomics import AtomicCounter


class WorkShare:
    """Shared iteration pool for one parallel-loop execution.

    Iterations are the half-open range ``[start, end)``.

    Args:
        start: first iteration index.
        end: one past the last iteration index.
        lock: pass a ``threading.Lock`` when threads are real; ``None``
            in the discrete-event simulator.
        check: optional conformance recorder (a
            :class:`repro.check.recording.CheckContext`); when set, every
            fetch-and-add on ``next`` is reported with its pre-add value
            and clamped result, so the schedule-conformance oracle sees
            the pool's ground truth instead of reconstructed state.
    """

    def __init__(
        self,
        start: int,
        end: int,
        lock: threading.Lock | None = None,
        check=None,
    ) -> None:
        if end < start:
            raise WorkShareError(f"invalid iteration range [{start}, {end})")
        self.start = int(start)
        self.end = int(end)
        self._next = AtomicCounter(start, lock)
        self._dispatches = AtomicCounter(0, lock)
        # Empty-handed takes are counted separately (cold branch: once
        # per thread per loop) so the successful-take hot path pays no
        # extra atomic; attempt_count derives from the two.
        self._empty_takes = AtomicCounter(0, lock)
        self._check = check

    # -- pool state --------------------------------------------------------

    @property
    def n_iterations(self) -> int:
        """Total iterations in the loop."""
        return self.end - self.start

    @property
    def next_iteration(self) -> int:
        """First not-yet-assigned iteration (advisory read)."""
        return min(self._next.value, self.end)

    @property
    def remaining(self) -> int:
        """Iterations still in the pool (advisory read; may be stale under
        real threads, exactly like reading ``next``/``end`` in libgomp)."""
        return max(0, self.end - self._next.value)

    @property
    def exhausted(self) -> bool:
        return self._next.value >= self.end

    @property
    def dispatch_count(self) -> int:
        """Number of successful pool removals so far."""
        return self._dispatches.value

    @property
    def attempt_count(self) -> int:
        """Fetch-and-add executions on ``next``, including the final
        empty-handed ones (the quantity the overhead model serializes on
        the work-share cache line; exported as
        ``workshare_take_attempts_total``)."""
        return self._dispatches.value + self._empty_takes.value

    @property
    def empty_take_count(self) -> int:
        """Fetch-and-adds that found the pool already drained."""
        return self._empty_takes.value

    # -- removal -----------------------------------------------------------

    def take(self, n: int) -> tuple[int, int] | None:
        """Atomically remove up to ``n`` iterations from the pool.

        This is ``gomp_iter_dynamic_next``'s core: fetch-and-add on
        ``next`` then clamp against ``end``.

        Returns:
            The removed half-open range ``(lo, hi)``, or ``None`` when the
            pool was already empty. The range may be shorter than ``n`` if
            fewer iterations remained.
        """
        if n <= 0:
            raise WorkShareError(f"chunk size must be positive, got {n}")
        lo = self._next.fetch_add(n)
        if lo >= self.end:
            self._empty_takes.add_fetch(1)
            if self._check is not None:
                self._check.on_take(n, lo, None)
            return None
        hi = min(lo + n, self.end)
        self._dispatches.add_fetch(1)
        if self._check is not None:
            self._check.on_take(n, lo, (lo, hi))
        return (lo, hi)

    def take_all(self) -> tuple[int, int] | None:
        """Remove everything left in the pool (used by endgame paths)."""
        size = self.end - self.start
        return self.take(size) if size > 0 else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkShare([{self.start}, {self.end}), "
            f"next={self._next.value}, dispatches={self.dispatch_count})"
        )
