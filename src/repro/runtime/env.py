"""Environment-variable front end (OMP_SCHEDULE, GOMP_AMP_AFFINITY, ...).

The paper's whole point is activating AID *without touching application
code*: applications are recompiled once, then the user selects the
method per run through environment variables. :class:`OmpEnv` models the
variables the modified libgomp reads at startup:

* ``OMP_SCHEDULE`` — the schedule applied to every ``schedule(runtime)``
  loop; accepts the extended strings of
  :func:`repro.sched.registry.parse_schedule` (``"aid_hybrid,80"`` ...).
* ``OMP_NUM_THREADS`` — team size (default: all cores).
* ``GOMP_AMP_AFFINITY`` — ``"BS"`` (big cores first, the AID convention)
  or ``"SB"`` (small first); exactly the two pinning conventions of the
  paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.amp.platform import Platform
from repro.amp.topology import AffinityMapping, bs_mapping, sb_mapping
from repro.errors import ConfigError
from repro.sched.base import ScheduleSpec
from repro.sched.registry import parse_schedule


@dataclass(frozen=True)
class OmpEnv:
    """A parsed runtime environment.

    Attributes:
        schedule: the OMP_SCHEDULE string (applied to runtime-scheduled
            loops).
        num_threads: team size; ``None`` means one thread per core.
        affinity: "BS" or "SB".
    """

    schedule: str = "static"
    num_threads: int | None = None
    affinity: str = "BS"

    def __post_init__(self) -> None:
        if self.affinity not in ("BS", "SB"):
            raise ConfigError(
                f"GOMP_AMP_AFFINITY must be 'BS' or 'SB', got {self.affinity!r}"
            )
        if self.num_threads is not None and self.num_threads <= 0:
            raise ConfigError("OMP_NUM_THREADS must be positive")
        # Validate eagerly so a bad schedule string fails at env creation,
        # like libgomp does at program startup.
        parse_schedule(self.schedule)

    @classmethod
    def from_vars(cls, env: Mapping[str, str]) -> "OmpEnv":
        """Build from a dict of environment variables (unknown keys are
        ignored, like a real environment)."""
        nt = env.get("OMP_NUM_THREADS")
        return cls(
            schedule=env.get("OMP_SCHEDULE", "static"),
            num_threads=int(nt) if nt is not None else None,
            affinity=env.get("GOMP_AMP_AFFINITY", "BS"),
        )

    def schedule_spec(self) -> ScheduleSpec:
        """The parsed OMP_SCHEDULE."""
        return parse_schedule(self.schedule)

    def team_size(self, platform: Platform) -> int:
        nt = platform.n_cores if self.num_threads is None else self.num_threads
        if nt > platform.n_cores:
            raise ConfigError(
                f"OMP_NUM_THREADS={nt} oversubscribes {platform.n_cores} cores; "
                "AID assumes at most one thread per core"
            )
        return nt

    def mapping(self, platform: Platform) -> AffinityMapping:
        """The affinity mapping this environment induces."""
        nt = self.team_size(platform)
        if self.affinity == "BS":
            return bs_mapping(platform, nt)
        return sb_mapping(platform, nt)
