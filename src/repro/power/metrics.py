"""Derived energy metrics for scheduler comparisons."""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.power.model import EnergyBreakdown


def energy_delay_product(energy: EnergyBreakdown) -> float:
    """EDP in joule-seconds: the standard efficiency/performance blend.

    Lower is better; a scheduler that halves completion time at equal
    energy halves the EDP.
    """
    return energy.total_j * energy.wall_s


def normalized_energy(
    baseline: EnergyBreakdown, candidate: EnergyBreakdown
) -> float:
    """Candidate energy relative to a baseline (1.0 = equal, <1 = saves
    energy)."""
    if baseline.total_j <= 0:
        raise ExperimentError("baseline consumed no energy")
    return candidate.total_j / baseline.total_j


def normalized_edp(
    baseline: EnergyBreakdown, candidate: EnergyBreakdown
) -> float:
    """Candidate EDP relative to a baseline (lower is better)."""
    base = energy_delay_product(baseline)
    if base <= 0:
        raise ExperimentError("baseline has zero EDP")
    return energy_delay_product(candidate) / base
