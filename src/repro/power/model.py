"""Per-core power parameters and whole-run energy accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.amp.platform import Platform
from repro.errors import ConfigError, ExperimentError
from repro.runtime.program_runner import ProgramResult
from repro.tracing.trace import ThreadState


@dataclass(frozen=True)
class CorePower:
    """Power draw of one core type, in watts.

    Attributes:
        active_w: power while executing instructions at full tilt.
        idle_w: power while clock-gated at a barrier or between phases
            (cores are not power-gated mid-application; big.LITTLE
            cluster shutdown latencies are far above loop time scales).
    """

    active_w: float
    idle_w: float

    def __post_init__(self) -> None:
        if self.active_w <= 0:
            raise ConfigError("active power must be > 0")
        if not 0 <= self.idle_w <= self.active_w:
            raise ConfigError("idle power must be in [0, active]")


#: Ballpark figures for the Odroid-XU4 from published measurements:
#: an A15 at 2 GHz draws roughly 1.5-2 W per core under FP load, an A7
#: at 1.5 GHz well under half a watt.
ODROID_POWER: Mapping[str, CorePower] = {
    "cortex-a7": CorePower(active_w=0.35, idle_w=0.05),
    "cortex-a15": CorePower(active_w=1.75, idle_w=0.25),
}

#: Per-core figures for the throttled/nominal Broadwell cores of
#: Platform B (package power divided across cores).
XEON_POWER: Mapping[str, CorePower] = {
    "xeon-slow": CorePower(active_w=4.0, idle_w=1.2),
    "xeon-fast": CorePower(active_w=10.0, idle_w=1.5),
}


@dataclass(frozen=True)
class PlatformPower:
    """Power table for a platform: core-type name -> :class:`CorePower`."""

    per_type: Mapping[str, CorePower]
    uncore_w: float = 0.0  # memory/interconnect floor, drawn for the whole run

    def __post_init__(self) -> None:
        if self.uncore_w < 0:
            raise ConfigError("uncore power must be >= 0")

    def for_type(self, name: str) -> CorePower:
        try:
            return self.per_type[name]
        except KeyError:
            raise ConfigError(f"no power data for core type {name!r}") from None

    @classmethod
    def odroid_xu4(cls) -> "PlatformPower":
        return cls(per_type=dict(ODROID_POWER), uncore_w=1.0)

    @classmethod
    def xeon_emulated(cls) -> "PlatformPower":
        return cls(per_type=dict(XEON_POWER), uncore_w=15.0)


@dataclass
class EnergyBreakdown:
    """Energy of one program run, in joules.

    Attributes:
        active_j: energy spent executing instructions (compute, runtime
            calls, serial phases).
        idle_j: energy of cores idling/spinning at barriers and during
            serial phases.
        uncore_j: platform floor over the run's wall time.
    """

    active_j: float
    idle_j: float
    uncore_j: float
    wall_s: float
    per_type_active_j: dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return self.active_j + self.idle_j + self.uncore_j

    @property
    def average_power_w(self) -> float:
        if self.wall_s <= 0:
            raise ExperimentError("run has no duration")
        return self.total_j / self.wall_s


#: Trace states during which a core draws active power.
_ACTIVE_STATES = (ThreadState.COMPUTE, ThreadState.RUNTIME, ThreadState.SERIAL)


class PowerModel:
    """Turns executions into energy numbers for one platform.

    Works from a full trace when available (exact state accounting) or
    from the per-loop results otherwise (busy-until-finish
    approximation).

    Args:
        platform: the AMP.
        power: power table; defaults chosen by platform name when
            recognizable.
    """

    def __init__(self, platform: Platform, power: PlatformPower | None = None):
        self.platform = platform
        if power is None:
            if "Odroid" in platform.name:
                power = PlatformPower.odroid_xu4()
            elif "Xeon" in platform.name:
                power = PlatformPower.xeon_emulated()
            else:
                raise ConfigError(
                    f"no default power table for {platform.name!r}; pass one"
                )
        self.power = power
        # Validate coverage eagerly.
        for ct in platform.core_types:
            self.power.for_type(ct.name)

    # -- accounting -----------------------------------------------------------

    def energy_of(
        self, result: ProgramResult, cpu_of_tid: Mapping[int, int] | list[int]
    ) -> EnergyBreakdown:
        """Energy of a program run.

        Args:
            result: the run (ideally executed with ``trace=True``).
            cpu_of_tid: the team's pinning (``runner.team.mapping.cpu_of_tid``).
        """
        wall = result.completion_time
        if wall <= 0:
            raise ExperimentError("run has no duration")
        cpus = list(cpu_of_tid.values()) if isinstance(cpu_of_tid, Mapping) else list(cpu_of_tid)
        type_of_tid = [
            self.platform.core(cpu).core_type.name for cpu in cpus
        ]
        active_per_tid = (
            self._active_from_trace(result)
            if result.trace is not None
            else self._active_from_loops(result, len(cpus))
        )
        active_j = 0.0
        idle_j = 0.0
        per_type: dict[str, float] = {}
        for tid, busy in enumerate(active_per_tid):
            cp = self.power.for_type(type_of_tid[tid])
            busy = min(busy, wall)
            a = busy * cp.active_w
            active_j += a
            idle_j += (wall - busy) * cp.idle_w
            per_type[type_of_tid[tid]] = per_type.get(type_of_tid[tid], 0.0) + a
        # Cores of the platform not used by the team idle for the run.
        used = set(cpus)
        for core in self.platform.cores:
            if core.cpu_id not in used:
                cp = self.power.for_type(core.core_type.name)
                idle_j += wall * cp.idle_w
        return EnergyBreakdown(
            active_j=active_j,
            idle_j=idle_j,
            uncore_j=wall * self.power.uncore_w,
            wall_s=wall,
            per_type_active_j=per_type,
        )

    def _active_from_trace(self, result: ProgramResult) -> list[float]:
        trace = result.trace
        assert trace is not None
        tids = trace.thread_ids()
        out = [0.0] * (max(tids) + 1 if tids else 0)
        for tid in tids:
            out[tid] = sum(
                trace.time_in_state(tid, state) for state in _ACTIVE_STATES
            )
        return out

    def _active_from_loops(self, result: ProgramResult, nt: int) -> list[float]:
        """Approximation without a trace: each thread is active from loop
        start until its own finish; the master is additionally active for
        the serial time."""
        out = [0.0] * nt
        for lr in result.loop_results:
            for tid in range(min(nt, len(lr.finish_times))):
                out[tid] += max(0.0, lr.finish_times[tid] - lr.start_time)
        out[0] += result.serial_time
        return out
