"""Energy and power modeling for AMP executions.

The paper's opening motivation is *energy efficiency*: asymmetric
designs couple power-hungry big cores with frugal small ones. This
package closes that loop for the reproduction: per-core-type power
parameters (calibrated to published big.LITTLE measurements), energy
accounting over simulated executions, and the derived metrics
(energy-delay product, energy per unit of work) used to compare
scheduling policies — a natural extension experiment the paper's
conclusions invite.
"""

from repro.power.model import CorePower, PlatformPower, PowerModel, EnergyBreakdown
from repro.power.metrics import energy_delay_product, normalized_energy

__all__ = [
    "CorePower",
    "PlatformPower",
    "PowerModel",
    "EnergyBreakdown",
    "energy_delay_product",
    "normalized_energy",
]
