"""Space-shared co-location of multiple OpenMP programs.

Each application runs on its own CPU partition (no oversubscription —
the regime the paper's footnote 3 and Sec. 4.3 assume), with two
couplings to its neighbours:

* **shared-cache/bandwidth contention** — the co-located applications'
  CPUs count as active LLC co-runners in the performance model, and
* **allocation changes over time** — each application's runtime reads
  the Sec. 4.3 shared page at every loop start, so OS reallocations take
  effect at the next work-sharing construct.

Co-located applications otherwise progress independently (their virtual
timelines do not synchronize); this approximates all neighbours as
continuously active, which is accurate while the co-runners' durations
overlap — the standard rate-based co-location approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.amp.platform import Platform
from repro.errors import ConfigError
from repro.osched.allocation import Allocation, AllocationTimeline
from repro.osched.info_page import AmpInfoPage
from repro.osched.metrics import antt, stp, unfairness
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramResult, ProgramRunner
from repro.workloads.program import Program


@dataclass
class ColocationResult:
    """Outcome of one co-location experiment."""

    program_names: tuple[str, ...]
    schedule: str
    solo_times: list[float]
    shared_times: list[float]
    results: list[ProgramResult] = field(default_factory=list)

    @property
    def stp(self) -> float:
        return stp(self.solo_times, self.shared_times)

    @property
    def antt(self) -> float:
        return antt(self.solo_times, self.shared_times)

    @property
    def unfairness(self) -> float:
        return unfairness(self.solo_times, self.shared_times)

    def summary(self) -> str:
        apps = ", ".join(
            f"{name}: {t * 1e3:.1f}ms (solo {s * 1e3:.1f}ms)"
            for name, t, s in zip(
                self.program_names, self.shared_times, self.solo_times
            )
        )
        return (
            f"[{self.schedule}] {apps} | STP {self.stp:.2f},"
            f" ANTT {self.antt:.2f}, unfairness {self.unfairness:.2f}"
        )


def run_colocated(
    platform: Platform,
    programs: Sequence[Program],
    timeline: AllocationTimeline | Allocation,
    schedule: str = "aid_static",
    seed: int = 0,
) -> ColocationResult:
    """Co-run ``programs`` space-shared under one scheduling policy.

    Args:
        platform: the AMP.
        programs: one program per application slot in the allocation.
        timeline: the OS's allocation decisions (a bare
            :class:`Allocation` is treated as constant over time).
        schedule: OMP_SCHEDULE applied inside every application.
        seed: workload seed (per-application streams are decorrelated by
            app index).
    """
    if isinstance(timeline, Allocation):
        timeline = AllocationTimeline.constant(timeline)
    if len(programs) != timeline.n_apps:
        raise ConfigError(
            f"{len(programs)} programs for {timeline.n_apps} application slots"
        )
    env = OmpEnv(schedule=schedule, affinity="BS")
    shared_times: list[float] = []
    results: list[ProgramResult] = []
    for app, program in enumerate(programs):
        page = AmpInfoPage(platform, timeline, app=app)
        runner = ProgramRunner(
            platform, env, root_seed=seed + app, info_page=page
        )
        result = runner.run(program)
        shared_times.append(result.completion_time)
        results.append(result)
    solo_times = [
        ProgramRunner(platform, env, root_seed=seed + app)
        .run(program)
        .completion_time
        for app, program in enumerate(programs)
    ]
    return ColocationResult(
        program_names=tuple(p.name for p in programs),
        schedule=schedule,
        solo_times=solo_times,
        shared_times=shared_times,
        results=results,
    )
