"""Per-application CPU allocations and allocation timelines."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.errors import ConfigError


@dataclass(frozen=True)
class Allocation:
    """CPUs assigned to each co-located application at one instant.

    Attributes:
        cpus_of_app: ``cpus_of_app[i]`` — the CPU numbers application i
            may use. Disjoint across applications (space sharing without
            oversubscription, the regime the paper's Sec. 4.3 targets).
    """

    cpus_of_app: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for i, cpus in enumerate(self.cpus_of_app):
            if not cpus:
                raise ConfigError(f"application {i} was allocated no cores")
            overlap = seen.intersection(cpus)
            if overlap:
                raise ConfigError(
                    f"cores {sorted(overlap)} allocated to two applications"
                )
            seen.update(cpus)

    @property
    def n_apps(self) -> int:
        return len(self.cpus_of_app)

    def cpus(self, app: int) -> tuple[int, ...]:
        return self.cpus_of_app[app]

    def others(self, app: int) -> tuple[int, ...]:
        """CPUs occupied by every application except ``app`` (the
        background this app's threads contend with)."""
        out: list[int] = []
        for i, cpus in enumerate(self.cpus_of_app):
            if i != app:
                out.extend(cpus)
        return tuple(sorted(out))

    def validate_for(self, platform: Platform) -> None:
        for cpus in self.cpus_of_app:
            for cpu in cpus:
                if not 0 <= cpu < platform.n_cores:
                    raise ConfigError(
                        f"allocated CPU {cpu} does not exist on {platform.name}"
                    )

    def big_core_count(self, platform: Platform, app: int) -> int:
        """Cores of the fastest type in this app's allocation (the N_B
        the runtime needs from the OS per Sec. 4.3)."""
        fastest = platform.core_types[-1]
        return sum(
            1 for cpu in self.cpus(app)
            if platform.core(cpu).core_type == fastest
        )


@dataclass
class AllocationTimeline:
    """Piecewise-constant allocations over time — the OS's decisions.

    Built from ``(start_time, Allocation)`` breakpoints; the allocation
    at time t is the one whose start time is the largest <= t. The first
    breakpoint must be at t = 0.
    """

    breakpoints: list[tuple[float, Allocation]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.breakpoints:
            raise ConfigError("timeline needs at least one allocation")
        times = [t for t, _ in self.breakpoints]
        if times != sorted(times):
            raise ConfigError("timeline breakpoints must be time-ordered")
        if times[0] != 0.0:
            raise ConfigError("timeline must start at t=0")
        n_apps = {a.n_apps for _, a in self.breakpoints}
        if len(n_apps) != 1:
            raise ConfigError("every breakpoint must cover the same applications")

    @classmethod
    def constant(cls, allocation: Allocation) -> "AllocationTimeline":
        return cls(breakpoints=[(0.0, allocation)])

    @property
    def n_apps(self) -> int:
        return self.breakpoints[0][1].n_apps

    def at(self, t: float) -> Allocation:
        """The allocation in force at time ``t``."""
        times = [bt for bt, _ in self.breakpoints]
        idx = bisect.bisect_right(times, t) - 1
        return self.breakpoints[max(0, idx)][1]

    def change_times(self) -> list[float]:
        """Times at which the allocation changes (excluding t=0)."""
        return [t for t, _ in self.breakpoints[1:]]
