"""Standard multi-programming metrics over co-location results."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExperimentError


def _check(solo: Sequence[float], shared: Sequence[float]) -> None:
    if len(solo) != len(shared) or not solo:
        raise ExperimentError("need matching, non-empty solo/shared times")
    if any(t <= 0 for t in list(solo) + list(shared)):
        raise ExperimentError("completion times must be positive")


def stp(solo: Sequence[float], shared: Sequence[float]) -> float:
    """System throughput: sum of per-application speedups vs solo.

    N perfectly isolated applications on N private machines would score
    N; space-sharing one machine scores between ~1 and N.
    """
    _check(solo, shared)
    return sum(s / sh for s, sh in zip(solo, shared))


def antt(solo: Sequence[float], shared: Sequence[float]) -> float:
    """Average normalized turnaround time: mean per-app slowdown vs solo
    (>= 1, lower is better)."""
    _check(solo, shared)
    return sum(sh / s for s, sh in zip(solo, shared)) / len(solo)


def unfairness(solo: Sequence[float], shared: Sequence[float]) -> float:
    """Max-over-min of per-application slowdowns (1.0 = perfectly fair)."""
    _check(solo, shared)
    slowdowns = [sh / s for s, sh in zip(solo, shared)]
    return max(slowdowns) / min(slowdowns)
