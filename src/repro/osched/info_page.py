"""The OS <-> runtime shared information page (paper Sec. 4.3).

The paper's coordination design needs three OS-side provisions; this
page models all of them for one application:

1. *"the OS scheduler should allow the runtime system to know how many
   threads of the application are mapped to big cores at all times"* —
   :meth:`AmpInfoPage.read` returns the current CPU set (and therefore
   N_B/N_S) without any "system call";
2. *"in populating big cores, the OS scheduler should favor threads with
   lower TIDs"* — the page hands out CPU lists sorted fastest-first, so
   building a team from them preserves the BS convention AID assumes;
3. *"the runtime system would also greatly benefit from notifications
   when an application thread is migrated between cores of different
   types"* — :meth:`AmpInfoPage.read` bumps a generation counter whenever
   the allocation changed since the previous read, which the runtime can
   treat as the migration signal and re-derive its distribution at the
   next loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.errors import ConfigError
from repro.osched.allocation import AllocationTimeline


@dataclass
class PageSnapshot:
    """What the runtime sees on one read."""

    cpus: tuple[int, ...]
    n_big: int
    generation: int
    changed: bool


@dataclass
class AmpInfoPage:
    """One application's view of the OS's allocation decisions.

    Args:
        platform: the AMP.
        timeline: the OS's allocation decisions over time.
        app: this application's index within the timeline.
    """

    platform: Platform
    timeline: AllocationTimeline
    app: int
    _last_cpus: tuple[int, ...] | None = field(default=None, repr=False)
    _generation: int = field(default=0, repr=False)
    reads: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.app < self.timeline.n_apps:
            raise ConfigError(
                f"application index {self.app} outside timeline "
                f"({self.timeline.n_apps} applications)"
            )
        for _, alloc in self.timeline.breakpoints:
            alloc.validate_for(self.platform)

    def read(self, now: float) -> PageSnapshot:
        """The runtime's loop-start peek at the shared page."""
        alloc = self.timeline.at(now)
        cpus = alloc.cpus(self.app)
        changed = self._last_cpus is not None and cpus != self._last_cpus
        if changed:
            self._generation += 1
        self._last_cpus = cpus
        self.reads += 1
        return PageSnapshot(
            cpus=cpus,
            n_big=alloc.big_core_count(self.platform, self.app),
            generation=self._generation,
            changed=changed,
        )

    def background_at(self, now: float) -> tuple[int, ...]:
        """CPUs occupied by the co-located applications at time ``now``."""
        return self.timeline.at(now).others(self.app)
