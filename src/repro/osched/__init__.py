"""Multi-application scenarios: the OS side (paper Sec. 4.3).

The paper evaluates single-application runs but lays out how AID should
work when several parallel applications share an AMP: the OS (or a
system-software layer) drives thread-to-core assignments, populates big
cores low-TID-first, and exposes the current allocation to each
application's runtime through a shared memory page so the AID
distributions always use the *current* N_B/N_S — plus migration
notifications that let the runtime readjust at the next loop.

This package builds that substrate:

* :mod:`repro.osched.allocation` — per-application CPU allocations and
  piecewise-constant allocation timelines (the OS's decisions over time);
* :mod:`repro.osched.policies` — partitioning policies (cluster split,
  asymmetry-aware fair mix, priority-weighted);
* :mod:`repro.osched.info_page` — the OS<->runtime shared page: the
  runtime reads its allocation at every loop start, exactly as Sec. 4.3
  prescribes ("without explicit CPU bindings... a shared memory region
  could be used to efficiently exchange information");
* :mod:`repro.osched.multiapp` — space-shared co-location of multiple
  programs with cross-application LLC contention, and
* :mod:`repro.osched.metrics` — system throughput (STP), average
  normalized turnaround time (ANTT) and unfairness.
"""

from repro.osched.allocation import Allocation, AllocationTimeline
from repro.osched.info_page import AmpInfoPage
from repro.osched.metrics import antt, stp, unfairness
from repro.osched.multiapp import ColocationResult, run_colocated
from repro.osched.policies import (
    cluster_split,
    fair_mixed,
    priority_weighted,
)

__all__ = [
    "Allocation",
    "AllocationTimeline",
    "AmpInfoPage",
    "cluster_split",
    "fair_mixed",
    "priority_weighted",
    "run_colocated",
    "ColocationResult",
    "stp",
    "antt",
    "unfairness",
]
