"""OS partitioning policies for co-located parallel applications.

All policies space-share (no core is shared), never oversubscribe, and
order each application's CPUs descending so the runtime's BS convention
(low TIDs on big cores — what every AID variant assumes) holds inside
each partition.
"""

from __future__ import annotations

from repro.amp.platform import Platform
from repro.errors import ConfigError
from repro.osched.allocation import Allocation


def _split_round_robin(items: list[int], n_apps: int) -> list[list[int]]:
    out: list[list[int]] = [[] for _ in range(n_apps)]
    for i, item in enumerate(items):
        out[i % n_apps].append(item)
    return out


def cluster_split(platform: Platform, n_apps: int = 2) -> Allocation:
    """Whole core types per application: app 0 gets the fastest cluster,
    app 1 the next, round-robin.

    The naive partition (each app sees a *symmetric* machine, so plain
    static scheduling is fine) — but throughput and fairness suffer: the
    small-cluster apps crawl.
    """
    if n_apps <= 0:
        raise ConfigError("need at least one application")
    if n_apps > platform.n_core_types:
        raise ConfigError(
            f"cluster split supports at most {platform.n_core_types} "
            f"applications on {platform.name}"
        )
    buckets: list[list[int]] = [[] for _ in range(n_apps)]
    # Fastest types to app 0 first.
    for idx, ctype in enumerate(reversed(platform.core_types)):
        app = idx % n_apps
        buckets[app].extend(
            c.cpu_id for c in platform.cores_of_type(ctype)
        )
    return Allocation(
        cpus_of_app=tuple(tuple(sorted(b, reverse=True)) for b in buckets)
    )


def fair_mixed(platform: Platform, n_apps: int = 2) -> Allocation:
    """Asymmetry-aware fair share: every application receives an equal
    slice of *each* core type (2 big + 2 small each on the paper's
    platforms with two applications).

    Every app sees a miniature AMP — which is exactly where AID keeps
    paying off under co-location.
    """
    if n_apps <= 0:
        raise ConfigError("need at least one application")
    buckets: list[list[int]] = [[] for _ in range(n_apps)]
    for ctype in platform.core_types:
        cpus = [c.cpu_id for c in platform.cores_of_type(ctype)]
        if len(cpus) < n_apps:
            raise ConfigError(
                f"cannot give {n_apps} applications a share of "
                f"{ctype.name} ({len(cpus)} cores)"
            )
        for app, share in enumerate(_split_round_robin(cpus, n_apps)):
            buckets[app].extend(share)
    return Allocation(
        cpus_of_app=tuple(tuple(sorted(b, reverse=True)) for b in buckets)
    )


def priority_weighted(
    platform: Platform, big_shares: tuple[int, ...]
) -> Allocation:
    """Explicit big-core shares per application; small cores are split
    evenly. ``big_shares`` must sum to the platform's big-core count.

    This is the knob an asymmetry-aware OS turns over time — reallocating
    big cores toward the application that currently benefits most — and
    the kind of decision the Sec. 4.3 shared page communicates to the
    runtimes.
    """
    fastest = platform.core_types[-1]
    big = [c.cpu_id for c in platform.cores_of_type(fastest)]
    if sum(big_shares) != len(big):
        raise ConfigError(
            f"big-core shares {big_shares} must sum to {len(big)}"
        )
    if any(s < 0 for s in big_shares):
        raise ConfigError("big-core shares must be >= 0")
    n_apps = len(big_shares)
    small = [
        c.cpu_id
        for ctype in platform.core_types[:-1]
        for c in platform.cores_of_type(ctype)
    ]
    buckets: list[list[int]] = [[] for _ in range(n_apps)]
    cursor = 0
    for app, share in enumerate(big_shares):
        buckets[app].extend(big[cursor : cursor + share])
        cursor += share
    for app, share in enumerate(_split_round_robin(small, n_apps)):
        buckets[app].extend(share)
    for app, bucket in enumerate(buckets):
        if not bucket:
            raise ConfigError(f"application {app} ended up with no cores")
    return Allocation(
        cpus_of_app=tuple(tuple(sorted(b, reverse=True)) for b in buckets)
    )
