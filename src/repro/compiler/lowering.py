"""Lowering of OpenMP loops by the vanilla and modified compilers."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CompilerError
from repro.sched.base import ScheduleSpec
from repro.sched.registry import parse_schedule
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program


class LoweringKind(enum.Enum):
    """How a parallel loop's iteration distribution is realized."""

    #: Even static split inlined into the executable; zero runtime calls.
    #: What vanilla GCC emits for clause-less loops.
    INLINE_STATIC = "inline-static"

    #: ``schedule(runtime)``: the runtime reads OMP_SCHEDULE and applies
    #: the chosen method. What the modified compiler emits for clause-less
    #: loops.
    RUNTIME = "runtime"

    #: The source carried an explicit ``schedule(...)`` clause; the
    #: runtime applies exactly that method regardless of OMP_SCHEDULE.
    CLAUSE = "clause"


@dataclass(frozen=True)
class CompiledLoop:
    """One loop after lowering.

    Attributes:
        loop: the source loop.
        kind: chosen lowering.
        clause_spec: parsed schedule for :attr:`LoweringKind.CLAUSE`
            loops, ``None`` otherwise.
    """

    loop: LoopSpec
    kind: LoweringKind
    clause_spec: ScheduleSpec | None = None

    @property
    def makes_runtime_calls(self) -> bool:
        """Whether the generated code invokes GOMP loop API functions."""
        return self.kind is not LoweringKind.INLINE_STATIC


@dataclass(frozen=True)
class CompiledProgram:
    """A program plus the lowering decision for each of its loops."""

    program: Program
    compiler: str  # "gcc-8.3-vanilla" or "gcc-8.3-aid"
    lowered: dict[str, CompiledLoop]

    def lowering_of(self, loop: LoopSpec) -> CompiledLoop:
        try:
            return self.lowered[loop.name]
        except KeyError:
            raise CompilerError(
                f"loop {loop.name!r} was not part of the compiled program"
            ) from None

    @property
    def runtime_controllable_fraction(self) -> float:
        """Fraction of loops whose scheduling the runtime can influence.

        ~0 for vanilla-compiled clause-less programs, 1.0 for the same
        programs built with the modified compiler — the paper's point.
        """
        loops = list(self.lowered.values())
        if not loops:
            return 0.0
        controllable = sum(1 for cl in loops if cl.kind is LoweringKind.RUNTIME)
        return controllable / len(loops)


def compile_program(program: Program, modified: bool) -> CompiledProgram:
    """Lower every loop of ``program`` with one of the two compilers.

    Args:
        program: the program skeleton.
        modified: ``False`` = vanilla GCC (clause-less loops become
            INLINE_STATIC); ``True`` = the paper's patched GCC
            (clause-less loops become RUNTIME).
    """
    lowered: dict[str, CompiledLoop] = {}
    for loop in program.loops():
        if loop.schedule_clause is not None:
            spec = parse_schedule(loop.schedule_clause)
            lowered[loop.name] = CompiledLoop(loop, LoweringKind.CLAUSE, spec)
        elif modified:
            lowered[loop.name] = CompiledLoop(loop, LoweringKind.RUNTIME)
        else:
            lowered[loop.name] = CompiledLoop(loop, LoweringKind.INLINE_STATIC)
    return CompiledProgram(
        program=program,
        compiler="gcc-8.3-aid" if modified else "gcc-8.3-vanilla",
        lowered=lowered,
    )
