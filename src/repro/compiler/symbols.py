"""``nm -u``-style symbol inspection of compiled programs.

Reproduces the paper's Sec. 4.1 demonstration: a clause-less OpenMP
program built with vanilla GCC references only ``GOMP_parallel`` and
``GOMP_barrier``, while the same program built with the modified
compiler additionally references the ``GOMP_loop_runtime_*`` family —
proof that the runtime can now intervene in every loop.
"""

from __future__ import annotations

from repro.compiler.lowering import CompiledProgram, LoweringKind
from repro.sched.base import ScheduleSpec


def _clause_symbol_base(spec: ScheduleSpec) -> str:
    """The GOMP symbol family a clause schedule maps to."""
    # libgomp names: GOMP_loop_static_*, GOMP_loop_dynamic_*, etc. AID
    # methods reuse the runtime entry points (they are selected via
    # environment variables, not new clause values — paper Sec. 4.2).
    kind = spec.name.split(",")[0].split("(")[0]
    if kind.startswith("aid_"):
        return "runtime"
    return kind


def undefined_symbols(compiled: CompiledProgram) -> list[str]:
    """Undefined GOMP symbols the compiled binary would reference.

    Sorted alphabetically, with version tags like real ``nm -u`` output.
    """
    symbols = {"GOMP_parallel@GOMP_4.0"}
    if compiled.program.serial_phases() or len(compiled.program.loops()) > 0:
        symbols.add("GOMP_barrier@GOMP_1.0")
    for cl in compiled.lowered.values():
        if cl.kind is LoweringKind.INLINE_STATIC:
            continue
        if cl.kind is LoweringKind.RUNTIME:
            base = "runtime"
        else:
            assert cl.clause_spec is not None
            base = _clause_symbol_base(cl.clause_spec)
        symbols.add(f"GOMP_loop_{base}_start@GOMP_1.0")
        symbols.add(f"GOMP_loop_{base}_next@GOMP_1.0")
        symbols.add("GOMP_loop_end@GOMP_1.0")
        symbols.add("GOMP_loop_end_nowait@GOMP_1.0")
    return sorted(symbols)


def nm_output(compiled: CompiledProgram) -> str:
    """Format symbols the way ``nm -u binary | grep -i GOMP_`` prints them."""
    return "\n".join(f"                 U {sym}" for sym in undefined_symbols(compiled))
