"""Compiler model: how GCC lowers OpenMP loops (paper Sec. 4.1).

Vanilla GCC removes all loop-related runtime API calls for loops without
a ``schedule`` clause, inlining an even static distribution straight into
the executable — so no runtime system, however clever, can redistribute
those iterations. The paper's one-line compiler change flips the default
schedule from ``static`` to ``runtime``, which re-introduces
``GOMP_loop_runtime_start/next`` calls and lets the runtime intervene in
*every* parallel loop of a recompiled, otherwise unmodified application.

This package reproduces that mechanism over our program IR: two
"compilers" (vanilla / modified) lower each loop to an
:class:`LoweringKind`, and :func:`undefined_symbols` reproduces the
``nm -u`` demonstration from the paper.
"""

from repro.compiler.lowering import (
    CompiledLoop,
    CompiledProgram,
    LoweringKind,
    compile_program,
)
from repro.compiler.symbols import undefined_symbols

__all__ = [
    "LoweringKind",
    "CompiledLoop",
    "CompiledProgram",
    "compile_program",
    "undefined_symbols",
]
