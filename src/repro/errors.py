"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single except clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Invalid configuration value (bad schedule string, chunk <= 0, ...)."""


class PlatformError(ReproError):
    """Inconsistent platform description (no cores, unknown core type, ...)."""


class SchedulerError(ReproError):
    """A loop scheduler was driven through an invalid state transition."""


class WorkShareError(ReproError):
    """Invalid operation on a work-share structure (e.g. negative range)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """Invalid workload description (empty loop, negative cost, ...)."""


class CompilerError(ReproError):
    """Invalid program IR handed to the compiler model."""


class ExperimentError(ReproError):
    """An experiment harness was given inconsistent parameters."""


class ObsError(ReproError):
    """Invalid use of the observability layer (bad metric kind, malformed
    decision record, unreadable snapshot)."""


class FleetError(ReproError):
    """The experiment-orchestration fleet failed (undigestable job spec,
    exhausted retries, malformed cache entry or result payload)."""


class BreakerOpen(FleetError):
    """Internal control-flow signal: a dispatcher tier's circuit breaker
    tripped.

    Raised by a dispatcher after it has requeued (uncharged) everything
    in flight; :func:`~repro.fleet.pool.run_jobs` catches it and moves
    the unresolved jobs to the next tier of
    :data:`~repro.fleet.supervisor.DEGRADATION`.
    """

    def __init__(self, tier: str, reason: str) -> None:
        super().__init__(f"circuit breaker open for {tier!r}: {reason}")
        self.tier = tier
        self.reason = reason


class FaultError(ReproError):
    """Invalid fault-injection plan or an inconsistency detected while
    applying one (malformed event, negative window, unknown CPU)."""


class WatchdogTimeout(FaultError):
    """A real-thread worker stalled past the watchdog deadline and never
    came back, and its work could not be fully redistributed."""


class BackendError(ReproError):
    """Invalid execution-backend selection or misuse of the backend
    protocol (unknown backend name, bad ``REPRO_BACKEND`` value, a
    backend asked to run a workload outside its capabilities)."""
