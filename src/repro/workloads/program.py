"""Whole-program skeletons: serial phases + parallel loops."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import WorkloadError
from repro.perfmodel.kernel import KernelProfile
from repro.workloads.loopspec import LoopSpec


@dataclass(frozen=True)
class SerialPhase:
    """A sequential program phase executed by the master thread.

    Worker threads sit idle during it — which is exactly why the paper's
    BS mapping (master on a big core) wins big for programs dominated by
    initialization, like bptree.
    """

    name: str
    work: float
    kernel: KernelProfile

    def __post_init__(self) -> None:
        if self.work < 0:
            raise WorkloadError(f"serial phase {self.name!r}: work must be >= 0")


Phase = Union[SerialPhase, LoopSpec]


@dataclass(frozen=True)
class Program:
    """A benchmark program's performance skeleton.

    Execution order: every phase in ``setup`` once, then every phase in
    ``body`` repeated ``timesteps`` times (the iterative solvers in NAS
    and the Rodinia stencils all have this shape; single-loop programs
    like EP use ``timesteps=1``).

    Attributes:
        name: program name ("EP", "blackscholes", ...).
        suite: originating suite ("NAS", "PARSEC", "Rodinia").
        setup: one-time phases (typically a serial initialization).
        body: per-timestep phases.
        timesteps: body repetitions.
    """

    name: str
    suite: str
    setup: tuple[Phase, ...] = ()
    body: tuple[Phase, ...] = ()
    timesteps: int = 1

    def __post_init__(self) -> None:
        if self.timesteps < 0:
            raise WorkloadError(f"{self.name}: timesteps must be >= 0")
        if not self.setup and not self.body:
            raise WorkloadError(f"{self.name}: program has no phases")
        names = [p.name for p in self.setup + self.body]
        if len(set(names)) != len(names):
            raise WorkloadError(f"{self.name}: duplicate phase names")

    def schedule(self) -> Iterator[tuple[Phase, int]]:
        """Yield ``(phase, invocation_index)`` in execution order.

        The invocation index counts how many times *that phase* has run
        so far (setup phases always get 0), which seeds per-invocation
        cost noise.
        """
        for phase in self.setup:
            yield phase, 0
        for step in range(self.timesteps):
            for phase in self.body:
                yield phase, step

    def loops(self) -> tuple[LoopSpec, ...]:
        """The distinct parallel loops, in first-execution order."""
        return tuple(p for p in self.setup + self.body if isinstance(p, LoopSpec))

    def serial_phases(self) -> tuple[SerialPhase, ...]:
        """The distinct serial phases, in first-execution order."""
        return tuple(
            p for p in self.setup + self.body if isinstance(p, SerialPhase)
        )

    @property
    def n_loop_invocations(self) -> int:
        """Total parallel-loop executions across the whole run."""
        per_step = sum(1 for p in self.body if isinstance(p, LoopSpec))
        once = sum(1 for p in self.setup if isinstance(p, LoopSpec))
        return once + per_step * self.timesteps

    @property
    def serial_work(self) -> float:
        """Total nominal serial work units."""
        once = sum(p.work for p in self.setup if isinstance(p, SerialPhase))
        per_step = sum(p.work for p in self.body if isinstance(p, SerialPhase))
        return once + per_step * self.timesteps

    @property
    def parallel_work(self) -> float:
        """Total nominal parallel work units."""
        once = sum(p.total_work for p in self.setup if isinstance(p, LoopSpec))
        per_step = sum(p.total_work for p in self.body if isinstance(p, LoopSpec))
        return once + per_step * self.timesteps
