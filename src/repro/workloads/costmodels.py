"""Per-iteration cost profiles.

Costs are in *work units*: the abstract quantity the performance model
converts to seconds through a core's execution rate (1 work unit ~ 1
second on a 1 GHz scalar baseline core for purely compute-bound code).

Each model generates the full cost vector of one loop invocation at
once (vectorized — the executor turns it into a prefix sum, making
chunk-cost lookups O(1)).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


class CostModel(abc.ABC):
    """Strategy generating per-iteration costs for a loop invocation."""

    @abc.abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Cost vector for ``n`` iterations; all entries must be >= 0."""

    def mean_cost(self) -> float:
        """Analytic (or nominal) mean cost per iteration, used for
        calibration checks and reporting."""
        raise NotImplementedError

    def _check(self, costs: np.ndarray) -> np.ndarray:
        if costs.ndim != 1:
            raise WorkloadError("cost vector must be one-dimensional")
        if np.any(costs < 0):
            raise WorkloadError("negative iteration cost generated")
        return costs


@dataclass(frozen=True)
class UniformCost(CostModel):
    """Every iteration costs exactly ``work`` units (ideal static loops)."""

    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise WorkloadError("work must be >= 0")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self._check(np.full(n, self.work))

    def mean_cost(self) -> float:
        return self.work


@dataclass(frozen=True)
class JitteredCost(CostModel):
    """Nominal cost with small multiplicative noise.

    Models loops whose iterations do "roughly the same" work (the paper's
    EP): uniform enough for static-style scheduling, but noisy enough
    that a sampled SF is never exactly representative — the effect behind
    AID-static's residual imbalance in Fig. 4a.

    Attributes:
        work: nominal cost.
        jitter: relative half-width of the noise (0.05 -> +/-5%).
        drift: linear trend across the iteration space; +0.1 makes the
            last iteration 10% dearer than the first (mean preserved).
    """

    work: float
    jitter: float = 0.05
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise WorkloadError("work must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise WorkloadError("jitter must be in [0, 1)")
        if abs(self.drift) >= 2.0:
            raise WorkloadError("drift magnitude must be < 2")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        noise = rng.uniform(1.0 - self.jitter, 1.0 + self.jitter, size=n)
        if self.drift and n > 1:
            ramp = 1.0 + self.drift * (np.arange(n) / (n - 1) - 0.5)
        else:
            ramp = 1.0
        return self._check(self.work * noise * ramp)

    def mean_cost(self) -> float:
        return self.work


@dataclass(frozen=True)
class RampCost(CostModel):
    """Cost grows (or shrinks) linearly across the iteration space.

    Models the paper's particlefilter observation: "the final iterations
    in a long-running loop are more heavyweight computationally than the
    first iterations", which makes static(BS) *worse* than static(SB).
    """

    start_work: float
    end_work: float

    def __post_init__(self) -> None:
        if self.start_work < 0 or self.end_work < 0:
            raise WorkloadError("work must be >= 0")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n == 1:
            return self._check(np.array([(self.start_work + self.end_work) / 2.0]))
        return self._check(np.linspace(self.start_work, self.end_work, n))

    def mean_cost(self) -> float:
        return (self.start_work + self.end_work) / 2.0


@dataclass(frozen=True)
class LognormalCost(CostModel):
    """Heavy-tailed random costs (irregular loops: leukocyte, FT stages).

    Attributes:
        mean: target mean cost.
        sigma: log-space standard deviation (0.5-1.0 is markedly uneven).
    """

    mean: float
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.mean < 0:
            raise WorkloadError("mean must be >= 0")
        if self.sigma < 0:
            raise WorkloadError("sigma must be >= 0")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve mu for mean.
        if self.mean == 0.0:
            return self._check(np.zeros(n))
        mu = np.log(self.mean) - self.sigma**2 / 2.0
        return self._check(rng.lognormal(mu, self.sigma, size=n))

    def mean_cost(self) -> float:
        return self.mean


@dataclass(frozen=True)
class BimodalCost(CostModel):
    """Two cost classes mixed at random (branchy work-item loops: bfs
    frontier expansion, bodytrack particle weighting).

    Attributes:
        low_work: cost of cheap iterations.
        high_work: cost of expensive iterations.
        high_fraction: probability an iteration is expensive.
    """

    low_work: float
    high_work: float
    high_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.low_work < 0 or self.high_work < 0:
            raise WorkloadError("work must be >= 0")
        if not 0.0 <= self.high_fraction <= 1.0:
            raise WorkloadError("high_fraction must be in [0, 1]")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        heavy = rng.random(n) < self.high_fraction
        return self._check(np.where(heavy, self.high_work, self.low_work))

    def mean_cost(self) -> float:
        return (
            self.high_fraction * self.high_work
            + (1.0 - self.high_fraction) * self.low_work
        )
