"""Registry of all 21 benchmark programs."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.program import Program


def all_programs() -> tuple[Program, ...]:
    """All 21 programs in suite order (NAS, PARSEC, Rodinia) — the set
    the paper's Figs. 6 and 7 evaluate."""
    from repro.workloads.suites import nas_programs, parsec_programs, rodinia_programs

    return nas_programs() + parsec_programs() + rodinia_programs()


def program_names() -> tuple[str, ...]:
    """Names of all registered programs."""
    return tuple(p.name for p in all_programs())


def get_program(name: str) -> Program:
    """Look up one program by (case-insensitive) name.

    Raises:
        WorkloadError: unknown program name.
    """
    wanted = name.lower()
    for program in all_programs():
        if program.name.lower() == wanted:
            return program
    raise WorkloadError(
        f"unknown program {name!r}; available: {', '.join(program_names())}"
    )
