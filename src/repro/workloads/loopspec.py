"""Parallel-loop specifications."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.perfmodel.kernel import KernelProfile
from repro.sim.rng import RngStreams
from repro.workloads.costmodels import CostModel


@dataclass(frozen=True)
class LoopSpec:
    """One ``omp for`` loop of a benchmark program.

    Attributes:
        name: loop label, unique within its program (used for trace
            labels, offline SF tables and Fig. 2-style per-loop reports).
        n_iterations: trip count.
        cost: per-iteration cost profile.
        kernel: code characteristics deciding the loop's per-platform SF.
        schedule_clause: explicit ``schedule(...)`` clause text if the
            source loop carries one, else ``None``. Fewer than 5% of the
            loops in the paper's applications carry a clause; clause-less
            loops are the ones whose scheduling the modified compiler
            hands to the runtime.
        nowait: the loop carries OpenMP's ``nowait`` clause — threads skip
            the implicit end-of-loop barrier and flow straight into the
            next work-sharing construct (the ``GOMP_loop_end_nowait``
            path the compiler model emits).
    """

    name: str
    n_iterations: int
    cost: CostModel
    kernel: KernelProfile
    schedule_clause: str | None = None
    nowait: bool = False

    def __post_init__(self) -> None:
        if self.n_iterations <= 0:
            raise WorkloadError(
                f"loop {self.name!r}: trip count must be positive"
            )

    def costs(
        self, streams: RngStreams, program: str, invocation: int
    ) -> np.ndarray:
        """The cost vector for one invocation of this loop.

        Deterministic in ``(streams.root_seed, program, loop name,
        invocation)``: every scheduler sees the identical workload, which
        is what makes scheduler comparisons meaningful.
        """
        rng = streams.get("costs", program, self.name, invocation)
        costs = self.cost.generate(self.n_iterations, rng)
        if len(costs) != self.n_iterations:
            raise WorkloadError(
                f"loop {self.name!r}: cost model produced {len(costs)} costs "
                f"for {self.n_iterations} iterations"
            )
        return costs

    @property
    def total_work(self) -> float:
        """Nominal total work of one invocation (mean cost x trip count)."""
        return self.cost.mean_cost() * self.n_iterations
