"""NAS Parallel Benchmarks (OpenMP), class-B-style skeletons.

The paper uses the NPB programs that fit in the Odroid's 2 GB: BT, CG,
EP, FT, IS, MG and SP. Loop structures below follow the well-known
phase anatomy of each solver; granularities and cost profiles encode the
behaviour the paper reports (EP's near-uniform single loop, CG's
fine-grained high-SF sparse kernels where dynamic's overhead is ruinous,
FT's unevenly costed transform stages where dynamic shines, IS's
ultra-fine counting loops that make dynamic up to 1.93x *slower* than
static, ...).
"""

from __future__ import annotations

from repro.workloads.costmodels import (
    JitteredCost,
    LognormalCost,
    RampCost,
    UniformCost,
)
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program, SerialPhase
from repro.workloads.suites._util import (
    COARSE,
    FINE,
    MEDIUM,
    SERIAL_COMPUTE,
    SERIAL_SETUP,
    ULTRA_FINE,
    VERY_COARSE,
    kp,
)


def ep() -> Program:
    """EP — Embarrassingly Parallel: one compute-bound loop spanning the
    whole run (the paper's Fig. 1/4 trace subject).

    Iterations generate Gaussian-pair batches: nearly equal cost with a
    slight drift and jitter, which is exactly what makes the one-shot
    AID-static distribution imperfect (Fig. 4a) and lets AID-hybrid's
    dynamic tail pick up the residual (~10% better, Fig. 4b).
    """
    kern = kp("ep-pairs", compute=1.0, ilp=0.10, ws_mb=0.02)
    loop = LoopSpec(
        name="ep.main",
        n_iterations=1024,
        cost=JitteredCost(work=VERY_COARSE, jitter=0.10, drift=-0.28),
        kernel=kern,
    )
    return Program(
        name="EP",
        suite="NAS",
        setup=(SerialPhase("ep.init", work=2e-3, kernel=SERIAL_SETUP),),
        body=(loop,),
        timesteps=1,
    )


def bt() -> Program:
    """BT — Block-Tridiagonal solver: many distinct loops per timestep
    with widely differing kernels (the Fig. 2 SF-variability subject).

    The x/y/z solve sweeps are ILP-rich and cache-friendly; rhs and add
    are more memory-bound; per-loop SFs therefore spread widely and
    differently per platform.
    """
    loops = (
        LoopSpec("bt.compute_rhs", 512, JitteredCost(COARSE, 0.18),
                 kp("bt-rhs", compute=0.35, ilp=0.08, ws_mb=60.0, mlp=0.85)),
        LoopSpec("bt.xsolve", 384, JitteredCost(COARSE, 0.15),
                 kp("bt-xsolve", compute=0.85, ilp=0.12, ws_mb=0.05)),
        LoopSpec("bt.ysolve", 384, JitteredCost(COARSE, 0.15),
                 kp("bt-ysolve", compute=0.80, ilp=0.08, ws_mb=0.05)),
        LoopSpec("bt.zsolve", 384, JitteredCost(COARSE, 0.18),
                 kp("bt-zsolve", compute=0.50, ilp=0.08, ws_mb=0.90, mlp=0.55)),
        LoopSpec("bt.add", 512, JitteredCost(MEDIUM, 0.03),
                 kp("bt-add", compute=0.25, ilp=0.02, ws_mb=60.0, mlp=1.0)),
    )
    return Program(
        name="BT",
        suite="NAS",
        setup=(SerialPhase("bt.init", work=8e-3, kernel=SERIAL_SETUP),),
        body=loops,
        timesteps=6,
    )


def cg() -> Program:
    """CG — Conjugate Gradient: fine-grained sparse-matrix loops with the
    largest big-to-small speedups of the study (up to ~7.7x offline on
    Platform A: the A7's 512 KB L2 thrashes on the sparse rows while the
    A15's 2 MB holds them).

    The per-row cost is tiny, so dynamic(1)'s dispatch overhead is
    ruinous — the paper measures CG slowdowns up to 2.86x with dynamic on
    Platform B — while AID's few-dispatch distribution keeps the
    asymmetry benefit without the overhead.
    """
    spmv = kp("cg-spmv", compute=0.30, ilp=0.60, ws_mb=0.80, mlp=0.18)
    axpy = kp("cg-axpy", compute=0.25, ilp=0.02, ws_mb=50.0, mlp=1.0)
    dot = kp("cg-dot", compute=0.45, ilp=0.30, ws_mb=0.70, mlp=0.45)
    loops = (
        LoopSpec("cg.spmv", 2048, LognormalCost(ULTRA_FINE, 0.30), spmv),
        LoopSpec("cg.dot", 1024, UniformCost(ULTRA_FINE), dot),
        LoopSpec("cg.axpy1", 1024, UniformCost(ULTRA_FINE), axpy),
        LoopSpec("cg.axpy2", 1024, UniformCost(ULTRA_FINE), axpy.with_(name="cg-axpy2")),
    )
    return Program(
        name="CG",
        suite="NAS",
        setup=(SerialPhase("cg.makea", work=6e-3, kernel=SERIAL_SETUP),),
        body=loops,
        timesteps=8,
    )


def ft() -> Program:
    """FT — 3-D FFT: coarse transform stages whose per-pencil cost varies
    substantially (data-dependent twiddle work and cache behaviour), the
    classic dynamic-friendly NAS program: the paper reports clear dynamic
    wins and an AID-static gain of 24.5% over static(BS).
    """
    fftxy = kp("ft-fft-xy", compute=0.80, ilp=0.20, ws_mb=0.25)
    fftz = kp("ft-fft-z", compute=0.60, ilp=0.15, ws_mb=1.2, mlp=0.60)
    evolve = kp("ft-evolve", compute=0.30, ilp=0.05, ws_mb=60.0, mlp=0.95)
    loops = (
        LoopSpec("ft.evolve", 512, JitteredCost(MEDIUM, 0.05), evolve),
        LoopSpec("ft.fft_xy", 384, LognormalCost(COARSE, 0.55), fftxy),
        LoopSpec("ft.fft_z", 384, LognormalCost(COARSE, 0.50), fftz),
    )
    return Program(
        name="FT",
        suite="NAS",
        setup=(SerialPhase("ft.init", work=10e-3, kernel=SERIAL_COMPUTE),),
        body=loops,
        timesteps=5,
    )


def is_() -> Program:
    """IS — Integer Sort: ultra-fine counting/ranking loops plus a
    noticeable sequential fraction.

    The paper's cautionary tale for dynamic scheduling: per-iteration
    work is on the order of the dispatch overhead itself, so dynamic
    inflates completion time by up to 1.93x over static(SB) on Platform
    A; meanwhile the serial fraction makes static(BS) much better than
    static(SB).
    """
    rank = kp("is-rank", compute=0.30, ilp=0.05, ws_mb=40.0, mlp=0.35)
    keys = kp("is-keys", compute=0.50, ilp=0.05, ws_mb=2.5, mlp=0.40)
    loops = (
        LoopSpec("is.rank", 3072, UniformCost(ULTRA_FINE), rank),
        LoopSpec("is.keyshift", 2048, UniformCost(ULTRA_FINE), keys),
    )
    return Program(
        name="IS",
        suite="NAS",
        setup=(SerialPhase("is.genkeys", work=18e-3, kernel=SERIAL_COMPUTE),),
        body=loops,
        timesteps=4,
    )


def mg() -> Program:
    """MG — Multigrid: stencil smoothing across grid levels; medium
    granularity, mildly memory-bound, modest SFs. A middle-of-the-road
    program where every scheduler lands within a few percent.
    """
    smooth = kp("mg-smooth", compute=0.40, ilp=0.04, ws_mb=3.0, mlp=0.90)
    resid = kp("mg-resid", compute=0.35, ilp=0.03, ws_mb=3.0, mlp=0.92)
    interp = kp("mg-interp", compute=0.55, ilp=0.06, ws_mb=2.8, mlp=0.85)
    loops = (
        LoopSpec("mg.resid", 768, JitteredCost(MEDIUM, 0.15), resid),
        LoopSpec("mg.smooth", 768, JitteredCost(MEDIUM, 0.15), smooth),
        LoopSpec("mg.interp", 512, JitteredCost(MEDIUM, 0.15), interp),
    )
    return Program(
        name="MG",
        suite="NAS",
        setup=(SerialPhase("mg.init", work=5e-3, kernel=SERIAL_SETUP),),
        body=loops,
        timesteps=6,
    )


def sp() -> Program:
    """SP — Scalar-Pentadiagonal solver: BT's sibling with finer-grained
    sweeps; the same SF spread across loops but more loop invocations per
    timestep, hence slightly higher runtime-overhead sensitivity.
    """
    loops = (
        LoopSpec("sp.compute_rhs", 640, JitteredCost(MEDIUM, 0.18),
                 kp("sp-rhs", compute=0.40, ilp=0.08, ws_mb=40.0, mlp=0.85)),
        LoopSpec("sp.xsolve", 512, JitteredCost(MEDIUM, 0.15),
                 kp("sp-xsolve", compute=0.80, ilp=0.10, ws_mb=0.05)),
        LoopSpec("sp.ysolve", 512, JitteredCost(MEDIUM, 0.15),
                 kp("sp-ysolve", compute=0.75, ilp=0.08, ws_mb=0.05)),
        LoopSpec("sp.zsolve", 512, JitteredCost(MEDIUM, 0.18),
                 kp("sp-zsolve", compute=0.50, ilp=0.08, ws_mb=0.80, mlp=0.60)),
        LoopSpec("sp.add", 640, UniformCost(FINE),
                 kp("sp-add", compute=0.25, ilp=0.02, ws_mb=60.0, mlp=1.0)),
    )
    return Program(
        name="SP",
        suite="NAS",
        setup=(SerialPhase("sp.init", work=6e-3, kernel=SERIAL_SETUP),),
        body=loops,
        timesteps=6,
    )


def nas_programs() -> tuple[Program, ...]:
    """All seven NAS models, in the paper's presentation order."""
    return (bt(), cg(), ep(), ft(), is_(), mg(), sp())
