"""Shared helpers for the benchmark-suite definitions."""

from __future__ import annotations

from repro.perfmodel.kernel import KernelProfile

#: Granularity classes: per-iteration cost in work units. At a baseline
#: small-core rate of ~1-1.8 work units/second-equivalent these yield
#: per-iteration times from ~1.5 us (where a 1.5 us dispatch overhead is
#: ruinous) to ~2 ms (where it vanishes) — the axis the paper's
#: dynamic-vs-AID trade-off lives on.
ULTRA_FINE = 5.5e-6
FINE = 8e-6
MEDIUM = 40e-6
COARSE = 400e-6
VERY_COARSE = 2.5e-3


def kp(
    name: str,
    compute: float,
    ilp: float,
    ws_mb: float = 0.05,
    pressure: float = 1.0,
    mlp: float = 0.7,
    coherence: float = 0.0,
) -> KernelProfile:
    """Shorthand kernel-profile constructor used across the suites."""
    return KernelProfile(
        name=name,
        compute_weight=compute,
        ilp=ilp,
        working_set_mb=ws_mb,
        cache_pressure=pressure,
        mlp=mlp,
        coherence_penalty=coherence,
    )


#: Kernel used for serial phases that are plain scalar setup code
#: (pointer chasing, parsing): accelerated ~2.5x by a big core.
SERIAL_SETUP = kp("serial-setup", compute=0.7, ilp=0.25, ws_mb=4.0, mlp=0.5)

#: Serial phases that are compute-dense (e.g. data generation).
SERIAL_COMPUTE = kp("serial-compute", compute=0.95, ilp=0.45, ws_mb=0.05)
