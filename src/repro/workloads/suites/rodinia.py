"""Rodinia OpenMP programs (inputs enlarged as in the paper).

The paper reports 11 Rodinia programs where scheduling made a
difference; these models cover the named ones (bfs, bptree, hotspot3D,
lavamd, leukocyte, particlefilter, sradv1, sradv2) plus three common
suite members (backprop, kmeans, nw) to complete the count.
"""

from __future__ import annotations

from repro.workloads.costmodels import (
    BimodalCost,
    JitteredCost,
    LognormalCost,
    RampCost,
    UniformCost,
)
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program, SerialPhase
from repro.workloads.suites._util import (
    COARSE,
    FINE,
    MEDIUM,
    SERIAL_COMPUTE,
    SERIAL_SETUP,
    ULTRA_FINE,
    VERY_COARSE,
    kp,
)


def backprop() -> Program:
    """backprop — neural-net training sweep: two layered-matrix loops of
    moderate grain and modest SF; a middle-of-the-pack program."""
    fwd = kp("bp-forward", compute=0.60, ilp=0.05, ws_mb=3.0, mlp=0.85)
    adj = kp("bp-adjust", compute=0.35, ilp=0.04, ws_mb=3.0, mlp=0.95)
    return Program(
        name="backprop",
        suite="Rodinia",
        setup=(SerialPhase("bp.init", work=6e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("bp.forward", 1024, JitteredCost(FINE, 0.15), fwd),
            LoopSpec("bp.adjust", 1024, UniformCost(FINE), adj),
        ),
        timesteps=6,
    )


def bfs() -> Program:
    """bfs — breadth-first search: a serial graph-build phase followed by
    ultra-fine frontier-expansion loops with branchy, bimodal cost.

    Like IS: big serial BS/SB gap, dynamic overhead-bound (the paper
    groups bfs with CG/IS/blackscholes as dynamic's failure cases).
    """
    expand = kp("bfs-expand", compute=0.35, ilp=0.02, ws_mb=50.0, mlp=0.25)
    visit = kp("bfs-visit", compute=0.45, ilp=0.02, ws_mb=40.0, mlp=0.30)
    return Program(
        name="bfs",
        suite="Rodinia",
        setup=(SerialPhase("bfs.buildgraph", work=30e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("bfs.expand", 3072,
                     LognormalCost(1.25 * ULTRA_FINE, 0.35), expand),
            LoopSpec("bfs.visit", 3072, UniformCost(ULTRA_FINE), visit),
        ),
        timesteps=4,
    )


def bptree() -> Program:
    """b+tree — tree queries: the initialization (tree construction,
    inherently sequential) takes the vast majority of the execution, so
    nearly all the schedule-to-schedule difference is whether the master
    thread sits on a big core (paper: BS's gain comes primarily from the
    serial phase)."""
    search = kp("bpt-search", compute=0.55, ilp=0.05, ws_mb=2.0, mlp=0.20)
    return Program(
        name="bptree",
        suite="Rodinia",
        setup=(SerialPhase("bpt.build", work=140e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("bpt.search", 1024, BimodalCost(FINE, 2 * FINE, 0.3), search),
        ),
        timesteps=3,
    )


def hotspot3d() -> Program:
    """hotspot3D — 3-D thermal stencil over many timesteps: fine-grained
    slabs with uniform cost. dynamic balances it but pays a dispatch per
    slab every step; AID-dynamic's larger big-core removals cut that cost
    — the paper's +16.8% AID-dynamic-over-dynamic headline on Platform A.
    """
    stencil = kp("hs3d-stencil", compute=0.45, ilp=0.08, ws_mb=2.8, mlp=0.80)
    return Program(
        name="hotspot3D",
        suite="Rodinia",
        setup=(SerialPhase("hs3d.read", work=25e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("hs3d.sweep", 2048, JitteredCost(FINE, 0.15), stencil),
        ),
        timesteps=8,
    )


def kmeans() -> Program:
    """kmeans — clustering sweeps: medium-grain distance loops with a
    cheap serial reduction between iterations; modest SF, dynamic and
    static close together."""
    assign = kp("km-assign", compute=0.40, ilp=0.02, ws_mb=40.0, mlp=0.95)
    return Program(
        name="kmeans",
        suite="Rodinia",
        setup=(SerialPhase("km.read", work=8e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("km.assign", 1536, JitteredCost(MEDIUM, 0.15), assign),
            SerialPhase("km.reduce", work=1.5e-3, kernel=SERIAL_COMPUTE),
        ),
        timesteps=6,
    )


def lavamd() -> Program:
    """lavaMD — molecular dynamics over boxes: coarse iterations whose
    neighbour counts vary (heavy-tailed), a dynamic-friendly program the
    paper's hybrid-percentage study puts in the "prefers 60%" group."""
    forces = kp("lava-forces", compute=0.85, ilp=0.20, ws_mb=0.10)
    return Program(
        name="lavamd",
        suite="Rodinia",
        setup=(SerialPhase("lava.init", work=5e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("lava.forces", 512, LognormalCost(COARSE, 0.6), forces),
        ),
        timesteps=5,
    )


def leukocyte() -> Program:
    """leukocyte — cell tracking: very coarse per-cell computations with
    strongly uneven cost (ellipse evolution iterates to data-dependent
    convergence); the paper's strongest dynamic-favouring program."""
    track = kp("leuk-track", compute=0.80, ilp=0.25, ws_mb=0.05)
    detect = kp("leuk-detect", compute=0.85, ilp=0.20, ws_mb=0.05)
    return Program(
        name="leukocyte",
        suite="Rodinia",
        setup=(SerialPhase("leuk.read", work=10e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("leuk.detect", 320, LognormalCost(VERY_COARSE, 0.7), detect),
            LoopSpec("leuk.track", 256, LognormalCost(VERY_COARSE, 0.8), track),
        ),
        timesteps=3,
    )


def nw() -> Program:
    """nw — Needleman-Wunsch alignment: wavefront loops whose trip counts
    are large but per-cell work tiny; memory-bound with low SF, so
    runtime overhead decides everything."""
    diag = kp("nw-diag", compute=0.30, ilp=0.00, ws_mb=60.0, mlp=0.45)
    return Program(
        name="nw",
        suite="Rodinia",
        setup=(SerialPhase("nw.init", work=6e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("nw.diag_fwd", 2048, UniformCost(ULTRA_FINE), diag),
            LoopSpec("nw.diag_bwd", 2048, UniformCost(ULTRA_FINE),
                     diag.with_(name="nw-diag-bwd")),
        ),
        timesteps=4,
    )


def particlefilter() -> Program:
    """particlefilter — the paper's inversion case: the final iterations
    of its long-running likelihood loop are computationally heavier than
    the first, so static under the *BS* mapping (big cores take the early
    = cheap block) is *worse* than static(SB); AID-static inherits the
    problem (its one-shot split is also contiguous-by-TID) while dynamic
    absorbs it."""
    likelihood = kp("pf-likelihood", compute=0.80, ilp=0.15, ws_mb=0.05)
    resample = kp("pf-resample", compute=0.40, ilp=0.05, ws_mb=1.5, mlp=0.80)
    return Program(
        name="particlefilter",
        suite="Rodinia",
        setup=(SerialPhase("pf.init", work=4e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("pf.likelihood", 768,
                     RampCost(0.25 * COARSE, 2.75 * COARSE), likelihood),
            LoopSpec("pf.resample", 768, UniformCost(FINE), resample),
        ),
        timesteps=5,
    )


def sradv1() -> Program:
    """sradv1 — speckle-reducing anisotropic diffusion (v1): two uniform
    stencil loops per step, medium grain, moderate SF; dynamic partly
    fixes the asymmetry imbalance (paper groups sradv1/sradv2 with
    bodytrack on this)."""
    grad = kp("srad1-grad", compute=0.50, ilp=0.05, ws_mb=2.8, mlp=0.90)
    diff = kp("srad1-diff", compute=0.45, ilp=0.04, ws_mb=3.0, mlp=0.90)
    return Program(
        name="sradv1",
        suite="Rodinia",
        setup=(SerialPhase("srad1.read", work=5e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("srad1.grad", 1024, JitteredCost(MEDIUM, 0.15), grad),
            LoopSpec("srad1.diffuse", 1024, JitteredCost(MEDIUM, 0.15), diff),
        ),
        timesteps=6,
    )


def sradv2() -> Program:
    """sradv2 — SRAD v2: the same diffusion restructured into finer
    loops, which raises the runtime-overhead stakes slightly."""
    grad = kp("srad2-grad", compute=0.50, ilp=0.05, ws_mb=2.8, mlp=0.90)
    diff = kp("srad2-diff", compute=0.45, ilp=0.04, ws_mb=3.0, mlp=0.90)
    return Program(
        name="sradv2",
        suite="Rodinia",
        setup=(SerialPhase("srad2.read", work=5e-3, kernel=SERIAL_SETUP),),
        body=(
            LoopSpec("srad2.grad", 1536, JitteredCost(FINE, 0.15), grad),
            LoopSpec("srad2.diffuse", 1536, JitteredCost(FINE, 0.15), diff),
        ),
        timesteps=6,
    )


def rodinia_programs() -> tuple[Program, ...]:
    """All eleven Rodinia models, alphabetically."""
    return (
        backprop(),
        bfs(),
        bptree(),
        hotspot3d(),
        kmeans(),
        lavamd(),
        leukocyte(),
        nw(),
        particlefilter(),
        sradv1(),
        sradv2(),
    )
