"""PARSEC 3 OpenMP programs (native-style inputs): blackscholes,
bodytrack, streamcluster."""

from __future__ import annotations

from repro.workloads.costmodels import BimodalCost, JitteredCost, UniformCost
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program, SerialPhase
from repro.workloads.suites._util import (
    FINE,
    MEDIUM,
    SERIAL_SETUP,
    kp,
)


def blackscholes() -> Program:
    """blackscholes — option pricing: a long serial parse/setup phase
    followed by a uniform fine-grained pricing loop.

    Three paper behaviours live here:

    * the serial phase makes static(BS) far better than static(SB)
      (master-on-big acceleration, up to ~2.2x for this group);
    * the fine grain makes dynamic(1) overhead-bound;
    * the per-thread option block (~0.6 MiB) fits the A15's 2 MB L2 when
      run alone but *not* once four threads share it, so the
      offline-measured SF wildly overestimates the online one — the
      Fig. 9c case study where AID-static(offline-SF) *loses* to plain
      AID-static on Platform A. (The paper measures a 3.6x jump in LLC
      MPKI from 1 to 8 threads.)
    """
    price = kp("bs-price", compute=0.35, ilp=0.12, ws_mb=0.60, pressure=1.3, mlp=0.25,
               coherence=2.5)
    loop = LoopSpec(
        name="bs.price",
        n_iterations=2048,
        cost=JitteredCost(FINE, 0.12),
        kernel=price,
    )
    return Program(
        name="blackscholes",
        suite="PARSEC",
        setup=(SerialPhase("bs.parse", work=55e-3, kernel=SERIAL_SETUP),),
        body=(loop,),
        timesteps=5,
    )


def bodytrack() -> Program:
    """bodytrack — particle-filter body tracking: per-particle weighting
    whose cost is strongly data-dependent (bimodal: most particles are
    cheap, some hit expensive edge maps).

    Inherent load imbalance even on symmetric machines, so dynamic helps,
    and the paper reports one of AID-static's larger wins (+29.7% over
    static(BS)) because the asymmetry-induced imbalance compounds the
    inherent one.
    """
    weight = kp("bt-weight", compute=0.75, ilp=0.15, ws_mb=0.30)
    update = kp("bt-update", compute=0.40, ilp=0.05, ws_mb=3.0, mlp=0.90)
    loops = (
        LoopSpec("bodytrack.weights", 768,
                 BimodalCost(low_work=MEDIUM, high_work=4 * MEDIUM,
                             high_fraction=0.25),
                 weight),
        LoopSpec("bodytrack.update", 768, JitteredCost(FINE, 0.15), update),
    )
    return Program(
        name="bodytrack",
        suite="PARSEC",
        setup=(SerialPhase("bodytrack.load", work=12e-3, kernel=SERIAL_SETUP),),
        body=loops,
        timesteps=6,
    )


def streamcluster() -> Program:
    """streamcluster — online clustering: the paper's best case for the
    AID-static family (+30.7% AID-static, +56% AID-hybrid over
    static(BS), +11% AID-dynamic over dynamic on Platform A).

    Distance evaluations are uniform, ILP-rich and repeated over many
    pgain passes, so: static loses the full asymmetry gap, dynamic pays a
    dispatch per fine chunk every pass, and a sampled one-shot
    distribution is nearly ideal.
    """
    dist = kp("sc-dist", compute=0.90, ilp=0.18, ws_mb=0.10)
    gain = kp("sc-gain", compute=0.80, ilp=0.15, ws_mb=0.10)
    loops = (
        LoopSpec("sc.dist", 1536, JitteredCost(MEDIUM, 0.20), dist),
        LoopSpec("sc.pgain", 1024, JitteredCost(MEDIUM, 0.20), gain),
    )
    return Program(
        name="streamcluster",
        suite="PARSEC",
        setup=(SerialPhase("sc.read", work=3e-3, kernel=SERIAL_SETUP),),
        body=loops,
        timesteps=8,
    )


def parsec_programs() -> tuple[Program, ...]:
    """The three PARSEC models."""
    return (blackscholes(), bodytrack(), streamcluster())
