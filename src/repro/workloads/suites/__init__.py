"""Benchmark suites: synthetic models of the paper's 21 programs.

* :mod:`repro.workloads.suites.nas` — NAS Parallel Benchmarks (class-B
  style): BT, CG, EP, FT, IS, MG, SP.
* :mod:`repro.workloads.suites.parsec` — PARSEC 3 (native-style inputs):
  blackscholes, bodytrack, streamcluster.
* :mod:`repro.workloads.suites.rodinia` — Rodinia (enlarged inputs, as
  the paper does): backprop, bfs, bptree, hotspot3D, kmeans, lavamd,
  leukocyte, nw, particlefilter, sradv1, sradv2.

Each model encodes the program's scheduling-relevant skeleton — loop
granularity, cost regularity, serial fraction, kernel character — chosen
to reproduce the qualitative behaviour the paper reports for that
program (see each docstring). Trip counts and repetition counts are
scaled down so a full evaluation grid simulates in seconds; scheduling
behaviour depends on the *ratios* (iteration cost vs dispatch overhead,
serial vs parallel fraction), which are preserved.
"""

from repro.workloads.suites.nas import nas_programs
from repro.workloads.suites.parsec import parsec_programs
from repro.workloads.suites.rodinia import rodinia_programs

__all__ = ["nas_programs", "parsec_programs", "rodinia_programs"]
