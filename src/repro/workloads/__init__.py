"""Workload models: synthetic analogues of the paper's 21 benchmarks.

A benchmark program is modeled as its performance-relevant skeleton:

* a sequence of *serial phases* (initialization, inter-loop glue — what
  limits programs like bptree) executed by the master thread, and
* *parallel loops*, each with a trip count, a per-iteration cost profile
  (uniform, jittered, ramped, heavy-tailed, ...) and a
  :class:`~repro.perfmodel.kernel.KernelProfile` that determines the
  loop's platform-dependent speedup factor.

The numerical output of the original kernels is irrelevant to loop
scheduling, so it is not modeled here (real numpy kernels live in
:mod:`repro.kernels` for the real-thread executor). What *is* modeled,
per program, is everything the paper's evaluation hinges on: loop
granularity, cost uniformity, serial fraction, working-set sizes and
compute/memory character.
"""

from repro.workloads.costmodels import (
    BimodalCost,
    CostModel,
    JitteredCost,
    LognormalCost,
    RampCost,
    UniformCost,
)
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program, SerialPhase
from repro.workloads.registry import all_programs, get_program, program_names

__all__ = [
    "CostModel",
    "UniformCost",
    "JitteredCost",
    "RampCost",
    "LognormalCost",
    "BimodalCost",
    "LoopSpec",
    "SerialPhase",
    "Program",
    "all_programs",
    "get_program",
    "program_names",
]
