"""Prebuilt platforms mirroring the paper's two testbeds (plus extras).

Calibration notes
-----------------

The paper reports per-loop big-to-small speedup factors (SF) of up to 7.7x
on Platform A (8.9x max across all loops) and up to 2.3x on Platform B.
The core-type parameters below were chosen so the performance model of
:mod:`repro.perfmodel` spans those ranges:

* Platform A — the A15 runs at 2.0/1.5 = 1.33x the A7 clock; its
  out-of-order pipeline gives up to ~4x more instruction throughput on
  ILP-rich code, and its 4x larger L2 (2 MB vs 512 KB) plus better
  prefetching give up to ~3x faster data delivery for cache-resident
  working sets. Compounded, compute+cache-friendly loops approach the
  observed ~8x SF while memory-bound DRAM-streaming loops drop near the
  bare frequency ratio.
* Platform B — identical micro-architecture on both core types; fast
  cores run at 2.1 GHz full duty, slow at 1.2 GHz x 87.5% duty, an
  effective 2.0x frequency ratio. Memory-bound loops scale less than that
  (DRAM speed is frequency-insensitive), and lightly cache-sensitive code
  can slightly exceed it (miss latency in cycles grows with frequency),
  which is how the paper observes up to 2.3x.
"""

from __future__ import annotations

from repro.amp.core import CoreType
from repro.amp.platform import Platform, build_platform

#: Cortex-A7: in-order, small cluster L2. The baseline "small" core.
#: In-order cores stall on latency-bound DRAM misses (dram_latency_bw
#: far below cache_bw) but stream at near-full bandwidth.
CORTEX_A7 = CoreType(
    name="cortex-a7",
    freq_ghz=1.5,
    duty_cycle=1.0,
    uarch_speedup=1.0,
    cache_bw=1.0,
    dram_stream_bw=0.8,
    dram_latency_bw=0.22,
    runtime_call_speedup=1.0,
)

#: Cortex-A15: wide out-of-order, big cluster L2. Out-of-order execution
#: hides much of the miss latency (dram_latency_bw close to stream).
CORTEX_A15 = CoreType(
    name="cortex-a15",
    freq_ghz=2.0,
    duty_cycle=1.0,
    uarch_speedup=4.0,
    cache_bw=2.0,
    dram_stream_bw=1.0,
    dram_latency_bw=1.1,
    runtime_call_speedup=2.0,
)

#: Xeon slow: frequency- and duty-cycle-throttled Broadwell core. At a
#: lower clock a DRAM miss costs proportionally fewer cycles, so
#: latency-bound code barely notices the throttling.
XEON_SLOW = CoreType(
    name="xeon-slow",
    freq_ghz=1.2,
    duty_cycle=0.875,
    uarch_speedup=1.0,
    cache_bw=2.0,
    dram_stream_bw=1.0,
    dram_latency_bw=0.95,
    runtime_call_speedup=1.0,
)

#: Xeon fast: the same core at nominal 2.1 GHz, full duty cycle. Cache
#: accesses are in the core-clock domain (2x the slow cores); DRAM is not.
XEON_FAST = CoreType(
    name="xeon-fast",
    freq_ghz=2.1,
    duty_cycle=1.0,
    uarch_speedup=1.15,
    cache_bw=4.0,
    dram_stream_bw=1.05,
    dram_latency_bw=1.0,
    runtime_call_speedup=1.8,
)


def odroid_xu4() -> Platform:
    """Platform A: Odroid-XU4 (ARM big.LITTLE, 4x A15 + 4x A7).

    CPUs 0-3 are the small (A7) cores and CPUs 4-7 the big (A15) cores,
    with one shared L2 per cluster, matching the paper's Table 1.
    """
    return build_platform(
        name="Platform A (Odroid-XU4)",
        clusters=[
            (CORTEX_A7, 4, 0.5, 8),
            (CORTEX_A15, 4, 2.0, 16),
        ],
        dram_gb=2.0,
    )


def xeon_emulated() -> Platform:
    """Platform B: emulated AMP on a Xeon E5-2620 v4.

    Four slow cores (1.2 GHz, 87.5% duty) and four fast cores (2.1 GHz),
    all sharing a 20 MB 20-way LLC. CPUs 0-3 are slow, 4-7 fast.
    """
    return build_platform(
        name="Platform B (Xeon E5-2620 v4, emulated AMP)",
        clusters=[
            (XEON_SLOW, 4, 20.0, 20),
            (XEON_FAST, 4, 20.0, 20),
        ],
        shared_llc=(20.0, 20),
        dram_gb=64.0,
        coherence_factor=0.12,
    )


def dual_speed_platform(
    n_small: int,
    n_big: int,
    big_speedup: float = 2.0,
    name: str = "synthetic-amp",
) -> Platform:
    """A simple two-type AMP where big cores are a flat ``big_speedup``
    faster than small ones for every kind of code.

    Useful for unit tests and analytic examples: with a flat speedup the
    ideal AID-static distribution is exactly computable.
    """
    small = CoreType(name="synth-small", freq_ghz=1.0)
    big = CoreType(
        name="synth-big",
        freq_ghz=big_speedup,
        cache_bw=big_speedup,
        dram_stream_bw=big_speedup,
        dram_latency_bw=big_speedup,
        uarch_speedup=1.0,
        runtime_call_speedup=big_speedup,
    )
    return build_platform(
        name=name,
        clusters=[
            (small, n_small, 4.0, 8),
            (big, n_big, 4.0, 8),
        ],
        dram_gb=8.0,
    )


def tri_type_platform() -> Platform:
    """A three-core-type platform exercising the NC >= 2 generalization.

    Two little cores, two medium cores and two big cores — loosely modeled
    on DynamIQ-style mobile SoCs (e.g. little + mid + prime clusters).
    """
    little = CoreType(
        name="tri-little",
        freq_ghz=1.2,
        uarch_speedup=1.0,
        dram_stream_bw=0.8,
        dram_latency_bw=0.35,
    )
    medium = CoreType(
        name="tri-medium",
        freq_ghz=1.8,
        uarch_speedup=2.0,
        cache_bw=1.6,
        dram_stream_bw=0.9,
        dram_latency_bw=0.7,
        runtime_call_speedup=1.5,
    )
    big = CoreType(
        name="tri-big",
        freq_ghz=2.4,
        uarch_speedup=3.2,
        cache_bw=2.5,
        dram_stream_bw=1.0,
        dram_latency_bw=1.1,
        runtime_call_speedup=2.0,
    )
    return build_platform(
        name="tri-type-amp",
        clusters=[
            (little, 2, 0.5, 8),
            (medium, 2, 1.0, 8),
            (big, 2, 2.0, 16),
        ],
        dram_gb=8.0,
    )
