"""Last-level-cache domain description.

Real big.LITTLE parts have one shared L2 per cluster (2 MB for the A15
cluster, 512 KB for the A7 cluster on the Odroid-XU4); server parts have
one large LLC shared by every core. The contention model in
:mod:`repro.perfmodel.contention` uses these sizes to decide whether a
loop's per-thread working set still fits in cache once several threads
co-run — the mechanism behind the paper's blackscholes case study
(Fig. 9c).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError


@dataclass(frozen=True)
class LLCDomain:
    """A last-level cache shared by a group of cores.

    Attributes:
        index: domain number within the platform.
        size_mb: capacity in MiB.
        associativity: number of ways (descriptive only; the contention
            model is capacity-based).
        cpu_ids: CPU numbers of the cores sharing this cache.
    """

    index: int
    size_mb: float
    associativity: int
    cpu_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise PlatformError("LLC size must be positive")
        if self.associativity <= 0:
            raise PlatformError("LLC associativity must be positive")
        if not self.cpu_ids:
            raise PlatformError("LLC domain must contain at least one core")
        if len(set(self.cpu_ids)) != len(self.cpu_ids):
            raise PlatformError("LLC domain lists a core twice")

    @property
    def n_cores(self) -> int:
        return len(self.cpu_ids)

    def share_for(self, active_threads: int) -> float:
        """Cache capacity (MiB) available per thread with ``active_threads``
        threads concurrently using this domain.

        A fair-share capacity model: each active thread competes for an
        equal slice. ``active_threads`` is clamped to at least 1.
        """
        return self.size_mb / max(1, active_threads)
