"""Core and core-type descriptions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlatformError


@dataclass(frozen=True)
class CoreType:
    """Static description of one core type in an AMP.

    Attributes:
        name: human-readable type name (``"cortex-a15"``, ``"xeon-fast"``).
        freq_ghz: nominal clock frequency in GHz.
        duty_cycle: fraction of cycles the core is allowed to execute
            (1.0 = full speed). The paper's Platform B throttles slow cores
            to 87.5% duty cycle in addition to frequency scaling.
        uarch_speedup: instruction-throughput multiplier of this
            micro-architecture relative to a simple in-order baseline at
            equal frequency, *for perfectly ILP-rich code*. In-order cores
            use 1.0; a wide out-of-order core like the Cortex-A15 uses ~3-4.
        cache_bw: relative data-delivery speed when the working set fits in
            this type's last-level cache (baseline small core = 1.0).
        dram_stream_bw: data-delivery speed for *streaming* (prefetchable,
            high memory-level-parallelism) access patterns that miss to
            DRAM. Bandwidth-bound, so nearly core-independent: this is why
            streaming loops show SFs near 1 on every AMP.
        dram_latency_bw: data-delivery speed for *latency-bound* (dependent,
            low-MLP) access patterns that miss to DRAM. An out-of-order
            core hides much of the miss latency; a small in-order core
            stalls — the mechanism behind the extreme per-loop SFs the
            paper measures on big.LITTLE (up to 8.9x).
        runtime_call_speedup: how much faster this core executes the
            OpenMP runtime's own bookkeeping code (scalar, branchy) than
            the baseline small core.
    """

    name: str
    freq_ghz: float
    duty_cycle: float = 1.0
    uarch_speedup: float = 1.0
    cache_bw: float = 1.0
    dram_stream_bw: float = 1.0
    dram_latency_bw: float = 1.0
    runtime_call_speedup: float = 1.0

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise PlatformError(f"core type {self.name!r}: freq_ghz must be > 0")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise PlatformError(
                f"core type {self.name!r}: duty_cycle must be in (0, 1]"
            )
        for attr in (
            "uarch_speedup",
            "cache_bw",
            "dram_stream_bw",
            "dram_latency_bw",
            "runtime_call_speedup",
        ):
            if getattr(self, attr) <= 0:
                raise PlatformError(f"core type {self.name!r}: {attr} must be > 0")

    @property
    def effective_freq_ghz(self) -> float:
        """Frequency after duty-cycle throttling."""
        return self.freq_ghz * self.duty_cycle


@dataclass(frozen=True)
class Core:
    """One physical core: a numbered instance of a :class:`CoreType`.

    Attributes:
        cpu_id: OS-visible CPU number. On both paper platforms big cores
            have CPU numbers 4-7 and small cores 0-3; presets follow that
            convention.
        core_type: the type this core instantiates.
        llc_domain: index of the last-level-cache domain the core belongs
            to (filled in by :class:`~repro.amp.platform.Platform`).
    """

    cpu_id: int
    core_type: CoreType
    llc_domain: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.cpu_id < 0:
            raise PlatformError("cpu_id must be >= 0")
